"""Differentiated services beyond QoS: per-DS-id memory compression (§8).

The paper's Discussion: "IBM's Memory eXpansion Technology (MXT)
integrates a compression engine into a memory controller. If a PARD
server includes an MXT engine, the engine can be programmed to compress
memory-access packets for only designated DS-id sets."

This example puts a compression engine on the memory path of two
domains, enables it for one of them through its control plane, and shows
the differentiated outcome: the designated LDom trades latency for DRAM
bandwidth, its neighbour is untouched.

Run:  python examples/differentiated_compression.py
"""

from repro.extensions.engines import CompressionEngine, EngineControlPlane
from repro.dram.control_plane import MemoryControlPlane
from repro.dram.controller import MemoryController
from repro.sim.clock import ClockDomain, DRAM_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket


def main() -> None:
    engine = Engine()
    dram_clock = ClockDomain(engine, DRAM_CLOCK_PS)
    memory_control = MemoryControlPlane(engine)
    memory_control.allocate_ldom(1)
    memory_control.allocate_ldom(2)
    memory = MemoryController(engine, dram_clock, control=memory_control)

    # The MXT engine with its own PARD control plane: enable 2:1
    # compression for DS-id 1 only.
    mxt_control = EngineControlPlane(engine)
    mxt_control.allocate_ldom(1, enabled=1, ratio_pct=50)
    mxt_control.allocate_ldom(2)
    mxt = CompressionEngine(engine, memory, mxt_control, latency_cycles=12)

    latencies = {1: [], 2: []}
    for i in range(200):
        for ds_id in (1, 2):
            pkt = MemoryPacket(ds_id=ds_id, addr=i * 64, size=64)
            start = engine.now

            def record(_resp, ds_id=ds_id, start=start):
                latencies[ds_id].append(engine.now - start)

            mxt.handle_request(pkt, record)
        engine.run()

    mxt_control.roll_window()
    memory_control.roll_window()
    print("Per-DS-id outcome after 200 accesses each:\n")
    for ds_id, label in ((1, "compressed LDom"), (2, "normal LDom")):
        mean_cycles = sum(latencies[ds_id]) / len(latencies[ds_id]) / DRAM_CLOCK_PS
        dram_bytes = memory_control.statistics.get(ds_id, "bandwidth")
        ops = mxt_control.statistics.get(ds_id, "ops")
        print(f"  DS-id {ds_id} ({label}):")
        print(f"    mean memory latency : {mean_cycles:6.1f} memory cycles")
        print(f"    DRAM bytes moved    : {dram_bytes:6d} (of {200 * 64} requested)")
        print(f"    engine ops          : {ops}")
    print(
        "\nThe designated LDom moved half the DRAM bytes (2:1 ratio) at a\n"
        "24-cycle round-trip latency premium; its neighbour saw no change.\n"
        "The engine is programmed per DS-id through the same control-plane\n"
        "table interface as every other PARD resource."
    )


if __name__ == "__main__":
    main()
