"""Disk I/O performance isolation (Fig. 10).

Two LDoms run dd-style writers against the shared IDE controller. The
IDE control plane starts them at the default fair share; mid-run the
operator sells LDom0 a premium tier with a single ``echo`` into the
device file tree -- no cgroups, no kernel changes in the guests.

Run:  python examples/disk_isolation.py
"""

from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.diskio import DiskCopy


def bandwidth_bar(share: float, width: int = 40) -> str:
    filled = int(share * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    server = PardServer(TABLE2.scaled(16))
    firmware = server.firmware
    a = firmware.create_ldom("premium", (0,), 16 << 20)
    b = firmware.create_ldom("standard", (1,), 16 << 20)
    server.start()
    # dd if=/dev/zero of=/dev/sdb bs=32M (scaled to 4M blocks)
    firmware.launch_ldom("premium", {0: DiskCopy(block_bytes=4 << 20, count=0)})
    firmware.launch_ldom("standard", {1: DiskCopy(block_bytes=4 << 20, count=0)})

    def report(label: str) -> None:
        totals = {}
        for name, ldom in (("premium", a), ("standard", b)):
            totals[name] = server.ide_control.statistics.get(ldom.ds_id, "bytes_total")
        print(f"\n{label}")
        window = sum(totals.values()) or 1
        for name, value in totals.items():
            share = value / window
            print(f"  {name:9s} |{bandwidth_bar(share)}| {share * 100:4.1f}% "
                  f"({value // (1 << 20)} MB written)")

    server.run_ms(150)
    report("Default policy (fair share) after 150 ms:")

    command = f"echo 80 > /sys/cpa/cpa2/ldoms/ldom{a.ds_id}/parameters/bandwidth"
    print(f"\nOperator: {command}")
    firmware.sh(command)
    firmware.sh(f"echo 20 > /sys/cpa/cpa2/ldoms/ldom{b.ds_id}/parameters/bandwidth")

    # Reset the counters so the report shows the new regime only.
    for ldom in (a, b):
        server.ide_control.statistics.set(ldom.ds_id, "bytes_total", 0)
    server.run_ms(150)
    report("Premium tier (80/20 quota) for the next 150 ms:")

    print(f"\nCompleted transfers: {server.ide.completed_transfers}, "
          f"interrupts routed per-LDom by the APIC: {server.apic.delivered} "
          f"(dropped: {server.apic.dropped})")


if __name__ == "__main__":
    main()
