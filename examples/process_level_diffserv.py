"""Open problem §10: process-level DiffServ inside one LDom.

The paper asks "how to make OS directly run on PARD server to support
process-level DiffServ?" The hardware hook is already there -- the
per-core DS-id tag register -- so an OS scheduler only has to rewrite it
at context-switch time. This example models that: two "processes" share
one core under a time-slicing scheduler that retags each slice, the LLC
control plane partitions between them, and the firmware's statistics
monitor (the §7.1.1 tool) watches both processes' cache occupancy from
the PRM.

Run:  python examples/process_level_diffserv.py
"""

from repro.prm.monitor import StatisticsMonitor
from repro.sim.engine import PS_PER_MS
from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.multiplex import TimeSliced
from repro.workloads.stream import Stream


def main() -> None:
    server = PardServer(TABLE2.scaled(16))
    firmware = server.firmware

    # One LDom, one core -- but TWO process-level DS-ids. We allocate
    # control-plane rows for the second tag by creating a sibling LDom
    # entry for it (in a full OS port the kernel would own this step).
    host = firmware.create_ldom("host", core_ids=(0,), memory_bytes=32 << 20)
    shadow = firmware.create_ldom("host-proc2", core_ids=(1,), memory_bytes=32 << 20)

    # Partition the LLC *between the two processes*: the latency-
    # sensitive one gets 12 ways, the batch one 4.
    firmware.sh(f"echo 0xFFF0 > /sys/cpa/cpa0/ldoms/ldom{host.ds_id}/parameters/waymask")
    firmware.sh(f"echo 0x000F > /sys/cpa/cpa0/ldoms/ldom{shadow.ds_id}/parameters/waymask")

    # An OS-style scheduler: 10 us slices, retagging at each switch.
    interactive = Stream(array_bytes=64 << 10, compute_cycles_per_batch=200)
    batch = Stream(array_bytes=1 << 20, compute_cycles_per_batch=20)
    scheduler = TimeSliced(
        [(interactive, host.ds_id), (batch, shadow.ds_id)],
        slice_cycles=20_000, switch_overhead_cycles=200,
    )

    monitor = StatisticsMonitor(firmware, period_ps=PS_PER_MS)
    for name, ldom in (("interactive", host), ("batch", shadow)):
        monitor.add_probe(
            f"{name}.capacity",
            f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/capacity",
        )

    server.start()
    monitor.start()
    firmware.launch_ldom("host", {0: scheduler})
    server.run_ms(5.0)

    print("Two processes, one core, per-process DS-ids:\n")
    print(f"  context switches: {scheduler.context_switches}")
    for name, series in monitor.probes.items():
        print(f"  {name:22s} latest = {series.latest() or 0:7d} bytes "
              f"({len(series.values)} samples by the PRM monitor)")
    interactive_occ = server.llc_control.occupancy_bytes(host.ds_id)
    batch_occ = server.llc_control.occupancy_bytes(shadow.ds_id)
    print(f"\n  LLC split: interactive {interactive_occ // 1024} KB vs "
          f"batch {batch_occ // 1024} KB")
    print(
        "\nEven though both processes run on the SAME core, their traffic\n"
        "is distinguishable at every shared resource because the scheduler\n"
        "rewrites the core's tag register at each context switch -- the\n"
        "paper's process-level DiffServ open problem, demonstrated."
    )


if __name__ == "__main__":
    main()
