"""Quickstart: build a PARD server, partition it, and watch the control
planes work.

This walks the paper's Fig. 3 flow end to end:

1. build a four-core PARD server (Table 2 configuration, scaled 1/16
   for a fast demo),
2. have the firmware create two LDoms -- hardware-level submachines with
   their own DS-ids, address windows and cores,
3. launch workloads inside them,
4. read per-LDom statistics out of the device file tree, and
5. repartition the LLC with one ``echo`` command and watch occupancy move.

Run:  python examples/quickstart.py
"""

from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.stream import Stream


def main() -> None:
    # 1. Build the server. The PRM firmware is already connected to every
    # control plane through CPA register files.
    server = PardServer(TABLE2.scaled(16))
    firmware = server.firmware
    print("Control planes mounted in the device file tree:")
    for cpa in firmware.ls("/sys/cpa"):
        print(f"  /sys/cpa/{cpa}  ident={firmware.cat(f'/sys/cpa/{cpa}/ident')}")

    # 2. Create two LDoms. Each gets a DS-id, cores, and a private
    # physical-address window starting at 0 (translated by the memory
    # control plane, so a guest OS runs unmodified).
    web = firmware.create_ldom("web", core_ids=(0, 1), memory_bytes=32 << 20)
    batch = firmware.create_ldom("batch", core_ids=(2, 3), memory_bytes=32 << 20)
    print(f"\nCreated LDom 'web'   -> DS-id {web.ds_id}, cores {web.core_ids}")
    print(f"Created LDom 'batch' -> DS-id {batch.ds_id}, cores {batch.core_ids}")

    # 3. Launch workloads. Both address their own 0-based spaces.
    server.start()
    firmware.launch_ldom("web", {
        0: Stream(array_bytes=128 << 10, compute_cycles_per_batch=400),
        1: Stream(array_bytes=128 << 10, compute_cycles_per_batch=400),
    })
    firmware.launch_ldom("batch", {
        2: Stream(array_bytes=1 << 20),
        3: Stream(array_bytes=1 << 20),
    })
    server.run_ms(3.0)

    # 4. Read statistics through the same file interface the paper's
    # firmware exposes.
    print("\nPer-LDom statistics after 3 ms (read via /sys/cpa):")
    for ldom in (web, batch):
        base = f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics"
        capacity = int(firmware.cat(f"{base}/capacity")) // 1024
        miss_bp = int(firmware.cat(f"{base}/miss_rate"))
        mem_bw = int(firmware.cat(
            f"/sys/cpa/cpa1/ldoms/ldom{ldom.ds_id}/statistics/bandwidth"))
        print(f"  {ldom.name:6s} LLC occupancy {capacity:4d} KB, "
              f"miss rate {miss_bp / 100:.1f}%, mem bandwidth {mem_bw / 1e3:.0f} KB/window")

    # 5. The batch LDom's streaming is squeezing the web LDom. Dedicate
    # half the cache to web with one shell command -- no guest changes.
    print("\nOperator: echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
    firmware.sh(f"echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom{web.ds_id}/parameters/waymask")
    firmware.sh(f"echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom{batch.ds_id}/parameters/waymask")
    server.run_ms(3.0)

    print("\nAfter repartitioning:")
    for ldom in (web, batch):
        base = f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics"
        capacity = int(firmware.cat(f"{base}/capacity")) // 1024
        print(f"  {ldom.name:6s} LLC occupancy {capacity:4d} KB")
    print(f"\nServer CPU utilization: {server.cpu_utilization() * 100:.0f}% "
          f"(all four cores busy, each LDom isolated)")


if __name__ == "__main__":
    main()
