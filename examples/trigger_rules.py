"""Programming the control planes: the trigger => action methodology.

A tour of PARD's management interface at the level the paper's §5
describes it: the 32-byte CPA register protocol, the device file tree,
``pardtrigger``, action-script binding, and a live reaction -- including
a *cross-resource* rule (a memory-latency trigger whose action raises
the LDom's DRAM scheduling priority), which is possible because all
control planes meet in the centralized PRM.

Run:  python examples/trigger_rules.py
"""

from repro.core.programming import (
    CMD_READ,
    REG_ADDR,
    REG_CMD,
    REG_DATA,
    TABLE_PARAMETER,
    pack_addr,
)
from repro.prm.rules import chain_actions, log_action, raise_priority_action
from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.stream import Stream


def main() -> None:
    server = PardServer(TABLE2.scaled(16))
    firmware = server.firmware
    ldom = firmware.create_ldom("svc", (0,), 16 << 20)

    # -- Level 0: the raw register protocol (what the sysfs layer uses) ----
    print("Level 0: reading ldom1's waymask via the raw CPA registers")
    cache_cpa = server.firmware.io_space.by_name("cpa0")
    rf = cache_cpa.register_file
    rf.mmio_write(REG_ADDR, pack_addr(ldom.ds_id, 0, TABLE_PARAMETER))
    rf.mmio_write(REG_CMD, CMD_READ)
    print(f"  addr=({ldom.ds_id}, offset 0, parameter table) "
          f"-> data register = {rf.mmio_read(REG_DATA):#06x}")

    # -- Level 1: the device file tree ------------------------------------
    print("\nLevel 1: the same cell as a file")
    path = f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/parameters/waymask"
    print(f"  cat {path} -> {firmware.cat(path)}")

    # -- Level 2: trigger => action rules -----------------------------------
    print("\nLevel 2: installing a cross-resource trigger => action rule")
    print("  trigger: memory avg queueing delay > 5 cycles (cpa1, memory)")
    print("  action:  log it, then raise the LDom's DRAM priority (cpa1)")
    firmware.register_script(
        "/scripts/boost.sh",
        chain_actions(log_action("qlat-trigger"), raise_priority_action(level=1)),
    )
    firmware.sh(
        f"pardtrigger /dev/cpa1 -ldom={ldom.ds_id} -action=0 -stats=avg_qlat -cond=gt,5"
    )
    firmware.sh(
        f"echo /scripts/boost.sh > /sys/cpa/cpa1/ldoms/ldom{ldom.ds_id}/triggers/0"
    )
    print(f"  installed: {firmware.cat(f'/sys/cpa/cpa1/ldoms/ldom{ldom.ds_id}/triggers/0')}")

    # Create memory pressure so the trigger fires: three antagonists.
    server.start()
    firmware.launch_ldom("svc", {0: Stream(array_bytes=1 << 20, mlp=2)})
    for i in (1, 2, 3):
        firmware.create_ldom(f"bg{i}", (i,), 16 << 20)
        firmware.launch_ldom(f"bg{i}", {i: Stream(array_bytes=1 << 20, mlp=8)})

    priority_path = f"/sys/cpa/cpa1/ldoms/ldom{ldom.ds_id}/parameters/priority"
    print(f"\n  priority before: {firmware.cat(priority_path)}")
    server.run_ms(4.0)
    print(f"  priority after 4 ms under contention: {firmware.cat(priority_path)}")
    print(f"  firmware trigger log: {len(firmware.trigger_log)} event(s)")
    for when_ps, cpa, ds_id, rule in firmware.trigger_log[:3]:
        print(f"    t={when_ps / 1e9:.2f} ms  {cpa} dsid={ds_id}: {rule}")
    print(f"  /log/triggers.log: {firmware.cat('/log/triggers.log')!r}")

    qlat = int(firmware.cat(
        f"/sys/cpa/cpa1/ldoms/ldom{ldom.ds_id}/statistics/avg_qlat")) / 100
    print(f"\n  svc's memory queueing delay is now {qlat:.1f} cycles "
          f"(high-priority queue)")


if __name__ == "__main__":
    main()
