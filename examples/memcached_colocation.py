"""Co-locating a latency-critical service with batch work (Figs. 8 & 9).

The data-center scenario the paper opens with: a memcached-style service
owns one core of a four-core server (25% utilization); the operator
wants to sell the other three cores to batch jobs without wrecking the
service's tail latency.

This example runs the three configurations at one load point and prints
the comparison the paper's Fig. 8 makes, then shows the trigger =>
action reaction (Fig. 9's mechanism) in the firmware's own log.

Run:  python examples/memcached_colocation.py
"""

from repro.analysis.tables import format_table
from repro.sim.engine import PS_PER_MS
from repro.system.experiments import ColocationSetup, run_colocation_point


def main() -> None:
    setup = ColocationSetup()
    load_rps = 333_000  # ~15 KRPS on the paper's axis

    print("Running three configurations (this takes a minute)...\n")
    rows = []
    for mode, label in (
        ("solo", "memcached alone (3 cores idle)"),
        ("shared", "+3 STREAM LDoms, no policy"),
        ("trigger", "+3 STREAM LDoms, trigger => repartition rule"),
    ):
        result = run_colocation_point(mode, load_rps, setup=setup, measure_ms=2.5)
        rows.append([
            label,
            f"{result.cpu_utilization * 100:.0f}%",
            f"{result.p95_ms * 1000:.0f} us",
            f"{(result.llc_miss_rate or 0) * 100:.1f}%",
            "fired" if result.trigger_fired else "-",
        ])
    print(format_table(
        ["configuration", "CPU util", "p95 latency", "LLC miss rate", "trigger"],
        rows,
    ))

    print("""
Reading the table the way the paper reads Fig. 8:
 - solo: good tail, but the server is 75% idle;
 - shared: 4x the utilization, but cache contention multiplies the tail;
 - trigger: the control plane noticed the miss-rate excursion, the
   firmware dedicated half the LLC to memcached, and the tail returned
   to near-solo -- at 100% CPU utilization.

The rule used (installed exactly like the paper's Fig. 6 example):
  pardtrigger /dev/cpa0 -ldom=1 -action=0 -stats=miss_rate -cond=gt,15
  echo /cpa0_ldom1_t0.sh > /sys/cpa/cpa0/ldoms/ldom1/triggers/0
""")


if __name__ == "__main__":
    main()
