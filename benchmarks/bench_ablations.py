"""Ablations for the design choices DESIGN.md calls out.

Not a paper figure -- these isolate the contribution of individual PARD
mechanisms: way-partition share, the extra high-priority row buffer,
and the statistics-window length that paces trigger reaction time.

Each ablation grid runs through ``repro.runner.run_sweep``, so setting
``REPRO_BENCH_JOBS=4`` fans the points out over a process pool; the
default (1) keeps the exact serial behaviour and results are identical
either way.
"""

import os
from dataclasses import asdict

from conftest import banner

from repro.analysis.tables import format_table
from repro.runner import SweepPoint, run_sweep
from repro.system.experiments import ColocationSetup, measure_saturation_rate

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")


def ablate_partition_share():
    """Fig. 8's mechanism at different dedicated shares."""
    shares = (0.25, 0.5)
    points = [
        SweepPoint(
            index=i,
            builder="fig9",
            params={
                "rps": 300_000,
                "setup": asdict(ColocationSetup(partition_share=share, warmup_ms=1.0)),
                "total_ms": 4.0,
                "sample_ms": 0.5,
            },
            label=f"share={share}",
        )
        for i, share in enumerate(shares)
    ]
    sweep = run_sweep(points, jobs=JOBS)
    sweep.raise_on_failure()
    return [
        (share, timeline.miss_rates[-1], timeline.final_waymask)
        for share, timeline in zip(shares, sweep.values())
    ]


def ablate_hp_row_buffer():
    """Fig. 11's mechanism with and without the extra row buffer."""
    saturation = measure_saturation_rate(num_requests=2000)
    rate = 0.75 * saturation
    flags = (False, True)
    points = [
        SweepPoint(
            index=i,
            builder="fig11_controller",
            params={
                "with_control_plane": True,
                "rate_req_per_cycle": rate,
                "num_requests": 4000,
                "row_hit_fraction": 0.5,
                "hp_row_buffer": hp_row_buffer,
            },
            seed=7,
            label=f"hp_row_buffer={hp_row_buffer}",
        )
        for i, hp_row_buffer in enumerate(flags)
    ]
    sweep = run_sweep(points, jobs=JOBS)
    sweep.raise_on_failure()
    return [
        (hp_row_buffer, stats["mean"][1], stats["mean"][0])
        for hp_row_buffer, stats in zip(flags, sweep.values())
    ]


def ablate_window_length():
    """Trigger reaction time as a function of the statistics window."""
    windows = (0.5, 1.0, 2.0)
    points = [
        SweepPoint(
            index=i,
            builder="fig9",
            params={
                "rps": 300_000,
                "setup": asdict(
                    ColocationSetup(warmup_ms=1.0, control_window_ms=window_ms)
                ),
                "total_ms": 6.0,
                "sample_ms": 0.5,
            },
            label=f"window={window_ms}ms",
        )
        for i, window_ms in enumerate(windows)
    ]
    sweep = run_sweep(points, jobs=JOBS)
    sweep.raise_on_failure()
    rows = []
    for window_ms, timeline in zip(windows, sweep.values()):
        reaction = (
            timeline.trigger_time_ms - timeline.stream_start_ms
            if timeline.trigger_time_ms is not None else float("inf")
        )
        rows.append((window_ms, reaction, timeline.final_waymask))
    return rows


def test_ablations(benchmark):
    def run_all():
        return {
            "partition": ablate_partition_share(),
            "rowbuf": ablate_hp_row_buffer(),
            "window": ablate_window_length(),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner("Ablation: dedicated LLC share after trigger")
    print(format_table(
        ["share", "final miss rate", "final waymask"],
        [[f"{s * 100:.0f}%", f"{m * 100:.2f}%", hex(w)] for s, m, w in results["partition"]],
    ))
    banner("Ablation: extra high-priority row buffer (util 0.75)")
    print(format_table(
        ["hp row buffer", "high-pri delay (cyc)", "low-pri delay (cyc)"],
        [[str(on), f"{h:.1f}", f"{l:.1f}"] for on, h, l in results["rowbuf"]],
    ))
    banner("Ablation: statistics window vs trigger reaction time")
    print(format_table(
        ["window (ms)", "reaction (ms)", "final waymask"],
        [[w, f"{r:.2f}", hex(m)] for w, r, m in results["window"]],
    ))

    # The finding: a 50% share holds the working set and recovers the
    # miss rate; a 25% share (128KB < the 224KB working set) cannot.
    shares = {share: miss for share, miss, _mask in results["partition"]}
    assert shares[0.5] < 0.1
    assert shares[0.25] > shares[0.5]
    for _share, _miss, mask in results["partition"]:
        assert mask != (1 << 16) - 1  # both fired and repartitioned
    # The row buffer helps the high-priority class.
    (off_high, _off_low) = results["rowbuf"][0][1], results["rowbuf"][0][2]
    (on_high, _on_low) = results["rowbuf"][1][1], results["rowbuf"][1][2]
    assert on_high <= off_high
    # Reaction time grows with the window (coarser windows react later).
    reactions = [r for _w, r, _m in results["window"]]
    assert all(r != float("inf") for r in reactions)
    assert reactions[0] <= reactions[-1] + 0.5
