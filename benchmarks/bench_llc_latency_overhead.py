"""§7.2 latency claim: the LLC control plane adds no extra cycles.

The paper: the control plane's lookups (parameter read, statistics
update, trigger check) hide inside the LLC controller's pipeline (the
OpenSPARC T1 L2 has eight stages), so access latency is identical with
and without the control plane. This microbenchmark measures end-to-end
hit and miss latencies through an LLC with and without an attached
control plane and asserts they are cycle-identical.
"""

from conftest import banner

from repro.analysis.tables import format_table
from repro.cache.cache import Cache, CacheConfig
from repro.cache.control_plane import LlcControlPlane
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS, DRAM_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket
from repro.dram.controller import MemoryController


def measure(with_control_plane: bool, accesses: int = 300) -> dict:
    engine = Engine()
    cpu_clock = ClockDomain(engine, CPU_CLOCK_PS)
    dram_clock = ClockDomain(engine, DRAM_CLOCK_PS)
    control = None
    if with_control_plane:
        control = LlcControlPlane(engine, num_ways=16)
        control.allocate_ldom(1)
    memory = MemoryController(engine, dram_clock)
    config = CacheConfig("llc", size_bytes=256 << 10, ways=16, hit_latency_cycles=20)
    llc = Cache(engine, cpu_clock, config, memory, control=control)

    latencies = {"miss": [], "hit": []}

    def access(addr, bucket):
        start = engine.now
        done = []
        pkt = MemoryPacket(ds_id=1, addr=addr, birth_ps=start)
        sync = llc.access(pkt, lambda p: done.append(engine.now - start))
        if sync is not None:
            done.append(sync)
        engine.run()
        latencies[bucket].append(done[0])

    for i in range(accesses):
        access(i * 64, "miss")   # cold
    for i in range(accesses):
        access(i * 64, "hit")    # warm
    return {
        "hit_cycles": sum(latencies["hit"]) / len(latencies["hit"]) / CPU_CLOCK_PS,
        "miss_cycles": sum(latencies["miss"]) / len(latencies["miss"]) / CPU_CLOCK_PS,
    }


def test_llc_control_plane_adds_no_latency(benchmark):
    def both():
        return measure(False), measure(True)

    without_cp, with_cp = benchmark.pedantic(both, rounds=1, iterations=1)

    banner("LLC control plane latency overhead (§7.2)")
    print(format_table(
        ["configuration", "hit (cycles)", "miss (cycles)"],
        [
            ["w/o control plane", f"{without_cp['hit_cycles']:.2f}", f"{without_cp['miss_cycles']:.2f}"],
            ["w/ control plane", f"{with_cp['hit_cycles']:.2f}", f"{with_cp['miss_cycles']:.2f}"],
        ],
    ))

    # The paper's claim, exactly: zero extra cycles either way.
    assert with_cp["hit_cycles"] == without_cp["hit_cycles"]
    assert with_cp["miss_cycles"] == without_cp["miss_cycles"]
    # And the hit latency is the configured 20-cycle pipeline.
    assert with_cp["hit_cycles"] == 20.0
