"""Telemetry overhead benchmark: the disabled path must be (nearly) free.

Drives the same colocated fig8-style machine (memcached + three stream
antagonists, "shared" mode) under three telemetry configurations:

- ``none``        -- no hub at all (the pre-telemetry baseline),
- ``disabled``    -- ``Telemetry(enabled=False)``: every component holds
  the hub but normalizes it to ``None``, so hot paths pay only the same
  ``is None`` guards as the baseline,
- ``sampled_1pct`` -- enabled, 1-in-100 span sampling and 1 ms metric
  snapshots (the recommended operator configuration).

The simulation itself must be byte-identical across configurations
(telemetry observes, never schedules differently), which the benchmark
asserts via served-request counts before comparing wall-clock rates.

Run as a script for the full measurement and a machine-readable JSON
record on stdout (``--json-file`` also writes it to disk; ``--check``
exits non-zero unless disabled telemetry stays within 3% of the
no-telemetry baseline and 1% sampling stays within the bounded-overhead
bar)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py [--check]

Run under pytest for the CI smoke mode (shorter simulation, softer
bounds for noisy shared runners)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.system.experiments import ColocationSetup, _build_colocated_server
from repro.telemetry import Telemetry

RPS = 220_000
FULL_SIM_MS = 4.0
SMOKE_SIM_MS = 1.0

# Acceptance bars (events/sec relative to the no-telemetry baseline).
DISABLED_BAR = 0.97  # disabled telemetry: within 3%
SAMPLED_BAR = 0.70  # 1% sampling: bounded, not free
SMOKE_DISABLED_BAR = 0.90
SMOKE_SAMPLED_BAR = 0.50


def _make_telemetry(config: str) -> Telemetry | None:
    if config == "none":
        return None
    if config == "disabled":
        return Telemetry(enabled=False)
    if config == "sampled_1pct":
        return Telemetry(span_sample=100, snapshot_period_ms=1.0)
    raise ValueError(f"unknown config {config!r}")


def drive(config: str, sim_ms: float, rps: float = RPS) -> dict:
    """Run one configuration to completion; return a result row."""
    telemetry = _make_telemetry(config)
    setup = ColocationSetup()
    server, memcached, _ds_id = _build_colocated_server(
        setup, "shared", rps, telemetry=telemetry
    )
    started = time.perf_counter()
    executed = server.run_ms(sim_ms)
    elapsed = time.perf_counter() - started
    row = {
        "config": config,
        "events": executed,
        "elapsed_s": round(elapsed, 6),
        "events_per_sec": round(executed / elapsed, 1),
        "requests_served": memcached.requests_served,
    }
    if telemetry is not None and telemetry.enabled:
        row["spans_recorded"] = len(telemetry.spans.finished)
        row["snapshots"] = len(telemetry.snapshots)
        row["instruments"] = len(telemetry.registry)
    return row


def run_benchmark(sim_ms: float = FULL_SIM_MS, repeat: int = 1) -> dict:
    configs = ("none", "disabled", "sampled_1pct")
    # Interleave repeats round-robin so clock drift / thermal effects hit
    # every configuration equally, then keep best-of-N per config
    # (wall-clock noise only ever slows a run down).
    rows: dict[str, list[dict]] = {config: [] for config in configs}
    for _ in range(max(1, repeat)):
        for config in configs:
            rows[config].append(drive(config, sim_ms))
    results = {
        config: max(rows[config], key=lambda r: r["events_per_sec"])
        for config in configs
    }
    # Telemetry must observe without perturbing the simulation.
    served = {row["requests_served"] for row in results.values()}
    if len(served) != 1:
        raise AssertionError(f"configs diverged: requests served {served}")
    baseline = results["none"]["events_per_sec"]
    return {
        "benchmark": "telemetry_overhead",
        "sim_ms": sim_ms,
        "rps": RPS,
        "repeat": repeat,
        "python": platform.python_version(),
        "results": results,
        "disabled_vs_none": round(
            results["disabled"]["events_per_sec"] / baseline, 4
        ),
        "sampled_vs_none": round(
            results["sampled_1pct"]["events_per_sec"] / baseline, 4
        ),
    }


# -- pytest smoke mode (used by CI) ---------------------------------------


def test_telemetry_overhead_smoke():
    record = run_benchmark(SMOKE_SIM_MS, repeat=2)
    print()
    print(json.dumps(record, indent=2))
    assert record["results"]["sampled_1pct"]["spans_recorded"] > 0
    assert record["results"]["sampled_1pct"]["snapshots"] > 0
    assert record["disabled_vs_none"] >= SMOKE_DISABLED_BAR
    assert record["sampled_vs_none"] >= SMOKE_SAMPLED_BAR


# -- script mode ------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sim-ms", type=float, default=FULL_SIM_MS)
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per config; best-of-N is reported")
    parser.add_argument("--json-file", default=None)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless disabled telemetry is within 3% of the "
             "no-telemetry baseline and 1%% sampling is bounded",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(args.sim_ms, args.repeat)
    text = json.dumps(record, indent=2)
    print(text)
    if args.json_file:
        with open(args.json_file, "w") as fh:
            fh.write(text + "\n")
    if args.check:
        if record["disabled_vs_none"] < DISABLED_BAR:
            print(
                f"FAIL: disabled telemetry at "
                f"{record['disabled_vs_none']:.3f}x baseline "
                f"(bar {DISABLED_BAR})", file=sys.stderr,
            )
            return 1
        if record["sampled_vs_none"] < SAMPLED_BAR:
            print(
                f"FAIL: 1% sampling at {record['sampled_vs_none']:.3f}x "
                f"baseline (bar {SAMPLED_BAR})", file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
