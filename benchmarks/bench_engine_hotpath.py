"""Engine hot-path microbenchmark: events/sec, heapq vs calendar queue.

Drives both queue implementations through an identical synthetic
schedule shaped like real simulator traffic: many concurrent event
chains (cores, MSHRs, DRAM banks, window ticks) whose delays are aligned
to clock edges, so timestamps collide heavily -- the case the bucketed
calendar queue is built for. Each executed callback schedules its
chain's next event, exercising the schedule/run interleaving of a live
simulation rather than a pre-filled queue.

Run as a script for the full 1M-event measurement and a machine-readable
JSON record on stdout (``--json-file`` also writes it to disk, and
``--check`` exits non-zero unless the calendar queue clears the 2x
acceptance bar)::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py [--check]

Run under pytest for the CI smoke mode (a smaller schedule and a softer
ratio bound, to tolerate noisy shared runners)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_hotpath.py
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.sim.engine import ENGINE_KINDS, Engine, make_engine
from repro.sim.rng import DeterministicRng

CPU_EDGE_PS = 500  # 2 GHz core clock
DRAM_EDGE_PS = 1250  # DDR3-1600 bus clock
GRID_PS = 1_000_000  # 1 us maintenance grid (window ticks, refresh)

FULL_EVENTS = 1_000_000
SMOKE_EVENTS = 120_000
CHAINS = 64


def make_delays(total_events: int, seed: int = 2015) -> list[int]:
    """Clock-edge-aligned delays mimicking simulator traffic.

    The mixture mirrors what the full-system run generates:

    - same-instant causal work (a response waking the core, the pump
      dispatching the next request, an MSHR merge firing its waiters) --
      delay 0;
    - short CPU-edge hops (hit latencies, core steps);
    - a band of mid-range DRAM-edge delays (bank timing, bus
      serialization);
    - periodic maintenance aligned to a global grid (statistics windows,
      refresh intervals), encoded as a *negative* delay whose magnitude
      the chain rounds up to the next grid point at schedule time.
    """
    rng = DeterministicRng(seed, name="bench_engine_hotpath")
    delays = []
    for _ in range(total_events):
        r = rng.random()
        if r < 0.35:
            delays.append(0)
        elif r < 0.65:
            delays.append(rng.randint(1, 4) * CPU_EDGE_PS)
        elif r < 0.88:
            delays.append(rng.randint(8, 96) * DRAM_EDGE_PS)
        else:
            delays.append(-rng.randint(1, 5) * GRID_PS)
    return delays


class _Chain:
    """One self-propagating event chain (a core / bank / device model)."""

    __slots__ = ("engine", "delays", "i", "n")

    def __init__(self, engine: Engine, delays: list[int], start: int, stop: int):
        self.engine = engine
        self.delays = delays
        self.i = start
        self.n = stop

    def step(self) -> None:
        i = self.i
        if i >= self.n:
            return
        self.i = i + 1
        delay = self.delays[i]
        engine = self.engine
        if delay >= 0:
            engine.post(delay, self.step)
        else:
            # Maintenance work: align to the next global grid boundary.
            engine.post_at((engine.now - delay) // GRID_PS * GRID_PS, self.step)


def drive(kind: str, delays: list[int], chains: int = CHAINS) -> dict:
    """Run the schedule to completion on one engine; return a result row."""
    engine = make_engine(kind)
    n = len(delays)
    per_chain = n // chains
    chain_objs = []
    for c in range(chains):
        start = c * per_chain
        stop = n if c == chains - 1 else start + per_chain
        chain_objs.append(_Chain(engine, delays, start, stop))
    started = time.perf_counter()
    for chain in chain_objs:
        chain.step()
    executed = engine.run()
    elapsed = time.perf_counter() - started
    # Every chain seeds one step outside run(); count them in.
    executed += chains
    return {
        "kind": kind,
        "events": executed,
        "elapsed_s": round(elapsed, 6),
        "events_per_sec": round(executed / elapsed, 1),
        "final_time_ps": engine.now,
    }


def run_benchmark(total_events: int = FULL_EVENTS, chains: int = CHAINS) -> dict:
    delays = make_delays(total_events)
    results = {kind: drive(kind, delays, chains) for kind in sorted(ENGINE_KINDS)}
    # Identical schedules must end at the identical simulated instant.
    finals = {row["final_time_ps"] for row in results.values()}
    if len(finals) != 1:
        raise AssertionError(f"engines diverged: final times {finals}")
    speedup = (
        results["calendar"]["events_per_sec"] / results["heapq"]["events_per_sec"]
    )
    return {
        "benchmark": "engine_hotpath",
        "n_events": total_events,
        "chains": chains,
        "python": platform.python_version(),
        "results": results,
        "speedup_calendar_over_heapq": round(speedup, 3),
    }


# -- pytest smoke mode (used by CI) ---------------------------------------


def test_engine_hotpath_smoke():
    record = run_benchmark(SMOKE_EVENTS)
    print()
    print(json.dumps(record, indent=2))
    for row in record["results"].values():
        assert row["events"] >= SMOKE_EVENTS
    # Soft bound for noisy CI runners; the scripted full run checks 2x.
    assert record["speedup_calendar_over_heapq"] >= 1.2


# -- engine self-profiling (--profile) --------------------------------------


def run_profile(total_events: int = FULL_EVENTS, chains: int = CHAINS) -> str:
    """Re-run the schedule on the ProfiledEngine and format its report.

    Imported lazily so the plain benchmark keeps iterating exactly the
    production ENGINE_KINDS (the import registers the "profiled" kind).
    """
    from repro.telemetry.profiler import ProfiledEngine

    delays = make_delays(total_events)
    engine = ProfiledEngine()
    n = len(delays)
    per_chain = n // chains
    chain_objs = []
    for c in range(chains):
        start = c * per_chain
        stop = n if c == chains - 1 else start + per_chain
        chain_objs.append(_Chain(engine, delays, start, stop))
    for chain in chain_objs:
        chain.step()
    engine.run()
    return engine.format_report()


# -- script mode ------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=FULL_EVENTS)
    parser.add_argument("--chains", type=int, default=CHAINS)
    parser.add_argument("--json-file", default=None)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the calendar queue is >= 2x the heapq path",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the schedule under the self-profiling engine and print "
             "its per-owner callback/dispatch report instead",
    )
    args = parser.parse_args(argv)
    if args.profile:
        print(run_profile(args.events, args.chains))
        return 0
    record = run_benchmark(args.events, args.chains)
    text = json.dumps(record, indent=2)
    print(text)
    if args.json_file:
        with open(args.json_file, "w") as fh:
            fh.write(text + "\n")
    if args.check and record["speedup_calendar_over_heapq"] < 2.0:
        print("FAIL: calendar queue below the 2x acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
