"""Fig. 11: CDF of memory-request queueing delay.

A synthetic injector drives the memory controller at a fixed fraction of
its measured saturation bandwidth, half high-priority and half
low-priority. Compared configurations: the baseline controller (single
queue, no control plane) and the PARD controller (per-priority queues).

Paper numbers at its operating point: baseline 15.2 cycles average;
with the control plane, high priority drops to 2.7 cycles (5.6x) while
low priority rises to 20.3 (+33.6%). Our calibration note: the default
utilization (0.75 of measured saturation) is where this model's baseline
matches the paper's 15.2-cycle average; the high-priority reduction
reproduces (factor >= 2.5x here), the low-priority penalty does not
fully reproduce (see EXPERIMENTS.md for the analysis).
"""

from conftest import banner, full_resolution

from repro.analysis.tables import format_table
from repro.system.experiments import run_fig11


def test_fig11_queueing_delay_cdf(benchmark):
    num_requests = 12_000 if full_resolution() else 6_000
    result = benchmark.pedantic(
        run_fig11, kwargs={"num_requests": num_requests}, rounds=1, iterations=1
    )

    banner("Fig. 11: Memory queueing delay (cycles)")
    print(format_table(
        ["configuration", "mean delay (cycles)", "vs baseline"],
        [
            ["w/o control plane", f"{result.baseline_mean_cycles:.1f}", "--"],
            ["high priority w/ control plane",
             f"{result.high_priority_mean_cycles:.1f}",
             f"{result.high_priority_speedup:.1f}x faster"],
            ["low priority w/ control plane",
             f"{result.low_priority_mean_cycles:.1f}",
             f"{result.low_priority_slowdown_pct:+.1f}%"],
        ],
    ))
    print("\nCDF (delay cycles -> cumulative fraction):")
    print("  delay   baseline   high-pri   low-pri")
    for i in range(0, len(result.baseline_cdf), 5):
        delay, base = result.baseline_cdf[i]
        _, high = result.high_cdf[i]
        _, low = result.low_cdf[i]
        print(f"  {delay:5.0f}   {base:8.2f}   {high:8.2f}   {low:7.2f}")

    # Shape assertions against the paper.
    # Baseline operating point ~15 cycles (paper: 15.2).
    assert 8 < result.baseline_mean_cycles < 30
    # High priority wins big (paper: 5.6x; we require >= 2.5x).
    assert result.high_priority_speedup >= 2.5
    # High priority lands in the paper's few-cycle regime.
    assert result.high_priority_mean_cycles < 8
    # Low priority pays relative to high priority.
    assert result.low_priority_mean_cycles > 2 * result.high_priority_mean_cycles
    # The high-priority CDF stochastically dominates the baseline CDF.
    for (_, high_frac), (_, base_frac) in zip(result.high_cdf, result.baseline_cdf):
        assert high_frac >= base_frac - 1e-9
