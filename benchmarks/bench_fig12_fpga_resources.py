"""Fig. 12: FPGA resource usage of the LLC and memory control planes.

Regenerated from the analytical cost model (we cannot run Vivado here;
the model's constants are calibrated to the paper's published synthesis
anchors and its scaling laws follow the hardware structure -- see
repro.hwcost.fpga). The figure's sweep: parameter/statistics tables at
64/128/256 entries, trigger tables at 16/32/64 entries, for both control
planes; plus the headline overhead ratios and the tag-array blockRAM
cost of storing owner DS-ids.
"""

from conftest import banner

from repro.analysis.tables import format_table
from repro.hwcost.fpga import (
    LLC_CONTROLLER_LUT_FF,
    MIG_CONTROLLER_LUT_FF,
    llc_control_plane_cost,
    memory_control_plane_cost,
    table_pair_cost,
    tag_array_blockram_overhead,
    trigger_table_cost,
)


def sweep():
    rows = []
    for plane, cost_fn in (("LLC", llc_control_plane_cost), ("Memory", memory_control_plane_cost)):
        for entries in (64, 128, 256):
            tables = table_pair_cost(entries, llc_datapath=(plane == "LLC"))
            rows.append([plane, f"param+stats {entries}", tables.lut, tables.lutram, tables.ff])
        for triggers in (16, 32, 64):
            cost = trigger_table_cost(triggers)
            rows.append([plane, f"trigger {triggers}", cost.lut, cost.lutram, cost.ff])
    return rows


def test_fig12_fpga_resource_sweep(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    banner("Fig. 12: FPGA resources (Logic LUT / LUTRAM / FF)")
    print(format_table(["plane", "component", "LUT", "LUTRAM", "FF"], rows))

    memory = memory_control_plane_cost(table_entries=256, trigger_entries=64)
    llc = llc_control_plane_cost(table_entries=256, trigger_entries=64)
    extra_brams, total_brams = tag_array_blockram_overhead(dsid_bits=8)
    print()
    print(f"Memory control plane total: {memory.total.lut_ff} LUT/FF "
          f"= {memory.overhead_fraction * 100:.1f}% of MIGv7 ({MIG_CONTROLLER_LUT_FF})"
          f"   [paper: 1526 LUT/FF, 10.1%]")
    print(f"LLC control plane total:    {llc.total.lut_ff} LUT/FF "
          f"= {llc.overhead_fraction * 100:.1f}% of T1 LLC ({LLC_CONTROLLER_LUT_FF})"
          f"   [paper: 2359 LUT/FF, 3.1%]")
    print(f"Tag array owner DS-id: +{extra_brams} blockRAMs "
          f"(12 -> {total_brams}, +{extra_brams / 12 * 100:.0f}%)   [paper: 12 -> 18, +50%]")

    # The paper's anchors, exactly.
    assert memory.total.lut_ff == 1526
    assert round(memory.overhead_fraction * 100, 1) == 10.1
    assert llc.total.lut_ff == 2359
    assert round(llc.overhead_fraction * 100, 1) == 3.1
    assert (extra_brams, total_brams) == (6, 18)
    assert table_pair_cost(256).lutram == 688

    # Scaling shape: storage linear in entries; trigger logic dominates
    # trigger storage (the comparators).
    assert table_pair_cost(256).lutram > 3.5 * table_pair_cost(64).lutram
    t64 = trigger_table_cost(64)
    assert t64.lut + t64.ff > 5 * t64.lutram
