"""Table 3: control plane tables.

Enumerates the live parameter/statistics/trigger table schemas of every
control plane *through the CPA register protocol and device file tree*,
and checks they carry the columns Table 3 lists (cache way masks, memory
address mapping / priority / row-buffer policy, disk bandwidth, and the
trigger rules the paper names).
"""

from conftest import banner

from repro.analysis.tables import format_table
from repro.core.triggers import TriggerOp
from repro.system.config import TABLE2
from repro.system.server import PardServer


def build_programmed_server():
    server = PardServer(TABLE2.scaled(16))
    fw = server.firmware
    fw.create_ldom("ldom", (0,), 8 << 20, priority=1, disk_share=80)
    # Install the three trigger rules Table 3 names.
    fw.sh("pardtrigger /dev/cpa0 -ldom=1 -action=0 -stats=miss_rate -cond=gt,30")
    fw.sh("pardtrigger /dev/cpa1 -ldom=1 -action=0 -stats=avg_qlat -cond=gt,20")
    fw.sh("pardtrigger /dev/cpa1 -ldom=1 -action=1 -stats=avg_qlat -cond=gt,40")
    return server


def test_table3_control_plane_tables(benchmark):
    server = benchmark.pedantic(build_programmed_server, rounds=1, iterations=1)
    fw = server.firmware

    banner("Table 3: Control Plane Tables (live schemas via sysfs)")
    rows = []
    for cpa in fw.ls("/sys/cpa"):
        ident = fw.cat(f"/sys/cpa/{cpa}/ident")
        params = fw.ls(f"/sys/cpa/{cpa}/ldoms/ldom1/parameters")
        stats = fw.ls(f"/sys/cpa/{cpa}/ldoms/ldom1/statistics")
        rows.append([cpa, ident, ", ".join(params), ", ".join(stats)])
    print(format_table(["cpa", "ident", "parameters", "statistics"], rows))

    # Table 3, row by row.
    cache_params = fw.ls("/sys/cpa/cpa0/ldoms/ldom1/parameters")
    assert "waymask" in cache_params                        # cache: way mask-bits
    mem_params = fw.ls("/sys/cpa/cpa1/ldoms/ldom1/parameters")
    assert {"addr_base", "addr_size"} <= set(mem_params)    # address mapping
    assert "priority" in mem_params                         # scheduling priority
    assert "rowbuf" in mem_params                           # row-buffer mask-bits
    disk_params = fw.ls("/sys/cpa/cpa2/ldoms/ldom1/parameters")
    assert "bandwidth" in disk_params                       # disk: bandwidth

    cache_stats = fw.ls("/sys/cpa/cpa0/ldoms/ldom1/statistics")
    assert {"miss_rate", "capacity"} <= set(cache_stats)    # cache statistics
    mem_stats = fw.ls("/sys/cpa/cpa1/ldoms/ldom1/statistics")
    assert {"bandwidth", "avg_qlat"} <= set(mem_stats)      # memory statistics
    disk_stats = fw.ls("/sys/cpa/cpa2/ldoms/ldom1/statistics")
    assert "bandwidth" in disk_stats                        # disk statistics

    # Trigger table rows: LLC miss rate and memory latency triggers.
    llc_rule = server.llc_control.triggers.rule_at(1, 0)
    assert llc_rule.stat_column == "miss_rate"
    assert llc_rule.op is TriggerOp.GT and llc_rule.threshold == 3000
    mem_rules = server.memory_control.triggers.rules()
    assert len(mem_rules) == 2
    assert all(rule.stat_column == "avg_qlat" for _, _, rule in mem_rules)

    # The programmed values landed in the hardware tables.
    assert server.memory_control.priority(1) == 1
    assert server.ide_control.quota(1) == 80
