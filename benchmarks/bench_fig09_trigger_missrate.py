"""Fig. 9: memcached's LLC miss rate over time with the trigger armed.

Memcached runs alone first; the STREAM LDoms start mid-run; the miss
rate spikes past the trigger threshold; the control plane interrupts the
PRM; the firmware's handler script dedicates half the LLC; the miss rate
falls back toward the solo level. The paper's markers: the excursion,
the trigger firing, and the post-trigger rate near (slightly above) the
solo rate.
"""

from conftest import banner, full_resolution

from repro.system.experiments import run_fig9


def test_fig9_missrate_timeline(benchmark):
    total_ms = 8.0 if full_resolution() else 5.0
    timeline = benchmark.pedantic(
        run_fig9,
        kwargs={"rps": 300_000, "total_ms": total_ms, "sample_ms": 0.25},
        rounds=1, iterations=1,
    )

    banner("Fig. 9: LLC miss-rate timeline (memcached LDom, 20 KRPS-equivalent)")
    for t, miss in zip(timeline.times_ms, timeline.miss_rates):
        marker = ""
        if timeline.trigger_time_ms is not None and abs(t - timeline.trigger_time_ms) < 0.25:
            marker = "   <-- trigger fired, firmware repartitions"
        print(f"  t={t:6.2f} ms   miss_rate={miss * 100:5.1f}%{marker}")
    print(f"  STREAM LDoms started at t={timeline.stream_start_ms} ms")
    print(f"  final memcached waymask: {timeline.final_waymask:#06x}")

    # Quiet before the streams start.
    pre_stream = [
        m for t, m in zip(timeline.times_ms, timeline.miss_rates)
        if t < timeline.stream_start_ms
    ]
    assert all(m < 0.05 for m in pre_stream)

    # The contention excursion crosses the trigger threshold and fires.
    peak = max(timeline.miss_rates)
    assert peak > 0.15
    assert timeline.trigger_time_ms is not None
    assert timeline.trigger_time_ms >= timeline.stream_start_ms

    # The reaction: half the LLC dedicated, miss rate recovered to near
    # solo (the paper: 35% -> ~10%, solo 7%).
    assert timeline.final_waymask == 0xFF00
    assert timeline.miss_rates[-1] < peak / 3
    assert timeline.miss_rates[-1] < 0.05
