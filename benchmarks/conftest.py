"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (§7): it runs the corresponding experiment, prints the
rows/series the paper reports (run pytest with ``-s`` to see them), and
asserts the qualitative shape -- who wins, by roughly what factor --
so the harness doubles as a reproduction check.

Set ``REPRO_BENCH_FULL=1`` for the full-resolution sweeps (more load
points, longer simulated windows); the default configuration keeps the
whole harness to a few minutes.
"""

from __future__ import annotations

import os

import pytest


def full_resolution() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session", autouse=True)
def _lint_gate_preflight():
    """Opt-in pre-flight: refuse to burn benchmark time on a tree with
    ERROR-severity lint findings. Same gate as ``repro all --lint-gate``;
    enable with ``REPRO_LINT_GATE=1``."""
    if os.environ.get("REPRO_LINT_GATE", "") == "1":
        from repro.analysis.lint.gate import lint_gate

        if not lint_gate():
            pytest.exit("lint gate: ERROR-severity findings", returncode=2)
    yield


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
