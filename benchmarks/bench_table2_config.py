"""Table 2: simulation parameters.

Validates that the default configuration reproduces Table 2 verbatim and
benchmarks a full server construction + short boot-style run, which is
the fixed cost every other experiment pays.
"""

from conftest import banner

from repro.analysis.tables import format_table
from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.base import Boot


def build_and_boot():
    server = PardServer(TABLE2.scaled(16))
    server.firmware.create_ldom("boot", (0,), 4 << 20)
    server.start()
    server.firmware.launch_ldom("boot", {0: Boot(footprint_bytes=256 << 10)})
    server.run_ms(1.0)
    return server


def test_table2_configuration(benchmark):
    server = benchmark.pedantic(build_and_boot, rounds=1, iterations=1)

    banner("Table 2: Simulation Parameters")
    print(format_table(["parameter", "value"], TABLE2.describe()))

    # The paper's Table 2, checked field by field.
    assert TABLE2.num_cores == 4
    assert TABLE2.cpu_period_ps == 500           # 2 GHz
    assert TABLE2.l1_size_bytes == 64 * 1024     # 64KB 2-way, 2-cycle hit
    assert TABLE2.l1_ways == 2 and TABLE2.l1_hit_cycles == 2
    assert TABLE2.llc_size_bytes == 4 << 20      # 4MB 16-way, 20-cycle hit
    assert TABLE2.llc_ways == 16 and TABLE2.llc_hit_cycles == 20
    timing = TABLE2.dram_timing
    assert (timing.t_rcd, timing.t_cl, timing.t_rp) == (11, 11, 11)  # 13.75ns
    assert timing.t_ras == 28                    # 35 ns
    geometry = TABLE2.dram_geometry
    assert geometry.channels == 1 and geometry.ranks == 2
    assert geometry.banks_per_rank == 8 and geometry.row_bytes == 1024
    assert geometry.capacity_bytes == 8 << 30
    assert TABLE2.max_table_entries == 256 and TABLE2.max_triggers == 64

    # The built server actually ran the boot workload.
    assert server.cores[0].busy_ps > 0
    assert server.llc_control.occupancy_bytes(1) > 0
