"""Sweep-runner scaling benchmark: fig8-grid wall-clock vs ``--jobs``.

Runs the same Fig. 8 mode x load grid through ``repro.runner`` at
``--jobs 1 / 2 / 4`` (configurable), reports wall-clock and speedup per
jobs value as JSON, and -- because the runner's whole contract is a
deterministic merge -- asserts that every jobs value produced a
byte-identical result list before reporting any timing.

Run as a script for the full measurement and a machine-readable JSON
record on stdout (``--json-file`` also writes it to disk; ``--check``
exits non-zero unless ``--jobs 4`` clears the 1.5x acceptance bar --
the bar is only enforced when the machine actually has >= 4 cores,
otherwise the check reports itself skipped)::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py [--check]

Run under pytest for the CI smoke mode (a reduced grid; asserts
determinism across jobs values and the JSON record shape, with no
speedup bar so single-core and noisy shared runners stay green)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_scaling.py
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time

from repro.system.experiments import ColocationSetup, run_fig8

FULL_JOBS = (1, 2, 4)
FULL_LOADS = [150_000, 250_000]
FULL_MEASURE_MS = 1.0
SMOKE_JOBS = (1, 2)
SMOKE_LOADS = [150_000]
SMOKE_MEASURE_MS = 0.5
MODES = ("solo", "shared", "trigger")
SPEEDUP_BAR = 1.5  # required at jobs=4 on a >= 4-core runner


def bench_setup() -> ColocationSetup:
    """The reduced-scale colocation the scaling grid runs at."""
    return ColocationSetup(
        scale=32,
        mc_working_set_bytes=56 << 10,
        mc_loads_per_request=60,
        stream_array_bytes=256 << 10,
        warmup_ms=0.5,
    )


def time_grid(jobs: int, loads: list[int], measure_ms: float) -> tuple[str, float, int]:
    """One grid run; returns (result digest, elapsed seconds, points)."""
    started = time.perf_counter()
    results = run_fig8(
        loads_rps=loads, modes=MODES, setup=bench_setup(),
        measure_ms=measure_ms, jobs=jobs,
    )
    elapsed = time.perf_counter() - started
    digest = hashlib.sha256(repr(results).encode()).hexdigest()
    return digest, elapsed, len(results)


def run_benchmark(
    jobs_list=FULL_JOBS, loads=None, measure_ms: float = FULL_MEASURE_MS
) -> dict:
    loads = loads or FULL_LOADS
    rows = {}
    digests = set()
    serial_elapsed = None
    for jobs in jobs_list:
        digest, elapsed, points = time_grid(jobs, loads, measure_ms)
        digests.add(digest)
        if jobs == 1:
            serial_elapsed = elapsed
        rows[jobs] = {
            "jobs": jobs,
            "points": points,
            "elapsed_s": round(elapsed, 3),
            "speedup_vs_serial": (
                round(serial_elapsed / elapsed, 3) if serial_elapsed else None
            ),
            "result_digest": digest,
        }
    # The determinism contract: every jobs value, same bytes out.
    if len(digests) != 1:
        raise AssertionError(
            f"sweep results diverged across jobs values: {sorted(digests)}"
        )
    return {
        "benchmark": "sweep_scaling",
        "grid": {"modes": list(MODES), "loads_rps": loads,
                 "measure_ms": measure_ms},
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "results": {str(jobs): rows[jobs] for jobs in sorted(rows)},
    }


# -- pytest smoke mode (used by CI) -----------------------------------------


def test_sweep_scaling_smoke():
    record = run_benchmark(
        jobs_list=SMOKE_JOBS, loads=SMOKE_LOADS, measure_ms=SMOKE_MEASURE_MS
    )
    print()
    print(json.dumps(record, indent=2))
    rows = record["results"]
    assert set(rows) == {str(j) for j in SMOKE_JOBS}
    for row in rows.values():
        assert row["points"] == len(MODES) * len(SMOKE_LOADS)
        assert row["elapsed_s"] > 0
    # run_benchmark already raised if the parallel digest diverged from
    # serial; restate the contract explicitly for the reader.
    digests = {row["result_digest"] for row in rows.values()}
    assert len(digests) == 1


# -- script mode ------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs-list", type=str, default="1,2,4",
                        help="comma-separated jobs values (default 1,2,4)")
    parser.add_argument("--loads", type=str, default="",
                        help="comma-separated RPS values for the grid")
    parser.add_argument("--measure-ms", type=float, default=FULL_MEASURE_MS)
    parser.add_argument("--json-file", default=None)
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit non-zero unless jobs=4 reaches {SPEEDUP_BAR}x over serial "
             f"(enforced only on machines with >= 4 cores)",
    )
    args = parser.parse_args(argv)
    jobs_list = tuple(int(x) for x in args.jobs_list.split(","))
    loads = [int(x) for x in args.loads.split(",")] if args.loads else None
    record = run_benchmark(jobs_list=jobs_list, loads=loads,
                           measure_ms=args.measure_ms)
    text = json.dumps(record, indent=2)
    print(text)
    if args.json_file:
        with open(args.json_file, "w") as fh:
            fh.write(text + "\n")
    if args.check:
        cores = os.cpu_count() or 1
        row = record["results"].get("4")
        if row is None:
            print("FAIL: --check needs jobs=4 in --jobs-list", file=sys.stderr)
            return 1
        if cores < 4:
            print(
                f"check skipped: {SPEEDUP_BAR}x bar needs >= 4 cores, "
                f"this machine has {cores} "
                f"(measured {row['speedup_vs_serial']}x)",
                file=sys.stderr,
            )
            return 0
        if row["speedup_vs_serial"] < SPEEDUP_BAR:
            print(
                f"FAIL: jobs=4 speedup {row['speedup_vs_serial']}x below "
                f"the {SPEEDUP_BAR}x acceptance bar",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
