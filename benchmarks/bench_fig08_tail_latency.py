"""Fig. 8: memcached tail response time vs offered load.

Three curves -- solo, shared (three STREAM LDoms co-located, no policy),
and shared with the LLC miss-rate trigger installed -- over a load
sweep. The paper's markers, all asserted here:

- solo serves the peak load (22.5 paper-KRPS) with a modest tail but
  only 25% CPU utilization;
- naive sharing reaches 100% utilization (the 4x headline) but the tail
  at high load blows up by orders of magnitude;
- with the trigger => repartition rule, utilization stays 100% while the
  tail returns to near-solo until close to the solo knee.

Load is normalized to the paper's KRPS axis via PAPER_KRPS_SCALE (this
reproduction's solo knee maps to 22.5 KRPS; see EXPERIMENTS.md).
"""

from conftest import banner, full_resolution

from repro.analysis.tables import format_table
from repro.system.experiments import run_fig8


def test_fig8_tail_latency_curves(benchmark):
    if full_resolution():
        loads = [222_000, 278_000, 333_000, 389_000, 444_000, 500_000]
        measure_ms = 2.5
    else:
        loads = [222_000, 389_000, 500_000]
        measure_ms = 2.0
    results = benchmark.pedantic(
        run_fig8,
        kwargs={"loads_rps": loads, "measure_ms": measure_ms},
        rounds=1, iterations=1,
    )

    banner("Fig. 8: 95th-percentile response time vs load")
    rows = [
        [
            r.mode,
            f"{r.paper_krps:.1f}",
            f"{r.p95_ms:.3f}",
            f"{r.mean_ms:.3f}",
            f"{r.cpu_utilization * 100:.0f}%",
            f"{(r.llc_miss_rate or 0) * 100:.1f}%",
            "yes" if r.trigger_fired else "no",
        ]
        for r in results
    ]
    print(format_table(
        ["mode", "paper-KRPS", "p95 ms", "mean ms", "CPU util", "LLC miss", "trigger"],
        rows,
    ))

    by_mode = {}
    for r in results:
        by_mode.setdefault(r.mode, []).append(r)
    low, mid, high = loads[0], loads[len(loads) // 2], loads[-1]

    def point(mode, rps):
        return next(r for r in by_mode[mode] if r.rps == rps)

    # Utilization: solo 25%, co-located 100% (the 4x headline).
    assert all(r.cpu_utilization == 0.25 for r in by_mode["solo"])
    assert all(r.cpu_utilization == 1.0 for r in by_mode["shared"])
    assert all(r.cpu_utilization == 1.0 for r in by_mode["trigger"])

    # Naive sharing destroys the tail well before the solo knee: an
    # order of magnitude at the mid load, and several x even at the knee
    # where solo itself has started to queue.
    assert point("shared", mid).p95_ms > 10 * point("solo", mid).p95_ms
    assert point("shared", high).p95_ms > 5 * point("solo", high).p95_ms
    # ... driven by LLC contention:
    assert point("shared", low).llc_miss_rate > 0.10
    assert point("solo", low).llc_miss_rate < 0.05

    # The trigger fires and restores near-solo behaviour at moderate load.
    assert all(r.trigger_fired for r in by_mode["trigger"])
    assert point("trigger", low).llc_miss_rate < 0.05
    assert point("trigger", low).p95_ms < 3 * point("solo", low).p95_ms
    assert point("trigger", mid).p95_ms < 3 * point("solo", mid).p95_ms
    # At every load the trigger curve beats naive sharing.
    for rps in loads:
        assert point("trigger", rps).p95_ms < point("shared", rps).p95_ms
