"""Fig. 7: fully hardware-supported virtualization.

Three LDoms (437.leslie3d, 470.lbm, CacheFlush) boot and launch in turn
on one PARD server; the control planes report per-LDom LLC occupancy and
memory bandwidth over time; the operator's ``echo`` commands repartition
the LLC mid-run. The paper's markers: each LDom's occupancy ramps as it
boots, CacheFlush collapses LDom0's occupancy (the ``T_CacheFlush``
moment), and the waymask commands restore LDom0 to half the LLC.
"""

from conftest import banner, full_resolution

from repro.analysis.series import ascii_sparkline
from repro.system.experiments import run_fig7


def test_fig7_dynamic_partitioning(benchmark):
    phase_ms = 2.0 if full_resolution() else 1.0
    timeline = benchmark.pedantic(
        run_fig7, kwargs={"phase_ms": phase_ms}, rounds=1, iterations=1
    )

    banner("Fig. 7: Dynamic partitioning timeline (per-LDom LLC occupancy)")
    for name, series in timeline.llc_occupancy_bytes.items():
        kb = [v / 1024 for v in series]
        print(f"{name:12s} occ KB  |{ascii_sparkline(kb)}|  last={kb[-1]:.0f}KB")
    for name, series in timeline.memory_bandwidth_bytes.items():
        mb = [v / 1e6 for v in series]
        print(f"{name:12s} bw MB/w |{ascii_sparkline(mb)}|  last={mb[-1]:.2f}MB")
    for when, what in timeline.events:
        print(f"  t={when:6.2f}ms  {what}")

    names = ["ldom_leslie", "ldom_lbm", "ldom_flush"]
    samples = len(timeline.times_ms)
    launches = [when for when, what in timeline.events if what.startswith("launch")]
    repartition = [when for when, what in timeline.events if "waymask" in what][0]

    def at(name, t_ms):
        """Occupancy of an LDom at the sample closest to ``t_ms``."""
        index = min(
            range(samples), key=lambda i: abs(timeline.times_ms[i] - t_ms)
        )
        return timeline.llc_occupancy_bytes[name][index]

    # Each LDom's occupancy is zero before its launch and grows after.
    for name, launch in zip(names, launches):
        if launch > timeline.times_ms[0]:
            assert at(name, launch - phase_ms / 2) == 0
        assert at(name, launch + phase_ms) > 0

    # The CacheFlush launch collapses the first LDom's occupancy
    # (the paper's T_CacheFlush moment).
    flush_launch = launches[2]
    before_flush = at("ldom_leslie", flush_launch)
    after_flush = at("ldom_leslie", repartition)
    assert after_flush < before_flush

    # The echo waymask repartition restores LDom0 toward half the LLC
    # while the flusher shrinks.
    end = timeline.times_ms[-1]
    assert at("ldom_leslie", end) > after_flush * 1.5
    assert at("ldom_flush", end) < at("ldom_flush", repartition)
