"""Fig. 10: disk I/O performance isolation.

Two LDoms run ``dd``-style writers against the shared IDE controller.
They start at the default fair share (50/50); mid-run the operator runs
``echo 80 > /sys/cpa/cpa2/ldoms/ldom1/parameters/bandwidth`` and the
split moves to 80/20 -- with no guest modification, which is the point
of doing it in the I/O control plane.
"""

from conftest import banner, full_resolution

from repro.system.experiments import run_fig10


def test_fig10_disk_bandwidth_isolation(benchmark):
    phase_ms = 400.0 if full_resolution() else 160.0
    timeline = benchmark.pedantic(
        run_fig10,
        kwargs={"phase_ms": phase_ms, "sample_ms": 20.0, "block_bytes": 4 << 20},
        rounds=1, iterations=1,
    )

    banner("Fig. 10: Disk bandwidth share over time")
    for i, t in enumerate(timeline.times_ms):
        a = timeline.bandwidth_share["ldom_a"][i] * 100
        b = timeline.bandwidth_share["ldom_b"][i] * 100
        marker = ""
        if timeline.quota_change_ms is not None and abs(t - 20.0 - timeline.quota_change_ms) < 10:
            marker = "   <-- echo 80 > .../parameters/bandwidth"
        print(f"  t={t:7.1f} ms   LDom0={a:5.1f}%  LDom1={b:5.1f}%{marker}")

    change = timeline.quota_change_ms
    shares_a = timeline.bandwidth_share["ldom_a"]
    before = [
        s for t, s in zip(timeline.times_ms, shares_a) if 40 < t <= change
    ]
    after = [
        s for t, s in zip(timeline.times_ms, shares_a) if t > change + 20
    ]
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)

    # Fair share first, 80/20 after the quota write.
    assert abs(mean_before - 0.5) < 0.08
    assert abs(mean_after - 0.8) < 0.08
    # The sum of shares is always 1 while both are writing.
    for i in range(len(timeline.times_ms)):
        total = (
            timeline.bandwidth_share["ldom_a"][i]
            + timeline.bandwidth_share["ldom_b"][i]
        )
        assert abs(total - 1.0) < 1e-6
