"""repro.runner: parallel sweep execution for experiment grids.

Expresses a grid as independent :class:`SweepPoint` jobs (picklable
spec: builder name + params + explicit seed), fans them out over a
process pool, and merges results -- values, metric registries, spans,
snapshots -- deterministically by point index, so ``--jobs N`` output is
byte-identical to serial. See DESIGN.md ("Parallel sweep execution").
"""

from .registry import builder_names, register_builder, resolve_builder
from .sweep import (
    PointResult,
    SweepError,
    SweepPoint,
    SweepResult,
    TelemetryConfig,
    default_jobs,
    run_sweep,
)

__all__ = [
    "PointResult",
    "SweepError",
    "SweepPoint",
    "SweepResult",
    "TelemetryConfig",
    "builder_names",
    "default_jobs",
    "register_builder",
    "resolve_builder",
    "run_sweep",
]
