"""Stock sweep-point builders: one per experiment driver.

Each builder reconstructs an experiment from a :class:`SweepPoint`'s
picklable params -- dataclass setups travel as ``asdict`` dicts -- runs
it with a worker-local telemetry hub, and returns a picklable value
(result dataclasses of plain floats/lists, or plain dicts). Builders
must never consult global state: everything a point needs is in its
spec, which is what makes results identical at any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Optional

from repro.runner.registry import register_builder
from repro.system.experiments import (
    ColocationSetup,
    run_colocation_point,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig11_controller_point,
)


def _setup_from(params: dict) -> Optional[ColocationSetup]:
    raw = params.get("setup")
    return ColocationSetup(**raw) if raw is not None else None


@register_builder("colocation_point")
def build_colocation_point(point, telemetry):
    """One (mode, load) point of the Fig. 8 grid."""
    params = point.params
    return run_colocation_point(
        params["mode"],
        params["rps"],
        setup=_setup_from(params),
        measure_ms=params.get("measure_ms", 2.5),
        telemetry=telemetry,
        seed=point.seed,
    )


@register_builder("fig7")
def build_fig7(point, telemetry):
    params = point.params
    return run_fig7(
        setup=_setup_from(params),
        phase_ms=params.get("phase_ms", 1.0),
        sample_ms=params.get("sample_ms", 0.25),
        telemetry=telemetry,
    )


@register_builder("fig8")
def build_fig8(point, telemetry):
    """The whole Fig. 8 grid as one job (run serially inside the worker)."""
    params = point.params
    return run_fig8(
        loads_rps=params.get("loads_rps"),
        modes=tuple(params.get("modes", ("solo", "shared", "trigger"))),
        setup=_setup_from(params),
        measure_ms=params.get("measure_ms", 2.5),
        telemetry=telemetry,
        jobs=1,
    )


@register_builder("fig9")
def build_fig9(point, telemetry):
    params = point.params
    return run_fig9(
        rps=params.get("rps", 300_000),
        setup=_setup_from(params),
        stream_delay_ms=params.get("stream_delay_ms", 1.0),
        total_ms=params.get("total_ms", 5.0),
        sample_ms=params.get("sample_ms", 0.25),
        telemetry=telemetry,
    )


@register_builder("fig10")
def build_fig10(point, telemetry):
    params = point.params
    return run_fig10(
        setup=_setup_from(params),
        phase_ms=params.get("phase_ms", 200.0),
        sample_ms=params.get("sample_ms", 20.0),
        block_bytes=params.get("block_bytes", 4 << 20),
        telemetry=telemetry,
    )


@register_builder("fig11")
def build_fig11(point, telemetry):
    """The whole Fig. 11 comparison as one job (serial inside the worker)."""
    params = point.params
    return run_fig11(
        inject_rate=params.get("inject_rate", 0.75),
        num_requests=params.get("num_requests", 6000),
        seed=point.seed or params.get("seed", 7),
        row_hit_fraction=params.get("row_hit_fraction", 0.5),
        hp_row_buffer=params.get("hp_row_buffer", False),
        telemetry=telemetry,
        jobs=1,
    )


@register_builder("fig11_controller")
def build_fig11_controller(point, telemetry):
    """One Fig. 11 controller configuration at a precomputed inject rate."""
    params = point.params
    return run_fig11_controller_point(
        with_control_plane=params["with_control_plane"],
        rate_req_per_cycle=params["rate_req_per_cycle"],
        num_requests=params["num_requests"],
        seed=point.seed,
        row_hit_fraction=params["row_hit_fraction"],
        hp_row_buffer=params["hp_row_buffer"],
        telemetry=telemetry,
    )
