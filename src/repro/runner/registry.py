"""Builder registry: resolve a :class:`SweepPoint`'s builder name.

A sweep point travels to worker processes as a picklable spec -- builder
*name* plus a params dict plus a seed -- never as a closure. Workers
resolve the name back to a callable through this registry, so a spec is
valid in any process that can import the repo.

The stock builders (one per experiment driver) live in
:mod:`repro.runner.builders`, imported lazily on first resolution to
keep this module dependency-free (it is imported by the sweep core,
which the experiment drivers themselves import). Tests and downstream
code may register additional builders with :func:`register_builder`;
registrations made before the process pool is created are inherited by
fork-started workers.

Builder signature::

    def builder(point: SweepPoint, telemetry: Optional[Telemetry]) -> value

where ``value`` must be picklable (it is shipped back to the parent).
"""

from __future__ import annotations

from typing import Callable, Optional

_BUILDERS: dict[str, Callable] = {}
_STOCK_LOADED = False


def register_builder(name: str, fn: Optional[Callable] = None):
    """Register ``fn`` under ``name``; usable as a decorator.

    Re-registering a name replaces the previous builder (last one wins),
    which keeps repeated test-module imports idempotent.
    """
    if fn is None:
        def decorator(f: Callable) -> Callable:
            _BUILDERS[name] = f
            return f
        return decorator
    _BUILDERS[name] = fn
    return fn


def _ensure_stock_builders() -> None:
    global _STOCK_LOADED
    if not _STOCK_LOADED:
        # Deferred: builders imports the experiment drivers, which import
        # the sweep core, which imports this module.
        import repro.runner.builders  # noqa: F401

        _STOCK_LOADED = True


def resolve_builder(name: str) -> Callable:
    """Return the builder registered under ``name`` (KeyError if absent)."""
    _ensure_stock_builders()
    try:
        return _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS)) or "<none>"
        raise KeyError(f"unknown builder {name!r}; registered: {known}") from None


def builder_names() -> list[str]:
    _ensure_stock_builders()
    return sorted(_BUILDERS)
