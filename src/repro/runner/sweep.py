"""The sweep runner: process-pool fan-out with a deterministic merge.

The paper's evaluation is dominated by *grids* of independent
simulations -- Fig. 8 is modes x offered loads, Fig. 11 compares
controller configurations, ``repro all`` chains every figure -- and each
grid point builds its own engine, server and RNGs from an explicit seed.
That makes a sweep embarrassingly parallel, provided two contracts hold:

1. **Determinism.** Results are merged *by point index*, never by
   completion order, so a sweep's output is byte-identical between
   ``jobs=1`` (the exact serial fallback: no pool, points executed
   in index order in the calling process) and any ``jobs=N``. Worker
   telemetry is shipped back as a picklable payload and merged into the
   parent hub in index order too (see ``Telemetry.merge_payload``).

2. **Robustness.** A point that raises is captured with its traceback;
   a worker crash or a chunk timeout marks the affected points failed;
   surviving points still merge. Failed (non-timed-out) points are
   retried once *in the parent process* before being reported, so one
   bad seed cannot lose a 20-minute sweep. Timed-out points are not
   retried in the parent -- a hang would stall the whole sweep with no
   way to preempt it.

Points travel as picklable specs (:class:`SweepPoint`: builder name +
params + seed), resolved in the worker via :mod:`repro.runner.registry`.
Scheduling is chunked: points are split into contiguous chunks (default
~4 chunks per worker) so pool IPC amortizes over many short points.
"""

from __future__ import annotations

import os
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.runner.registry import resolve_builder
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable recipe for building one worker-local Telemetry hub."""

    span_sample: int = 100
    span_capacity: int = 10_000
    snapshot_period_ms: float = 1.0
    profile_engine: bool = False

    @classmethod
    def from_hub(cls, hub: Telemetry) -> "TelemetryConfig":
        return cls(
            span_sample=hub.spans.sample_every,
            span_capacity=hub.spans.capacity,
            snapshot_period_ms=hub.snapshot_period_ms,
            profile_engine=hub.profile_engine,
        )

    def build(self) -> Telemetry:
        return Telemetry(
            span_sample=self.span_sample,
            span_capacity=self.span_capacity,
            snapshot_period_ms=self.snapshot_period_ms,
            profile_engine=self.profile_engine,
        )


@dataclass(frozen=True)
class SweepPoint:
    """One independent job of an experiment grid (picklable spec).

    ``seed`` is the point's *explicit* workload seed: every RNG the
    point's builder creates must derive from it (or from other spec
    fields), never from global or run-order state, so the point produces
    the same result serially, in any worker, and in any order.
    """

    index: int
    builder: str
    params: dict
    seed: int = 0
    label: str = ""

    def display_label(self) -> str:
        return self.label or f"{self.builder}[{self.index}]"


@dataclass
class PointResult:
    """Outcome of one sweep point (always present, even on failure)."""

    index: int
    label: str
    ok: bool
    value: Any = None
    error: Optional[str] = None  # traceback / reason text when not ok
    attempts: int = 1
    retried: bool = False
    timed_out: bool = False
    duration_s: float = 0.0
    telemetry: Optional[dict] = None  # worker hub payload (ok points only)


class SweepError(RuntimeError):
    """Raised by :meth:`SweepResult.raise_on_failure`; carries the result."""

    def __init__(self, result: "SweepResult"):
        self.result = result
        failed = result.failed
        lines = [f"{len(failed)}/{len(result.points)} sweep points failed:"]
        for pr in failed:
            reason = (pr.error or "unknown error").strip().splitlines()[-1]
            lines.append(f"  #{pr.index} {pr.label}: {reason}")
        super().__init__("\n".join(lines))


@dataclass
class SweepResult:
    """All point results, ordered by point index (the merge order)."""

    points: list[PointResult]
    jobs: int
    elapsed_s: float = 0.0

    @property
    def failed(self) -> list[PointResult]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def values(self) -> list[Any]:
        """Values of successful points, in index order."""
        return [p.value for p in self.points if p.ok]

    def raise_on_failure(self) -> "SweepResult":
        if not self.ok:
            raise SweepError(self)
        return self


# -- point / chunk execution (runs in workers and in the parent) ------------


def _execute_point(
    point: SweepPoint, tconf: Optional[TelemetryConfig]
) -> PointResult:
    """Run one point with a fresh telemetry hub; never raises."""
    from repro.sim.packet import reset_packet_ids

    # Packet ids are embedded in span payloads; restarting the counter
    # makes the payload a pure function of the point spec, so serial and
    # pooled execution merge to identical bytes.
    reset_packet_ids()
    started = time.perf_counter()
    label = point.display_label()
    try:
        builder = resolve_builder(point.builder)
        telemetry = tconf.build() if tconf is not None else None
        if telemetry is not None:
            telemetry.begin_run(label)
        value = builder(point, telemetry)
        return PointResult(
            index=point.index,
            label=label,
            ok=True,
            value=value,
            duration_s=time.perf_counter() - started,
            telemetry=telemetry.dump_payload() if telemetry is not None else None,
        )
    except BaseException:  # simlint: disable=EXC001 -- see below
        # KeyboardInterrupt in a worker should surface as a failed point,
        # not tear down the pool protocol mid-message.
        return PointResult(
            index=point.index,
            label=label,
            ok=False,
            error=traceback.format_exc(),
            duration_s=time.perf_counter() - started,
        )


def _execute_chunk(
    chunk: Sequence[SweepPoint], tconf: Optional[TelemetryConfig]
) -> list[PointResult]:
    return [_execute_point(point, tconf) for point in chunk]


# -- the runner --------------------------------------------------------------


def default_jobs() -> int:
    return os.cpu_count() or 1


def _validate_points(points: Sequence[SweepPoint]) -> list[SweepPoint]:
    ordered = sorted(points, key=lambda p: p.index)
    seen: set[int] = set()
    for p in ordered:
        if p.index in seen:
            raise ValueError(f"duplicate sweep point index {p.index}")
        seen.add(p.index)
    return ordered


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    chunk_size: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: bool = False,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> SweepResult:
    """Execute ``points`` and return results merged by point index.

    ``jobs=None`` uses ``os.cpu_count()``; ``jobs=1`` is the exact
    serial fallback (no pool, no pickling of results). ``timeout_s`` is
    a per-point budget; a chunk gets ``timeout_s * len(chunk)`` and its
    uncollected points are marked timed out when it expires. ``retries``
    failed (non-timed-out) points are re-run in the parent process.
    ``on_result`` is invoked once per point in collection order (chunk
    submission order -- deterministic, not completion order).
    """
    ordered = _validate_points(points)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not ordered:
        return SweepResult(points=[], jobs=jobs)

    hub = telemetry if (telemetry is not None and telemetry.enabled) else None
    tconf = TelemetryConfig.from_hub(hub) if hub is not None else None
    started = time.perf_counter()

    def note(pr: PointResult) -> None:
        if progress:
            state = "ok" if pr.ok else ("timeout" if pr.timed_out else "FAILED")
            print(
                f"[sweep] point #{pr.index} {pr.label}: {state} "
                f"({pr.duration_s:.1f}s)",
                file=sys.stderr,
            )
        if on_result is not None:
            on_result(pr)

    results: dict[int, PointResult] = {}
    if jobs == 1:
        for point in ordered:
            pr = _execute_point(point, tconf)
            results[point.index] = pr
            note(pr)
    else:
        for pr in _pool_pass(ordered, jobs, tconf, chunk_size, timeout_s):
            results[pr.index] = pr
            note(pr)

    # In-parent retry of failed points (never timed-out ones: a hang
    # would stall the sweep with no way to preempt the parent).
    by_index = {p.index: p for p in ordered}
    for index in sorted(results):
        pr = results[index]
        budget = retries
        while not pr.ok and not pr.timed_out and budget > 0:
            budget -= 1
            prior = pr
            pr = _execute_point(by_index[index], tconf)
            pr.retried = True
            pr.attempts = prior.attempts + 1
            if not pr.ok:
                pr.error = (
                    f"{pr.error}\n(earlier attempt failed with)\n{prior.error}"
                )
            results[index] = pr
            note(pr)

    merged = [results[p.index] for p in ordered]
    if hub is not None:
        # Index order, never completion order: the merged artifact must
        # be byte-identical for every jobs value.
        for pr in merged:
            if pr.ok and pr.telemetry is not None:
                hub.merge_payload(pr.telemetry)
    return SweepResult(
        points=merged, jobs=jobs, elapsed_s=time.perf_counter() - started
    )


def _pool_pass(
    ordered: list[SweepPoint],
    jobs: int,
    tconf: Optional[TelemetryConfig],
    chunk_size: Optional[int],
    timeout_s: Optional[float],
):
    """Fan chunks out over a process pool; yield one result per point.

    Yields in chunk submission order (index order across chunks). A
    broken pool (hard worker crash) fails the affected chunks' points;
    the caller's retry pass re-runs them in the parent.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeoutError
    from concurrent.futures.process import BrokenProcessPool

    if chunk_size is None:
        chunk_size = max(1, -(-len(ordered) // (jobs * 4)))
    chunks = [
        ordered[i:i + chunk_size] for i in range(0, len(ordered), chunk_size)
    ]
    executor = ProcessPoolExecutor(max_workers=min(jobs, len(chunks)))
    clean = True
    try:
        futures = [
            executor.submit(_execute_chunk, chunk, tconf) for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            budget = None if timeout_s is None else timeout_s * len(chunk)
            try:
                for pr in future.result(timeout=budget):
                    yield pr
            except FuturesTimeoutError:
                future.cancel()
                clean = False
                for point in chunk:
                    yield PointResult(
                        index=point.index,
                        label=point.display_label(),
                        ok=False,
                        timed_out=True,
                        error=(
                            f"timed out after {budget:.1f}s "
                            f"({timeout_s:.1f}s/point x {len(chunk)} points)"
                        ),
                    )
            except BrokenProcessPool as exc:
                clean = False
                for point in chunk:
                    yield PointResult(
                        index=point.index,
                        label=point.display_label(),
                        ok=False,
                        error=f"worker process died: {exc!r}",
                    )
    finally:
        # After a timeout/crash don't block on stragglers; the leaked
        # worker exits when its current point finishes.
        executor.shutdown(wait=clean, cancel_futures=True)
