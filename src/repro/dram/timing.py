"""DDR3 timing and geometry (Table 2 of the paper).

The simulated channel is DDR3-1600 11-11-11 with Micron MT41J512M8-class
4 Gbit chips: one channel, two ranks, eight banks per rank, 1 KB row
buffers, burst length 8. All timing constants are expressed in memory
bus cycles (tCK = 1.25 ns); the controller converts to picoseconds via
its clock domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import DRAM_CLOCK_PS


@dataclass(frozen=True)
class DramTiming:
    """DDR3 timing constraints in memory cycles.

    Table 2 gives nanosecond values at tCK = 1.25 ns:
    tRCD = tCL = tRP = 13.75 ns = 11 cycles, tRAS = 35 ns = 28 cycles,
    tRRD = 6 ns ~ 5 cycles, burst of 8 transfers = 4 cycles (DDR).
    """

    t_rcd: int = 11  # row-to-column (ACTIVATE -> READ/WRITE)
    t_cl: int = 11   # CAS latency (READ -> first data)
    t_rp: int = 11   # row precharge
    t_ras: int = 28  # minimum row-active time (ACTIVATE -> PRECHARGE)
    t_rrd: int = 5   # ACTIVATE-to-ACTIVATE, different banks
    t_burst: int = 4  # BL8 on a DDR bus = 4 bus cycles
    t_refi: int = 6240  # refresh interval: 7.8 us at tCK = 1.25 ns
    t_rfc: int = 208    # refresh cycle time: 260 ns for a 4 Gbit device

    def __post_init__(self) -> None:
        for field_name in (
            "t_rcd", "t_cl", "t_rp", "t_ras", "t_rrd", "t_burst", "t_refi", "t_rfc"
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def row_hit_latency(self) -> int:
        """Issue-to-last-data for a row-buffer hit, in cycles."""
        return self.t_cl + self.t_burst

    @property
    def row_closed_latency(self) -> int:
        """Issue-to-last-data when the bank is precharged (row empty)."""
        return self.t_rcd + self.t_cl + self.t_burst

    @property
    def row_conflict_latency(self) -> int:
        """Issue-to-last-data when another row is open (precharge first)."""
        return self.t_rp + self.t_rcd + self.t_cl + self.t_burst


@dataclass(frozen=True)
class DramGeometry:
    """Channel organization; Table 2's single-channel configuration."""

    channels: int = 1
    ranks: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 1024
    capacity_bytes: int = 8 * 1024 ** 3  # 8 GB

    def __post_init__(self) -> None:
        if min(self.channels, self.ranks, self.banks_per_rank, self.row_bytes) <= 0:
            raise ValueError("geometry values must be positive")
        if self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row_bytes must be a power of two")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.banks_per_rank

    @property
    def rows_per_bank(self) -> int:
        return self.capacity_bytes // (self.total_banks * self.row_bytes)


def decompose_address(addr: int, geometry: DramGeometry) -> tuple[int, int, int]:
    """DRAM physical address -> ``(bank_index, row, column)``.

    Consecutive rows interleave across banks so streaming workloads
    spread over the whole channel (standard row-interleaved mapping).
    ``bank_index`` is flat across ranks (0 .. total_banks-1).
    """
    if addr < 0:
        raise ValueError(f"negative DRAM address {addr}")
    column = addr % geometry.row_bytes
    row_number = addr // geometry.row_bytes
    bank_index = row_number % geometry.total_banks
    row = row_number // geometry.total_banks
    return bank_index, row, column


DRAM_CYCLE_PS = DRAM_CLOCK_PS
