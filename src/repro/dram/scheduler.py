"""Memory request scheduling: priority queues + FR-FCFS.

PARD's memory control plane adds *priority queueing* in front of the
DRAM scheduler (Fig. 5): requests are steered into per-priority queues by
their DS-id's priority parameter, and the arbiter picks from the highest
non-empty priority first, applying FR-FCFS (first-ready = row-buffer hit
first, then oldest first [Rixner et al., ISCA'00]) within the chosen
queue. With a single priority level this degrades to plain FR-FCFS,
which is the baseline ("w/o control plane") configuration of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dram.bank import BankState
from repro.sim.packet import MemoryPacket


@dataclass
class PendingRequest:
    """A queued memory request with its decoded DRAM coordinates."""

    packet: MemoryPacket
    bank_index: int
    row: int
    priority: int
    enqueued_at_ps: int
    on_response: Callable[[MemoryPacket], None]
    issued_at_ps: Optional[int] = field(default=None)

    @property
    def ds_id(self) -> int:
        return self.packet.effective_ds_id


class PriorityFrFcfsScheduler:
    """Bounded set of priority queues with FR-FCFS selection."""

    def __init__(self, priority_levels: int = 2):
        if priority_levels <= 0:
            raise ValueError("priority_levels must be positive")
        self.priority_levels = priority_levels
        self._queues: list[list[PendingRequest]] = [[] for _ in range(priority_levels)]
        self.total_enqueued = 0

    @property
    def occupancy(self) -> int:
        return sum(len(q) for q in self._queues)

    def queue_depth(self, priority: int) -> int:
        return len(self._queues[priority])

    def enqueue(self, request: PendingRequest) -> None:
        if not 0 <= request.priority < self.priority_levels:
            raise ValueError(
                f"priority {request.priority} out of range "
                f"[0, {self.priority_levels})"
            )
        self._queues[request.priority].append(request)
        self.total_enqueued += 1

    def requeue(self, request: PendingRequest) -> None:
        """Return a selected-but-not-issued request to its queue.

        FR-FCFS ordering is by enqueue timestamp, so the position in the
        backing list does not matter.
        """
        self._queues[request.priority].append(request)

    def head(self, priority: int) -> Optional[PendingRequest]:
        """The oldest request of one priority class (FIFO head), if any."""
        queue = self._queues[priority]
        return queue[0] if queue else None

    def pop_head(self, priority: int) -> PendingRequest:
        return self._queues[priority].pop(0)

    def select(self, banks: list[BankState], now_ps: int) -> Optional[PendingRequest]:
        """Pick (and remove) the next request to issue, or None.

        Highest priority queue first; within a queue, FR-FCFS restricted
        to requests whose bank can accept a command now.
        """
        for priority in range(self.priority_levels - 1, -1, -1):
            queue = self._queues[priority]
            if not queue:
                continue
            chosen = self._fr_fcfs(queue, banks, now_ps)
            if chosen is not None:
                queue.remove(chosen)
                return chosen
        return None

    def next_bank_ready_ps(self, banks: list[BankState], now_ps: int) -> Optional[int]:
        """Earliest future time any queued request's bank becomes ready."""
        earliest: Optional[int] = None
        for queue in self._queues:
            for request in queue:
                ready = banks[request.bank_index].ready_at_ps
                candidate = max(ready, now_ps)
                if earliest is None or candidate < earliest:
                    earliest = candidate
        return earliest

    @staticmethod
    def _fr_fcfs(
        queue: list[PendingRequest], banks: list[BankState], now_ps: int
    ) -> Optional[PendingRequest]:
        first_ready: Optional[PendingRequest] = None
        oldest: Optional[PendingRequest] = None
        for request in queue:
            bank = banks[request.bank_index]
            if bank.ready_at_ps > now_ps:
                continue  # the bank cannot take a command yet
            if bank.row_state(request.row) == "hit":
                if first_ready is None or request.enqueued_at_ps < first_ready.enqueued_at_ps:
                    first_ready = request
            if oldest is None or request.enqueued_at_ps < oldest.enqueued_at_ps:
                oldest = request
        return first_ready if first_ready is not None else oldest
