"""DRAM bank state.

Each bank tracks its open row and the earliest time it can accept a new
command. PARD §4.2 adds one *extra row buffer per DRAM chip for
high-priority requests*, so that low-priority traffic cannot destroy the
row locality of high-priority traffic; we model that as a second open-row
slot per bank that only high-priority requests allocate into (both slots
are checked for hits by every request).
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramTiming


class BankState:
    """One bank's row-buffer and timing state."""

    def __init__(self, index: int, hp_row_buffer: bool = False):
        self.index = index
        self.hp_row_buffer = hp_row_buffer
        self.open_row: Optional[int] = None
        self.hp_open_row: Optional[int] = None
        self.ready_at_ps = 0      # earliest time a new access may issue
        self.activated_at_ps = 0  # when the regular row was opened (for tRAS)

    def row_state(self, row: int) -> str:
        """'hit', 'closed', or 'conflict' for an access to ``row``."""
        if row == self.open_row:
            return "hit"
        if self.hp_row_buffer and row == self.hp_open_row:
            return "hit"
        if self.open_row is None:
            return "closed"
        return "conflict"

    def access_latency_cycles(self, row: int, timing: DramTiming, high_priority: bool) -> int:
        """Issue-to-last-data latency in memory cycles for this access.

        A high-priority access that misses while a regular row is open
        can activate into the extra row buffer without precharging the
        regular row first (when the buffer is present), turning a
        conflict into a closed-bank access.
        """
        state = self.row_state(row)
        if state == "hit":
            return timing.row_hit_latency
        if state == "closed":
            return timing.row_closed_latency
        if high_priority and self.hp_row_buffer:
            return timing.row_closed_latency
        return timing.row_conflict_latency

    def record_access(
        self,
        row: int,
        issue_ps: int,
        done_ps: int,
        timing: DramTiming,
        cycle_ps: int,
        high_priority: bool,
    ) -> int:
        """Update row-buffer/timing state after scheduling an access.

        Returns the (possibly tRAS-extended) completion time.
        """
        state = self.row_state(row)
        if state != "hit":
            if high_priority and self.hp_row_buffer:
                self.hp_open_row = row
            else:
                if state == "conflict":
                    # Respect tRAS: the old row must have been active long
                    # enough before we precharge it.
                    min_precharge = self.activated_at_ps + timing.t_ras * cycle_ps
                    extension = min_precharge - issue_ps
                    if extension > 0:
                        done_ps += extension
                self.open_row = row
                self.activated_at_ps = issue_ps
        self.ready_at_ps = done_ps
        return done_ps

    def close(self) -> None:
        """Precharge both row buffers (refresh or idle policy)."""
        self.open_row = None
        self.hp_open_row = None
