"""The memory controller (PARD Fig. 5).

Request flow, mirroring the paper's numbered steps:

1. A tagged request arrives; the control plane's parameter table supplies
   the DS-id's address mapping, scheduling priority and row-buffer policy.
2. The LDom-physical address is translated to a DRAM address.
3. The request enters the priority queue selected by its DS-id.
4. The arbiter issues requests high-priority-first, FR-FCFS within a
   priority, subject to bank timing and data-bus availability.
5. The control plane updates its statistics table (bandwidth, average
   queueing delay, service count) and evaluates triggers at window ticks.

Without a control plane the controller is the Fig. 11 baseline: one
FR-FCFS queue, no address translation, no priority.

The timing model is command-accurate at the granularity of whole
accesses: per-bank row state decides hit/closed/conflict latency
(DDR3-1600 11-11-11, Table 2), tRAS is enforced on precharge, and the
shared data bus serializes bursts. Refresh is modeled but off by
default (it would add the same ~3% to every configuration and no paper
experiment depends on it); see :meth:`MemoryController._refresh`.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.bank import BankState
from repro.dram.scheduler import PendingRequest, PriorityFrFcfsScheduler
from repro.dram.timing import DramGeometry, DramTiming, decompose_address
from repro.sim.clock import ClockDomain
from repro.sim.component import Component, ResponseCallback
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket
from repro.sim.stats import LatencyRecorder
from repro.sim.trace import NULL_TRACER, Tracer


class MemoryController(Component):
    """A single-channel DDR3 memory controller."""

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        timing: Optional[DramTiming] = None,
        geometry: Optional[DramGeometry] = None,
        control=None,
        priority_levels: int = 2,
        hp_row_buffer: bool = True,
        enable_refresh: bool = False,
        translate_addresses: bool = True,
        name: str = "memctrl",
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        super().__init__(engine, name, clock)
        self.timing = timing or DramTiming()
        self.geometry = geometry or DramGeometry()
        self.control = control
        self.translate_addresses = translate_addresses
        self.tracer = tracer
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        self._qdelay_hist = None
        if self.telemetry is not None:
            reg = self.telemetry.registry
            reg.gauge_fn(f"dram.{name}.served_requests", lambda: self.served_requests)
            reg.gauge_fn(f"dram.{name}.served_bytes", lambda: self.served_bytes)
            reg.gauge_fn(
                f"dram.{name}.mean_qdelay_cycles",
                lambda: self.mean_queue_delay_cycles,
            )
            # Queueing delay in memory cycles; log-spaced from 1 cycle to
            # ~32k cycles covers idle through heavily-backlogged queues.
            self._qdelay_hist = reg.histogram(
                f"dram.{name}.qdelay_cycles", start=1.0, growth=2.0, count=16
            )
        if control is None:
            # Fig. 11 baseline: a single queue, plain FR-FCFS.
            priority_levels = 1
            hp_row_buffer = False
        self.hp_row_buffer = hp_row_buffer
        self.scheduler = PriorityFrFcfsScheduler(priority_levels)
        self.banks = [
            BankState(i, hp_row_buffer=hp_row_buffer)
            for i in range(self.geometry.total_banks)
        ]
        self.bus_free_at_ps = 0
        self._wakeup_handle = None
        self._inflight = 0
        # Queueing delay per priority level, in memory cycles (Fig. 11).
        self.queue_delay = [
            LatencyRecorder(f"{name}.qdelay.p{p}") for p in range(priority_levels)
        ]
        self.served_requests = 0
        self.served_bytes = 0
        self.refreshes_performed = 0
        if control is not None:
            control.bind_controller(self)
        if enable_refresh:
            self.engine.post(
                self.timing.t_refi * clock.period_ps, self._refresh
            )

    def _refresh(self) -> None:
        """All-bank refresh: precharge every row and block the banks for
        tRFC. Off by default (it costs every configuration the same
        ~tRFC/tREFI ≈ 3% and no paper experiment depends on it); enable
        with ``enable_refresh=True`` for refresh-sensitivity studies.
        """
        cycle_ps = self.clock.period_ps
        blocked_until = self.now + self.timing.t_rfc * cycle_ps
        for bank in self.banks:
            bank.close()
            if bank.ready_at_ps < blocked_until:
                bank.ready_at_ps = blocked_until
        self.refreshes_performed += 1
        self.tracer.emit(self.now, self.name, "refresh", f"until={blocked_until}")
        self.engine.post(self.timing.t_refi * cycle_ps, self._refresh)
        self.engine.post_at(blocked_until, self._pump)

    # -- request entry ------------------------------------------------------

    def handle_request(self, packet: MemoryPacket, on_response: ResponseCallback) -> None:
        ds_id = packet.effective_ds_id
        dram_addr = self._translate(ds_id, packet.addr)
        bank_index, row, _column = decompose_address(dram_addr, self.geometry)
        priority = self._priority(ds_id)
        request = PendingRequest(
            packet=packet,
            bank_index=bank_index,
            row=row,
            priority=priority,
            enqueued_at_ps=self.now,
            on_response=on_response,
        )
        self.scheduler.enqueue(request)
        if packet.span is not None:
            packet.span.hop(f"{self.name}.enqueue", self.now)
        self.tracer.emit(
            self.now, self.name, "enqueue",
            f"dsid={ds_id} bank={bank_index} row={row} prio={priority}",
        )
        self._pump()

    # -- arbitration / issue --------------------------------------------------

    def _pump(self) -> None:
        """Dispatch queued requests to bank state machines (Fig. 5).

        Each priority class is a strict FIFO: only the head of a queue
        can dispatch, and it dispatches when its bank's state machine is
        free -- so a bank conflict at the head blocks everything behind
        it (head-of-line blocking). That is exactly why the baseline
        single-queue controller shows large queueing delays at moderate
        utilization, and why the control plane's priority queues help: a
        high-priority request waits only for its own queue's head-of-line
        and its own bank, never behind the low-priority backlog.

        Arbitration is strictly "high-priority first" (§4.2): one
        dispatch port, owned by the head of the highest non-empty queue
        even while that head's bank is busy. This keeps the two
        configurations capacity-equivalent (the port, banks and data bus
        are identical); the control plane redistributes *waiting*, which
        is what Fig. 11 measures.
        """
        while True:
            head = None
            for priority in range(self.scheduler.priority_levels - 1, -1, -1):
                head = self.scheduler.head(priority)
                if head is not None:
                    break
            if head is None:
                return
            bank = self.banks[head.bank_index]
            if bank.ready_at_ps > self.now:
                # Strict priority: the preferred head owns the dispatch
                # port even while its bank is busy.
                self._arm_wakeup(bank.ready_at_ps)
                return
            self.scheduler.pop_head(head.priority)
            self._issue(head)

    def _issue(self, request: PendingRequest) -> None:
        bank = self.banks[request.bank_index]
        high_priority = self._is_high_priority(request)
        latency_cycles = bank.access_latency_cycles(
            request.row, self.timing, high_priority
        )
        cycle_ps = self.clock.period_ps
        issue_ps = self.now
        pre_data_ps = (latency_cycles - self.timing.t_burst) * cycle_ps
        burst_ps = self.timing.t_burst * cycle_ps
        # The shared data bus serializes bursts; row preparation overlaps
        # with other banks' transfers.
        data_start_ps = max(issue_ps + pre_data_ps, self.bus_free_at_ps)
        done_ps = data_start_ps + burst_ps
        done_ps = bank.record_access(
            request.row, issue_ps, done_ps, self.timing, cycle_ps, high_priority
        )
        self.bus_free_at_ps = data_start_ps + burst_ps
        request.issued_at_ps = issue_ps
        delay_cycles = (issue_ps - request.enqueued_at_ps) / cycle_ps
        self.queue_delay[request.priority].record(delay_cycles)
        if self._qdelay_hist is not None:
            self._qdelay_hist.record(delay_cycles)
        if request.packet.span is not None:
            request.packet.span.hop(f"{self.name}.issue", issue_ps)
        self.tracer.emit(
            issue_ps, self.name, "issue",
            f"dsid={request.ds_id} bank={request.bank_index} "
            f"qdelay={delay_cycles:.1f}cyc",
        )
        self._inflight += 1
        self.engine.post_at(done_ps, lambda: self._complete(request, delay_cycles, done_ps))

    def _complete(self, request: PendingRequest, delay_cycles: float, done_ps: int) -> None:
        self._inflight -= 1
        self.served_requests += 1
        self.served_bytes += request.packet.size
        if request.packet.span is not None:
            request.packet.span.hop(f"{self.name}.complete", done_ps)
        if self.control is not None:
            total_cycles = (done_ps - request.enqueued_at_ps) / self.clock.period_ps
            self.control.record_service(
                request.ds_id, request.packet.size, delay_cycles, total_cycles
            )
        request.on_response(request.packet)
        self._pump()

    def _arm_wakeup(self, wake_at_ps: int) -> None:
        """Schedule the next arbitration pass (deduplicated)."""
        if wake_at_ps <= self.now:
            return
        if self._wakeup_handle is not None and not self._wakeup_handle.cancelled:
            if self._wakeup_handle.time_ps <= wake_at_ps:
                return
            self._wakeup_handle.cancel()
        self._wakeup_handle = self.engine.schedule_at(wake_at_ps, self._pump)

    # -- control-plane consultation ------------------------------------------------

    def _translate(self, ds_id: int, addr: int) -> int:
        if self.control is None or not self.translate_addresses:
            return addr
        return self.control.translate(ds_id, addr)

    def _priority(self, ds_id: int) -> int:
        if self.control is None:
            return 0
        priority = self.control.priority(ds_id)
        return max(0, min(priority, self.scheduler.priority_levels - 1))

    def _is_high_priority(self, request: PendingRequest) -> bool:
        if not self.hp_row_buffer or request.priority == 0:
            return False
        if self.control is None:
            return True
        return bool(self.control.rowbuf_enabled(request.ds_id))

    # -- introspection ------------------------------------------------------------

    @property
    def mean_queue_delay_cycles(self) -> float:
        count = sum(recorder.count for recorder in self.queue_delay)
        if not count:
            return 0.0
        return sum(recorder.total for recorder in self.queue_delay) / count
