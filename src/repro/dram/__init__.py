"""DRAM substrate: a DDR3-timing memory controller with a PARD control plane.

- :mod:`repro.dram.timing` -- DDR3-1600 timing/geometry (Table 2)
- :mod:`repro.dram.bank` -- bank state, including the paper's extra
  high-priority row buffer (§4.2)
- :mod:`repro.dram.scheduler` -- priority queues + FR-FCFS arbitration
- :mod:`repro.dram.controller` -- the memory controller component
- :mod:`repro.dram.control_plane` -- the memory control plane (address
  mapping, scheduling priority, bandwidth/latency statistics, triggers)
"""

from repro.dram.bank import BankState
from repro.dram.control_plane import MemoryControlPlane
from repro.dram.controller import MemoryController
from repro.dram.multichannel import MultiChannelMemory
from repro.dram.scheduler import PendingRequest, PriorityFrFcfsScheduler
from repro.dram.timing import DramGeometry, DramTiming, decompose_address

__all__ = [
    "BankState",
    "DramGeometry",
    "DramTiming",
    "MemoryControlPlane",
    "MemoryController",
    "MultiChannelMemory",
    "PendingRequest",
    "PriorityFrFcfsScheduler",
    "decompose_address",
]
