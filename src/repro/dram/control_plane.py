"""The memory control plane (PARD Fig. 5, Table 3).

Parameter table:  ``addr_base`` / ``addr_size`` -- the LDom-physical ->
                  DRAM address window (what lets LDoms run unmodified
                  OSes from address 0); ``priority`` -- scheduling
                  priority (0 = low, 1 = high); ``rowbuf`` -- whether the
                  DS-id may allocate into the extra high-priority row
                  buffer.
Statistics table: ``bandwidth`` (bytes in the last window), ``avg_qlat``
                  (average queueing delay, hundredths of a memory cycle),
                  ``serv_cnt`` (cumulative served requests).
Trigger table:    e.g. ``avg_qlat > N => raise scheduling priority``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.address import AddressMapping, AddressTranslationError
from repro.core.control_plane import ControlPlane
from repro.sim.engine import Engine, PS_PER_MS
from repro.sim.trace import NULL_TRACER, Tracer

LATENCY_SCALE = 100  # avg_qlat is stored in hundredths of a memory cycle


class MemoryControlPlane(ControlPlane):
    """Programmable control plane for the DRAM memory controller."""

    IDENT = "MEMORY_CP"
    TYPE_CODE = "M"
    PARAMETER_COLUMNS = (
        ("addr_base", 0),
        ("addr_size", 0),
        ("priority", 0),
        ("rowbuf", 1),
    )
    STATISTICS_COLUMNS = (
        ("bandwidth", 0),
        ("avg_qlat", 0),
        ("serv_cnt", 0),
    )

    def __init__(
        self,
        engine: Engine,
        name: str = "cpa_mem",
        max_entries: int = 256,
        max_triggers: int = 64,
        window_ps: int = PS_PER_MS,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(
            engine, name,
            max_entries=max_entries, max_triggers=max_triggers,
            window_ps=window_ps, tracer=tracer,
        )
        self._controller = None
        self._window_bytes: dict[int, int] = {}
        self._window_delay_sum: dict[int, float] = {}
        self._window_delay_count: dict[int, int] = {}

    def bind_controller(self, controller) -> None:
        self._controller = controller

    # -- policy reads (hardware side) ----------------------------------------

    def translate(self, ds_id: int, ldom_addr: int) -> int:
        """LDom-physical -> DRAM address; identity for unmapped DS-ids."""
        if not self.parameters.has(ds_id):
            return ldom_addr
        size = self.parameters.get(ds_id, "addr_size")
        if size == 0:
            return ldom_addr
        mapping = AddressMapping(self.parameters.get(ds_id, "addr_base"), size)
        return mapping.translate(ldom_addr)

    def mapping(self, ds_id: int) -> Optional[AddressMapping]:
        if not self.parameters.has(ds_id):
            return None
        size = self.parameters.get(ds_id, "addr_size")
        if size == 0:
            return None
        return AddressMapping(self.parameters.get(ds_id, "addr_base"), size)

    def priority(self, ds_id: int) -> int:
        return self.parameters.get_default(ds_id, "priority", 0)

    def rowbuf_enabled(self, ds_id: int) -> bool:
        return bool(self.parameters.get_default(ds_id, "rowbuf", 1))

    # -- accounting (hardware side) ---------------------------------------------

    def record_service(
        self, ds_id: int, size_bytes: int, queue_delay_cycles: float, total_cycles: float
    ) -> None:
        self._window_bytes[ds_id] = self._window_bytes.get(ds_id, 0) + size_bytes
        self._window_delay_sum[ds_id] = (
            self._window_delay_sum.get(ds_id, 0.0) + queue_delay_cycles
        )
        self._window_delay_count[ds_id] = self._window_delay_count.get(ds_id, 0) + 1

    # -- window publication ---------------------------------------------------------

    def on_window(self) -> None:
        for ds_id in self.statistics.ds_ids:
            served = self._window_delay_count.pop(ds_id, 0)
            delay_sum = self._window_delay_sum.pop(ds_id, 0.0)
            bandwidth = self._window_bytes.pop(ds_id, 0)
            self.statistics.set(ds_id, "bandwidth", bandwidth)
            if served:
                avg = int(delay_sum / served * LATENCY_SCALE)
                self.statistics.set(ds_id, "avg_qlat", avg)
            self.statistics.add(ds_id, "serv_cnt", served)

    def last_window_bandwidth_bytes(self, ds_id: int) -> int:
        if not self.statistics.has(ds_id):
            return 0
        return self.statistics.get(ds_id, "bandwidth")

    def last_window_avg_qlat_cycles(self, ds_id: int) -> float:
        if not self.statistics.has(ds_id):
            return 0.0
        return self.statistics.get(ds_id, "avg_qlat") / LATENCY_SCALE

    # -- validation hooks --------------------------------------------------------

    def on_parameter_write(self, ds_id: int, column: str, value: int) -> None:
        if column == "addr_size" and value:
            base = self.parameters.get(ds_id, "addr_base")
            window = AddressMapping(base, value)
            for other in self.parameters.ds_ids:
                if other == ds_id:
                    continue
                other_mapping = self.mapping(other)
                if other_mapping is not None and window.overlaps(other_mapping):
                    raise AddressTranslationError(
                        f"DS-id {ds_id} window overlaps DS-id {other}"
                    )
