"""Multi-channel memory.

Table 2's simulated server has one DDR3 channel, but the paper's RTL
substrate (OpenSPARC T1) has four memory controllers; this router makes
the reproduction able to model that organization too. Channels
interleave on DRAM-address granularity ``interleave_bytes`` (one row by
default, so whole row buffers stay within a channel), each channel is a
full :class:`~repro.dram.controller.MemoryController`, and all channels
share one memory control plane -- one address mapping, one priority
policy, one statistics table, exactly as a single logical memory
resource should appear in the device file tree.

Address translation (LDom-physical -> DRAM) happens once, in the
router; channel controllers are constructed with
``translate_addresses=False`` and see post-translation addresses.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.controller import MemoryController
from repro.dram.timing import DramGeometry, DramTiming
from repro.sim.clock import ClockDomain
from repro.sim.component import Component, ResponseCallback
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket
from repro.sim.trace import NULL_TRACER, Tracer


class MultiChannelMemory(Component):
    """N interleaved DDR3 channels behind one request port."""

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        channels: int = 4,
        timing: Optional[DramTiming] = None,
        geometry: Optional[DramGeometry] = None,
        control=None,
        interleave_bytes: int = 1024,
        name: str = "mcmem",
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
        **controller_kwargs,
    ):
        super().__init__(engine, name, clock)
        if channels <= 0:
            raise ValueError("need at least one channel")
        if interleave_bytes <= 0 or interleave_bytes & (interleave_bytes - 1):
            raise ValueError("interleave must be a positive power of two")
        self.channels = channels
        self.interleave_bytes = interleave_bytes
        self.control = control
        self.tracer = tracer
        self.controllers = [
            MemoryController(
                engine, clock,
                timing=timing, geometry=geometry, control=control,
                translate_addresses=False,
                name=f"{name}.ch{i}", tracer=tracer,
                telemetry=telemetry,
                **controller_kwargs,
            )
            for i in range(channels)
        ]

    def channel_of(self, dram_addr: int) -> int:
        return (dram_addr // self.interleave_bytes) % self.channels

    def handle_request(self, packet: MemoryPacket, on_response: ResponseCallback) -> None:
        ds_id = packet.effective_ds_id
        if self.control is not None:
            dram_addr = self.control.translate(ds_id, packet.addr)
        else:
            dram_addr = packet.addr
        channel = self.channel_of(dram_addr)
        packet.addr = dram_addr
        self.tracer.emit(
            self.now, self.name, "route", f"dsid={ds_id} channel={channel}"
        )
        self.controllers[channel].handle_request(packet, on_response)

    # -- aggregate introspection ---------------------------------------------

    @property
    def served_requests(self) -> int:
        return sum(c.served_requests for c in self.controllers)

    @property
    def served_bytes(self) -> int:
        return sum(c.served_bytes for c in self.controllers)

    def channel_loads(self) -> list[int]:
        """Served-request counts per channel (balance inspection)."""
        return [c.served_requests for c in self.controllers]
