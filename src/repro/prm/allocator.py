"""The firmware's physical-memory window allocator.

LDoms receive contiguous base+bound DRAM windows (the memory control
plane's AddrMap is a single base/size pair per DS-id, §4.2), so the
firmware needs a contiguous allocator: first-fit with free-block
coalescing. Windows are aligned to a large grain so row/bank interleave
patterns start identically for every LDom.
"""

from __future__ import annotations

from dataclasses import dataclass


class OutOfMemoryError(RuntimeError):
    """No contiguous free window large enough."""


@dataclass(frozen=True)
class _FreeBlock:
    base: int
    size: int

    @property
    def limit(self) -> int:
        return self.base + self.size


class WindowAllocator:
    """First-fit contiguous allocator with coalescing."""

    def __init__(self, capacity_bytes: int, reserved_bytes: int = 0, align: int = 1 << 20):
        if capacity_bytes <= reserved_bytes:
            raise ValueError("capacity must exceed the reserved region")
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a power of two")
        self.capacity_bytes = capacity_bytes
        self.align = align
        base = _round_up(reserved_bytes, align)
        self._free: list[_FreeBlock] = [_FreeBlock(base, capacity_bytes - base)]
        self._allocated: dict[int, int] = {}  # base -> size

    @property
    def free_bytes(self) -> int:
        return sum(block.size for block in self._free)

    @property
    def allocated_windows(self) -> int:
        return len(self._allocated)

    def allocate(self, size_bytes: int) -> int:
        """Allocate an aligned window; returns its base address."""
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        size = _round_up(size_bytes, self.align)
        for index, block in enumerate(self._free):
            if block.size >= size:
                base = block.base
                remainder = block.size - size
                if remainder:
                    self._free[index] = _FreeBlock(base + size, remainder)
                else:
                    del self._free[index]
                self._allocated[base] = size
                return base
        raise OutOfMemoryError(
            f"no contiguous window of {size} bytes "
            f"({self.free_bytes} free in fragments)"
        )

    def free(self, base: int) -> None:
        """Release a window, coalescing with free neighbours."""
        try:
            size = self._allocated.pop(base)
        except KeyError:
            raise KeyError(f"no allocated window at base {base:#x}")
        self._free.append(_FreeBlock(base, size))
        self._free.sort(key=lambda b: b.base)
        merged: list[_FreeBlock] = []
        for block in self._free:
            if merged and merged[-1].limit == block.base:
                previous = merged.pop()
                merged.append(_FreeBlock(previous.base, previous.size + block.size))
            else:
                merged.append(block)
        self._free = merged

    def window_size(self, base: int) -> int:
        return self._allocated[base]


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
