"""The platform resource manager (PRM) and its Linux-like firmware.

The PRM is the per-computer management SoC of PARD §3 mechanism 3: it
connects every control plane (through control plane adaptors mapped into
a 64 KB I/O window) and every tag register, and runs a firmware that

- abstracts all control planes as a device file tree
  (``/sys/cpa/cpaN/ldoms/ldomK/{parameters,statistics,triggers}``),
- provides a tiny shell (``echo``, ``cat``, ``pardtrigger``) and a file
  API so handler scripts can be written against file primitives only,
- manages LDom lifecycles (create / launch / stop / destroy), and
- dispatches control-plane trigger interrupts to installed
  "trigger => action" handler scripts (§3 mechanism 4).
"""

from repro.prm.allocator import OutOfMemoryError, WindowAllocator
from repro.prm.cpa import ControlPlaneAdaptor, PrmIoSpace
from repro.prm.firmware import Firmware, FirmwareError, HardwareInventory
from repro.prm.monitor import StatisticsMonitor
from repro.prm.rules import (
    increase_waymask_action,
    partition_llc_action,
    raise_priority_action,
    update_mask,
)
from repro.prm.sysfs import SysfsError, SysfsTree

__all__ = [
    "ControlPlaneAdaptor",
    "Firmware",
    "FirmwareError",
    "HardwareInventory",
    "OutOfMemoryError",
    "PrmIoSpace",
    "StatisticsMonitor",
    "SysfsError",
    "SysfsTree",
    "WindowAllocator",
    "increase_waymask_action",
    "partition_llc_action",
    "raise_priority_action",
    "update_mask",
]
