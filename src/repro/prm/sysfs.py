"""A sysfs-style device file tree.

The firmware abstracts every control plane as a file subtree (PARD Fig. 6,
§5.1). This module provides the generic tree: directories plus leaf files
whose reads and writes are delegated to handler callables. The firmware
wires leaves to CPA driver accesses, so ``cat``/``echo`` on these paths
are real register-protocol transactions.

Paths are POSIX-style absolute strings (``/sys/cpa/cpa0/ldoms/ldom0/
parameters/waymask``).
"""

from __future__ import annotations

from typing import Callable, Optional

ReadHandler = Callable[[], str]
WriteHandler = Callable[[str], None]


class SysfsError(OSError):
    """Missing paths, type mismatches (dir vs file), or read-only writes."""


class _Node:
    __slots__ = ("name", "children", "read_handler", "write_handler")

    def __init__(
        self,
        name: str,
        read_handler: Optional[ReadHandler] = None,
        write_handler: Optional[WriteHandler] = None,
        is_dir: bool = False,
    ):
        self.name = name
        self.children: Optional[dict[str, _Node]] = {} if is_dir else None
        self.read_handler = read_handler
        self.write_handler = write_handler

    @property
    def is_dir(self) -> bool:
        return self.children is not None


class SysfsTree:
    """The mounted device file tree."""

    def __init__(self) -> None:
        self._root = _Node("/", is_dir=True)

    # -- construction (used by the firmware) ---------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory, making parents as needed (mkdir -p)."""
        node = self._root
        for part in self._parts(path):
            if not node.is_dir:
                raise SysfsError(f"{part!r} under a non-directory in {path}")
            child = node.children.get(part)
            if child is None:
                child = _Node(part, is_dir=True)
                node.children[part] = child
            node = child
        if not node.is_dir:
            raise SysfsError(f"{path} exists and is not a directory")

    def add_file(
        self,
        path: str,
        read_handler: Optional[ReadHandler] = None,
        write_handler: Optional[WriteHandler] = None,
    ) -> None:
        parts = self._parts(path)
        if not parts:
            raise SysfsError("cannot create a file at /")
        parent_path = "/" + "/".join(parts[:-1])
        self.mkdir(parent_path)
        parent = self._lookup(parts[:-1])
        if parts[-1] in parent.children:
            raise SysfsError(f"{path} already exists")
        parent.children[parts[-1]] = _Node(
            parts[-1], read_handler=read_handler, write_handler=write_handler
        )

    def remove(self, path: str) -> None:
        parts = self._parts(path)
        if not parts:
            raise SysfsError("cannot remove /")
        parent = self._lookup(parts[:-1])
        if parts[-1] not in parent.children:
            raise SysfsError(f"{path} does not exist")
        del parent.children[parts[-1]]

    # -- access (used by shell commands and handler scripts) --------------------

    def exists(self, path: str) -> bool:
        try:
            self._lookup(self._parts(path))
            return True
        except SysfsError:
            return False

    def is_dir(self, path: str) -> bool:
        return self._lookup(self._parts(path)).is_dir

    def listdir(self, path: str) -> list[str]:
        node = self._lookup(self._parts(path))
        if not node.is_dir:
            raise SysfsError(f"{path} is not a directory")
        return list(node.children)

    def read(self, path: str) -> str:
        node = self._lookup(self._parts(path))
        if node.is_dir:
            raise SysfsError(f"{path} is a directory")
        if node.read_handler is None:
            raise SysfsError(f"{path} is not readable")
        return node.read_handler()

    def write(self, path: str, value: str) -> None:
        node = self._lookup(self._parts(path))
        if node.is_dir:
            raise SysfsError(f"{path} is a directory")
        if node.write_handler is None:
            raise SysfsError(f"{path} is read-only")
        node.write_handler(value)

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _parts(path: str) -> list[str]:
        if not path.startswith("/"):
            raise SysfsError(f"path must be absolute: {path!r}")
        return [p for p in path.split("/") if p]

    def _lookup(self, parts: list[str]) -> _Node:
        node = self._root
        for part in parts:
            if not node.is_dir or part not in node.children:
                raise SysfsError(f"no such path: /{'/'.join(parts)}")
            node = node.children[part]
        return node
