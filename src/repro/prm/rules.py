"""Standard trigger-action handler scripts.

These are the firmware-side "actions" of the trigger => action
methodology (§5.2). Each factory returns a script callable that -- like
the paper's Example 2 shell script -- only touches the device file tree
through the firmware's file primitives (``cat`` / ``echo``), so the whole
reaction path exercises the CPA register protocol.
"""

from __future__ import annotations

from typing import Callable


def update_mask(cur_mask: int, miss_rate_bp: int, num_ways: int, max_share: float) -> int:
    """The paper's ``update_mask`` policy function.

    Grows the way allocation when the miss rate is high: allocate enough
    extra contiguous ways to (roughly) halve the miss pressure, capped at
    ``max_share`` of the cache. The mask grows from the high end
    (``0xFF00``-style masks as in Fig. 7).
    """
    if not 0 < max_share <= 1.0:
        raise ValueError("max_share must be in (0, 1]")
    current_ways = bin(cur_mask).count("1")
    max_ways = max(1, int(num_ways * max_share))
    if current_ways >= max_ways:
        return cur_mask
    # Escalate: double the allocation (at least +1 way) up to the cap.
    target_ways = min(max_ways, max(current_ways + 1, current_ways * 2))
    # Build a contiguous mask anchored at the top way.
    mask = 0
    for way in range(num_ways - target_ways, num_ways):
        mask |= 1 << way
    return mask


def increase_waymask_action(num_ways: int = 16, max_share: float = 0.5) -> Callable:
    """Example 2 of Fig. 6: on an LLC miss-rate trigger, read the current
    mask and miss rate, compute a bigger mask, write it back."""

    def script(firmware, context: dict) -> None:
        ldom_path = context["ldom_path"]
        cur_mask = int(firmware.cat(f"{ldom_path}/parameters/waymask"))
        miss_rate = int(firmware.cat(f"{ldom_path}/statistics/miss_rate"))
        new_mask = update_mask(cur_mask, miss_rate, num_ways, max_share)
        if new_mask != cur_mask:
            firmware.echo(hex(new_mask), f"{ldom_path}/parameters/waymask")

    return script


def partition_llc_action(num_ways: int = 16, share: float = 0.5) -> Callable:
    """The §7.1.2 reaction: dedicate ``share`` of the LLC to this LDom.

    The triggering LDom receives the top ways exclusively and every other
    LDom is confined to the complement -- the trigger-driven version of
    Fig. 7's manual ``echo 0xFF00`` / ``echo 0x00FF`` commands.
    """
    if not 0 < share < 1:
        raise ValueError("share must be in (0, 1)")

    def script(firmware, context: dict) -> None:
        cpa = context["cpa"]
        ds_id = context["ds_id"]
        dedicated_ways = max(1, int(num_ways * share))
        dedicated = 0
        for way in range(num_ways - dedicated_ways, num_ways):
            dedicated |= 1 << way
        complement = ((1 << num_ways) - 1) ^ dedicated
        firmware.echo(hex(dedicated), f"{context['ldom_path']}/parameters/waymask")
        for node in firmware.ls(f"/sys/cpa/{cpa}/ldoms"):
            if node != f"ldom{ds_id}":
                firmware.echo(
                    hex(complement), f"/sys/cpa/{cpa}/ldoms/{node}/parameters/waymask"
                )

    return script


def raise_priority_action(level: int = 1) -> Callable:
    """On a memory-latency trigger, raise the LDom's scheduling priority."""

    def script(firmware, context: dict) -> None:
        ldom_path = context["ldom_path"]
        current = int(firmware.cat(f"{ldom_path}/parameters/priority"))
        if current < level:
            firmware.echo(str(level), f"{ldom_path}/parameters/priority")

    return script


def set_parameter_action(column: str, value: int) -> Callable:
    """A generic action: write a fixed value into one parameter cell."""

    def script(firmware, context: dict) -> None:
        firmware.echo(str(value), f"{context['ldom_path']}/parameters/{column}")

    return script


def log_action(tag: str = "trigger") -> Callable:
    """Append a line to /log/triggers.log (Example 2's first command)."""

    def script(firmware, context: dict) -> None:
        path = "/log/triggers.log"
        if not firmware.sysfs.exists(path):
            lines: list[str] = []
            firmware.sysfs.add_file(
                path,
                read_handler=lambda: "\n".join(lines),
                write_handler=lambda text: lines.append(text),
            )
        firmware.sysfs.write(
            path, f"{firmware.engine.now} {tag} {context['cpa']} dsid={context['ds_id']}"
        )

    return script


def chain_actions(*scripts: Callable) -> Callable:
    """Run several action scripts in order (log, then react)."""

    def script(firmware, context: dict) -> None:
        for action in scripts:
            action(firmware, context)

    return script
