"""The PRM firmware.

A Linux-like management stack (the paper runs a tailored 2.6.28 kernel
with Busybox on a 100 MHz embedded core): it mounts every control plane
adaptor under ``/sys/cpa``, manages LDom lifecycles, implements the
``echo`` / ``cat`` / ``ls`` / ``pardtrigger`` commands of Fig. 6, and
dispatches trigger interrupts to installed action scripts.

Every table access the firmware performs goes through the CPA register
protocol (addr/cmd/data), exactly like the hardware interface; the only
direct connections are the ones the paper gives the PRM by construction
-- tag registers and the APIC route tables (the dashed control-plane
network of Fig. 2).

Trigger reactions are not instantaneous: an interrupt is serviced after
``reaction_latency_ps`` of modeled firmware latency (interrupt entry,
script startup, file I/O on the 100 MHz core) before the handler's
parameter writes land.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.address import AddressMapping
from repro.core.control_plane import ControlPlane, TRIGGER_SLOT_STRIDE, TRIGGER_FIELDS
from repro.core.ldom import LDom
from repro.core.programming import (
    TABLE_PARAMETER,
    TABLE_STATISTICS,
    TABLE_TRIGGER,
)
from repro.core.triggers import TriggerOp, TriggerRule
from repro.prm.allocator import OutOfMemoryError, WindowAllocator
from repro.prm.cpa import ControlPlaneAdaptor, PrmIoSpace
from repro.prm.sysfs import SysfsError, SysfsTree
from repro.sim.engine import Engine, PS_PER_US
from repro.sim.trace import NULL_TRACER, Tracer

# Columns whose sysfs/pardtrigger values are expressed in percent but
# stored scaled (miss_rate is kept in basis points in the hardware).
STAT_SCALES = {"miss_rate": 100}

# Control-plane type code -> telemetry metric prefix (llc.ds1.misses ...).
TELEMETRY_PREFIXES = {
    "C": "llc",
    "M": "memory",
    "I": "ide",
    "B": "bridge",
    "N": "nic",
    "X": "icn",
}

# Statistics-column renames for the telemetry namespace.
TELEMETRY_STAT_NAMES = {"hit_cnt": "hits", "miss_cnt": "misses"}

DISK_INTERRUPT_VECTOR = 14
NIC_INTERRUPT_VECTOR = 11

# An action script: fn(firmware, context_dict) -> None.
ActionScript = Callable[["Firmware", dict], None]


class FirmwareError(RuntimeError):
    """Configuration or shell errors raised by the firmware."""


@dataclass
class HardwareInventory:
    """What the PRM is wired to (the dashed lines in Fig. 2)."""

    control_planes: list[ControlPlane]
    cores: list = field(default_factory=list)
    apic: Optional[object] = None
    caches: list = field(default_factory=list)  # flushable on LDom destroy
    memory_capacity_bytes: int = 8 << 30
    memory_reserved_bytes: int = 0  # carved out before LDom windows


class Firmware:
    """The management firmware running on the PRM."""

    def __init__(
        self,
        engine: Engine,
        inventory: HardwareInventory,
        reaction_latency_ps: int = 20 * PS_PER_US,
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        self.engine = engine
        self.inventory = inventory
        self.reaction_latency_ps = reaction_latency_ps
        self.tracer = tracer
        self.io_space = PrmIoSpace()
        self.sysfs = SysfsTree()
        self.ldoms: dict[str, LDom] = {}
        self._ldoms_by_dsid: dict[int, LDom] = {}
        self._next_ds_id = 1  # DS-id 0 is the default/untagged domain
        self.memory_allocator = WindowAllocator(
            inventory.memory_capacity_bytes, inventory.memory_reserved_bytes
        )
        self._scripts: dict[str, ActionScript] = {}
        self._bindings: dict[tuple[str, int, int], str] = {}
        self.trigger_log: list[tuple[int, str, int, str]] = []
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        self._triggers_fired = None
        self._scripts_run = None
        self._ldom_metrics: dict[int, list[str]] = {}
        self.sysfs.mkdir("/sys/cpa")
        self.sysfs.mkdir("/log")
        for control_plane in inventory.control_planes:
            self._attach(control_plane)
        if self.telemetry is not None:
            self._mount_telemetry()

    # -- /sys/telemetry (live registry mirror) -------------------------------

    def _mount_telemetry(self) -> None:
        """Mount the metrics registry read-only under ``/sys/telemetry``.

        Every instrument appears as a file whose path is its dotted name
        with dots as directories (``llc.ds1.misses`` ->
        ``/sys/telemetry/llc/ds1/misses``); reads render the live value.
        The registry's hooks keep the subtree in sync as instruments come
        and go, so PRM scripts see exactly what operators export.
        """
        registry = self.telemetry.registry
        self.sysfs.mkdir("/sys/telemetry")
        self.sysfs.add_file(
            "/sys/telemetry/export",
            read_handler=self.telemetry.prometheus_text,
        )
        self._triggers_fired = registry.counter("prm.triggers_fired")
        self._scripts_run = registry.counter("prm.scripts_run")
        registry.gauge_fn("prm.ldoms", lambda: len(self.ldoms))
        registry.on_register(self._telemetry_add_file)
        registry.on_remove(self._telemetry_remove_file)

    @staticmethod
    def _telemetry_path(name: str) -> str:
        return "/sys/telemetry/" + name.replace(".", "/")

    def _telemetry_add_file(self, instrument) -> None:
        path = self._telemetry_path(instrument.name)
        # Tolerate replays and leaf/directory collisions: the registry is
        # shared across servers in some experiments, the mirror is per-PRM.
        if self.sysfs.exists(path):
            return
        try:
            self.sysfs.add_file(path, read_handler=instrument.render)
        except SysfsError:
            pass

    def _telemetry_remove_file(self, instrument) -> None:
        path = self._telemetry_path(instrument.name)
        if self.sysfs.exists(path) and not self.sysfs.is_dir(path):
            self.sysfs.remove(path)
        # Prune directories the removal emptied (but keep the mount root).
        parent = path.rsplit("/", 1)[0]
        while parent != "/sys/telemetry" and not self.sysfs.listdir(parent):
            self.sysfs.remove(parent)
            parent = parent.rsplit("/", 1)[0]

    # -- CPA attachment and sysfs construction -------------------------------

    def _attach(self, control_plane: ControlPlane) -> ControlPlaneAdaptor:
        adaptor = self.io_space.attach(control_plane)
        control_plane.attach_interrupt(self._on_trigger_interrupt)
        base = f"/sys/cpa/{adaptor.name}"
        self.sysfs.mkdir(base)
        rf = adaptor.register_file
        self.sysfs.add_file(f"{base}/ident", read_handler=lambda rf=rf: rf.ident)
        self.sysfs.add_file(
            f"{base}/type",
            read_handler=lambda rf=rf: f"{ord(rf.type_code):#x} '{rf.type_code}'",
        )
        self.sysfs.mkdir(f"{base}/ldoms")
        return adaptor

    def adaptor_for(self, control_plane: ControlPlane) -> ControlPlaneAdaptor:
        adaptor = self.io_space.find(control_plane)
        if adaptor is None:
            raise FirmwareError(f"{control_plane.name} is not attached to this PRM")
        return adaptor

    def _build_ldom_subtree(self, adaptor: ControlPlaneAdaptor, ds_id: int) -> None:
        cp = adaptor.control_plane
        base = f"/sys/cpa/{adaptor.name}/ldoms/ldom{ds_id}"
        self.sysfs.mkdir(f"{base}/parameters")
        self.sysfs.mkdir(f"{base}/statistics")
        self.sysfs.mkdir(f"{base}/triggers")
        for offset, column in enumerate(cp.parameters.schema.column_names):
            self.sysfs.add_file(
                f"{base}/parameters/{column}",
                read_handler=self._param_reader(adaptor, ds_id, offset),
                write_handler=self._param_writer(adaptor, ds_id, offset),
            )
        for offset, column in enumerate(cp.statistics.schema.column_names):
            self.sysfs.add_file(
                f"{base}/statistics/{column}",
                read_handler=self._stat_reader(adaptor, ds_id, offset),
            )

    def _param_reader(self, adaptor, ds_id, offset):
        return lambda: str(adaptor.read_cell(ds_id, offset, TABLE_PARAMETER))

    def _param_writer(self, adaptor, ds_id, offset):
        def write(text: str) -> None:
            adaptor.write_cell(ds_id, offset, TABLE_PARAMETER, _parse_int(text))
        return write

    def _stat_reader(self, adaptor, ds_id, offset):
        return lambda: str(adaptor.read_cell(ds_id, offset, TABLE_STATISTICS))

    # -- LDom lifecycle --------------------------------------------------------

    def create_ldom(
        self,
        name: str,
        core_ids: tuple[int, ...],
        memory_bytes: int,
        priority: int = 0,
        disk_share: int = 0,
        waymask: Optional[int] = None,
    ) -> LDom:
        """Create a logical domain and program every control plane for it.

        Mirrors the operator flow of Fig. 3: pick a DS-id, allocate table
        rows, program the address mapping / priority / quotas, set the
        cores' tag registers and the LDom's interrupt routes.
        """
        if name in self.ldoms:
            raise FirmwareError(f"LDom {name!r} already exists")
        for core_id in core_ids:
            owner = self._core_owner(core_id)
            if owner is not None:
                raise FirmwareError(f"core {core_id} already belongs to {owner.name}")
        try:
            base = self.memory_allocator.allocate(memory_bytes)
        except OutOfMemoryError as error:
            raise FirmwareError(f"out of memory: {error}")
        ds_id = self._next_ds_id
        self._next_ds_id += 1
        mapping = AddressMapping(base, memory_bytes)
        ldom = LDom(
            ds_id=ds_id,
            name=name,
            core_ids=tuple(core_ids),
            memory=mapping,
            priority=priority,
            disk_share=disk_share,
        )
        for adaptor in self.io_space:
            adaptor.control_plane.allocate_ldom(ds_id)
            self._build_ldom_subtree(adaptor, ds_id)
            self._program_defaults(adaptor, ldom, waymask)
        if self.telemetry is not None:
            self._register_ldom_metrics(ds_id)
        for core_id in core_ids:
            self._core(core_id).tag.write(ds_id)
        if self.inventory.apic is not None and core_ids:
            for vector in (DISK_INTERRUPT_VECTOR, NIC_INTERRUPT_VECTOR):
                self.inventory.apic.set_route(ds_id, vector, core_ids[0])
        self.ldoms[name] = ldom
        self._ldoms_by_dsid[ds_id] = ldom
        self.tracer.emit(
            self.engine.now, "firmware", "ldom_created",
            f"{name} dsid={ds_id} cores={core_ids} mem={memory_bytes:#x}",
        )
        return ldom

    def _program_defaults(
        self, adaptor: ControlPlaneAdaptor, ldom: LDom, waymask: Optional[int]
    ) -> None:
        """Write the LDom's policy into one control plane, by column name."""
        columns = adaptor.control_plane.parameters.schema
        values = {
            "addr_base": ldom.memory.base,
            "addr_size": ldom.memory.size,
            "priority": ldom.priority,
            "bandwidth": ldom.disk_share,
        }
        if waymask is not None:
            values["waymask"] = waymask
        for column, value in values.items():
            if column in columns:
                adaptor.write_cell(
                    ldom.ds_id, columns.offset_of(column), TABLE_PARAMETER, value
                )

    def _register_ldom_metrics(self, ds_id: int) -> None:
        """Expose each control plane's per-DS-id statistics as gauges.

        Reads go through the CPA register protocol exactly like the
        ``/sys/cpa`` statistics files, but only at snapshot time --
        nothing touches the hardware between exports. Percent-scaled
        columns (basis points in hardware) are reported in percent.
        """
        registry = self.telemetry.registry
        names = self._ldom_metrics.setdefault(ds_id, [])
        for adaptor in self.io_space:
            cp = adaptor.control_plane
            prefix = TELEMETRY_PREFIXES.get(cp.TYPE_CODE, "cpa")
            for offset, column in enumerate(cp.statistics.schema.column_names):
                leaf = TELEMETRY_STAT_NAMES.get(column, column)
                metric = f"{prefix}.ds{ds_id}.{leaf}"
                scale = STAT_SCALES.get(column, 1)

                def read(a=adaptor, d=ds_id, o=offset, s=scale):
                    return a.read_cell(d, o, TABLE_STATISTICS) / s

                registry.gauge_fn(metric, read)
                names.append(metric)

    def launch_ldom(self, name: str, workloads: dict[int, object]) -> LDom:
        """Launch an LDom: assign per-core workloads and mark it running."""
        ldom = self._ldom(name)
        for core_id in workloads:
            if core_id not in ldom.core_ids:
                raise FirmwareError(f"core {core_id} is not part of {name}")
        ldom.launch()
        for core_id, workload in workloads.items():
            self._core(core_id).assign(workload)
        self.tracer.emit(self.engine.now, "firmware", "ldom_launched", name)
        return ldom

    def destroy_ldom(self, name: str) -> None:
        ldom = self._ldom(name)
        ldom.destroy()
        # Flush the LDom's cache footprint before recycling its DRAM
        # window: dirty lines write back under its DS-id, stale lines
        # cannot leak to the window's next tenant.
        for cache in self.inventory.caches:
            cache.flush_dsid(ldom.ds_id)
        self.memory_allocator.free(ldom.memory.base)
        for adaptor in self.io_space:
            adaptor.control_plane.free_ldom(ldom.ds_id)
            base = f"/sys/cpa/{adaptor.name}/ldoms/ldom{ldom.ds_id}"
            if self.sysfs.exists(base):
                self.sysfs.remove(base)
        for core_id in ldom.core_ids:
            self._core(core_id).tag.write(0)
        if self.inventory.apic is not None:
            self.inventory.apic.clear_routes(ldom.ds_id)
        if self.telemetry is not None:
            for metric in self._ldom_metrics.pop(ldom.ds_id, []):
                self.telemetry.registry.remove(metric)
        del self.ldoms[name]
        del self._ldoms_by_dsid[ldom.ds_id]

    def ldom_by_dsid(self, ds_id: int) -> Optional[LDom]:
        return self._ldoms_by_dsid.get(ds_id)

    def _ldom(self, name: str) -> LDom:
        try:
            return self.ldoms[name]
        except KeyError:
            raise FirmwareError(f"no LDom named {name!r}")

    def _core(self, core_id: int):
        try:
            return self.inventory.cores[core_id]
        except IndexError:
            raise FirmwareError(f"no core {core_id}")

    def _core_owner(self, core_id: int) -> Optional[LDom]:
        for ldom in self.ldoms.values():
            if core_id in ldom.core_ids:
                return ldom
        return None

    # -- trigger => action ---------------------------------------------------------

    def register_script(self, path: str, script: ActionScript) -> None:
        """Install a handler script under a filesystem-like path."""
        self._scripts[path] = script

    def install_trigger(
        self,
        cpa_name: str,
        ds_id: int,
        stat_column: str,
        condition: str,
        action_id: int = 0,
        script_path: Optional[str] = None,
    ) -> None:
        """The ``pardtrigger`` command: program a trigger row and expose
        ``.../triggers/<action_id>`` for the script binding.

        ``condition`` is ``"<op>,<value>"`` (e.g. ``"gt,30"``); values for
        percent-scaled statistics (miss_rate) are given in percent.
        """
        adaptor = self.io_space.by_name(cpa_name)
        cp = adaptor.control_plane
        op_text, _, value_text = condition.partition(",")
        if not value_text:
            raise FirmwareError(f"malformed condition {condition!r}")
        op = TriggerOp.from_symbol(op_text)
        threshold = _parse_int(value_text) * STAT_SCALES.get(stat_column, 1)
        stat_offset = cp.statistics.schema.offset_of(stat_column)
        slot_base = action_id * TRIGGER_SLOT_STRIDE
        fields = {
            "stat_col": stat_offset,
            "op": int(op),
            "threshold": threshold,
            "action_id": action_id,
            "enabled": 1,
        }
        for field_name, value in fields.items():
            offset = slot_base + TRIGGER_FIELDS.index(field_name)
            adaptor.write_cell(ds_id, offset, TABLE_TRIGGER, value)
        trigger_path = f"/sys/cpa/{cpa_name}/ldoms/ldom{ds_id}/triggers/{action_id}"
        if not self.sysfs.exists(trigger_path):
            key = (cpa_name, ds_id, action_id)
            self.sysfs.add_file(
                trigger_path,
                read_handler=lambda k=key: self._bindings.get(k, ""),
                write_handler=lambda text, k=key: self._bind_action(k, text.strip()),
            )
        if script_path is not None:
            self.sysfs.write(trigger_path, script_path)

    def _bind_action(self, key: tuple[str, int, int], script_path: str) -> None:
        if script_path and script_path not in self._scripts:
            raise FirmwareError(f"no registered script {script_path!r}")
        self._bindings[key] = script_path

    def _on_trigger_interrupt(
        self, control_plane: ControlPlane, ds_id: int, rule: TriggerRule
    ) -> None:
        adaptor = self.io_space.find(control_plane)
        if adaptor is None:
            return
        key = (adaptor.name, ds_id, rule.action_id)
        script_path = self._bindings.get(key, "")
        self.trigger_log.append(
            (self.engine.now, adaptor.name, ds_id, rule.describe())
        )
        if self._triggers_fired is not None:
            self._triggers_fired.add()
        if not script_path:
            return
        script = self._scripts[script_path]
        context = {
            "cpa": adaptor.name,
            "ds_id": ds_id,
            "ldom_path": f"/sys/cpa/{adaptor.name}/ldoms/ldom{ds_id}",
            "rule": rule,
        }
        self.engine.post(
            self.reaction_latency_ps, lambda: self._run_script(script, context)
        )

    def _run_script(self, script: ActionScript, context: dict) -> None:
        if self._scripts_run is not None:
            self._scripts_run.add()
        self.tracer.emit(
            self.engine.now, "firmware", "action_script",
            f"cpa={context['cpa']} dsid={context['ds_id']}",
        )
        script(self, context)

    # -- the shell (echo / cat / ls / pardtrigger) --------------------------------

    def cat(self, path: str) -> str:
        return self.sysfs.read(path)

    def echo(self, value: str, path: str) -> None:
        self.sysfs.write(path, value)

    def ls(self, path: str) -> list[str]:
        return sorted(self.sysfs.listdir(path))

    def sh(self, command_line: str) -> str:
        """Execute one shell command against the device file tree.

        Supports the forms used in the paper's examples:
        ``echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask``,
        ``cat <path>``, ``ls <path>``, and
        ``pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=miss_rate -cond=gt,30``.
        """
        command_line = command_line.strip()
        echo_match = re.match(r"^echo\s+(\S+)\s*>{1,2}\s*(\S+)$", command_line)
        if echo_match:
            self.echo(echo_match.group(1).strip("\"'"), echo_match.group(2))
            return ""
        cat_match = re.match(r"^cat\s+(\S+)$", command_line)
        if cat_match:
            return self.cat(cat_match.group(1))
        ls_match = re.match(r"^ls\s+(\S+)$", command_line)
        if ls_match:
            return "\n".join(self.ls(ls_match.group(1)))
        if command_line.startswith("pardtrigger"):
            return self._sh_pardtrigger(command_line)
        raise FirmwareError(f"unknown command: {command_line!r}")

    def _sh_pardtrigger(self, command_line: str) -> str:
        tokens = command_line.split()
        if len(tokens) < 2:
            raise FirmwareError("pardtrigger: missing device argument")
        device = tokens[1]
        cpa_name = device.rsplit("/", 1)[-1]
        args = {}
        for token in tokens[2:]:
            match = re.match(r"^-(\w+)=(.+)$", token)
            if not match:
                raise FirmwareError(f"pardtrigger: bad argument {token!r}")
            args[match.group(1)] = match.group(2)
        try:
            ds_id = int(args["ldom"])
            stats = args["stats"]
            condition = args["cond"]
        except KeyError as missing:
            raise FirmwareError(f"pardtrigger: missing -{missing.args[0]}")
        action_id = int(args.get("action", 0))
        self.install_trigger(cpa_name, ds_id, stats, condition, action_id)
        return ""


def _parse_int(text: str) -> int:
    """Parse decimal or 0x-hex the way ``echo`` inputs arrive."""
    try:
        return int(text.strip(), 0)
    except ValueError:
        raise FirmwareError(f"not a number: {text!r}")
