"""The firmware's statistics monitor.

§7.1.1: "To obtain these statistics data, we implemented a tool running
on the firmware to periodically read data from the two control planes."
This is that tool: it samples chosen device-file-tree paths on a fixed
period (each sample is a real ``cat``, i.e. a CPA register-protocol
read) and accumulates per-probe time series that experiments and
operators can inspect or export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.prm.sysfs import SysfsError
from repro.sim.engine import PS_PER_MS


@dataclass
class ProbeSeries:
    """One monitored statistic's samples.

    Values are numeric: integers stay integers, fractional readings
    (average latencies, rates) are kept as floats rather than truncated.
    """

    name: str
    path: str
    times_ps: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def latest(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def as_rows(self) -> list[tuple[float, float]]:
        """(time_ms, value) pairs, for printing or export."""
        return [(t / PS_PER_MS, v) for t, v in zip(self.times_ps, self.values)]


class StatisticsMonitor:
    """Periodically samples sysfs statistic files into time series."""

    def __init__(self, firmware, period_ps: int = PS_PER_MS):
        if period_ps <= 0:
            raise ValueError("period must be positive")
        self.firmware = firmware
        self.engine = firmware.engine
        self.period_ps = period_ps
        self.probes: dict[str, ProbeSeries] = {}
        self.read_errors = 0
        self._running = False

    def add_probe(self, name: str, path: str) -> ProbeSeries:
        """Watch one statistics file (must exist and be readable)."""
        if name in self.probes:
            raise ValueError(f"probe {name!r} already exists")
        self.firmware.cat(path)  # validates the path now, not at tick time
        series = ProbeSeries(name, path)
        self.probes[name] = series
        return series

    def remove_probe(self, name: str) -> None:
        if name not in self.probes:
            raise ValueError(
                f"no probe named {name!r}; have {sorted(self.probes)}"
            )
        del self.probes[name]

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.engine.post(self.period_ps, self._tick)

    def stop(self) -> None:
        self._running = False

    def sample_now(self) -> None:
        """Take one immediate sample of every probe."""
        now = self.engine.now
        for series in self.probes.values():
            try:
                value = _parse_number(self.firmware.cat(series.path))
            except (SysfsError, ValueError):
                # The LDom may have been destroyed between ticks; the
                # real tool would see ENOENT the same way.
                self.read_errors += 1
                continue
            series.times_ps.append(now)
            series.values.append(value)

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_now()
        self.engine.post(self.period_ps, self._tick)

    def report(self) -> str:
        """A plain-text summary of the latest value of every probe."""
        lines = []
        for name, series in sorted(self.probes.items()):
            latest = series.latest()
            rendered = "-" if latest is None else str(latest)
            lines.append(f"{name}: {rendered}  ({len(series.values)} samples)")
        return "\n".join(lines)

    def export_jsonl(self, dest) -> int:
        """Write every probe's samples as JSONL rows (one per sample).

        Shares the telemetry exporter helpers, so the PRM's probe series
        and the registry's metric snapshots load with the same tooling.
        Returns the number of rows written.
        """
        from repro.telemetry.exporters import write_jsonl

        def rows():
            for name, series in sorted(self.probes.items()):
                for t_ps, value in zip(series.times_ps, series.values):
                    yield {
                        "probe": name,
                        "path": series.path,
                        "t_ps": t_ps,
                        "t_ms": t_ps / PS_PER_MS,
                        "value": value,
                    }

        return write_jsonl(rows(), dest)


def _parse_number(text: str) -> float:
    """Parse a sysfs reading: ints stay exact, fractional values survive."""
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        return float(text)
