"""Control plane adaptors and the PRM's I/O window.

The PRM reserves a 64 KB I/O address space; each control plane adaptor
(CPA) occupies one 32-byte block in it (PARD Fig. 6). The firmware's CPA
driver performs all table accesses through these registers -- write the
``addr`` register to select (DS-id, offset, table), then issue a READ or
WRITE command -- so every management action in this reproduction crosses
the same narrow interface as on the real hardware.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.control_plane import ControlPlane
from repro.core.programming import (
    CMD_READ,
    CMD_WRITE,
    CPA_SIZE_BYTES,
    CPA_SPACE_BYTES,
    REG_DATA,
)


class CpaSpaceError(RuntimeError):
    """The 64 KB CPA window is exhausted or an address is unmapped."""


class ControlPlaneAdaptor:
    """One CPA: a base address plus the control plane's register file."""

    def __init__(self, index: int, control_plane: ControlPlane):
        self.index = index
        self.control_plane = control_plane
        self.base_addr = index * CPA_SIZE_BYTES

    @property
    def name(self) -> str:
        return f"cpa{self.index}"

    @property
    def register_file(self):
        return self.control_plane.register_file

    # -- driver-level helpers (what the firmware's CPA driver does) ----------

    def read_cell(self, ds_id: int, offset: int, table: int) -> int:
        rf = self.register_file
        rf.write_addr(ds_id, offset, table)
        rf.issue(CMD_READ)
        return rf.mmio_read(REG_DATA)

    def write_cell(self, ds_id: int, offset: int, table: int, value: int) -> None:
        rf = self.register_file
        rf.write_addr(ds_id, offset, table)
        rf.data = int(value)
        rf.issue(CMD_WRITE)


class PrmIoSpace:
    """The PRM's CPA window: allocation plus raw address decoding."""

    def __init__(self, size_bytes: int = CPA_SPACE_BYTES):
        self.size_bytes = size_bytes
        self.capacity = size_bytes // CPA_SIZE_BYTES
        self._adaptors: list[ControlPlaneAdaptor] = []

    def attach(self, control_plane: ControlPlane) -> ControlPlaneAdaptor:
        if len(self._adaptors) >= self.capacity:
            raise CpaSpaceError(
                f"CPA window full ({self.capacity} adaptors of {CPA_SIZE_BYTES} B "
                f"in {self.size_bytes} B)"
            )
        adaptor = ControlPlaneAdaptor(len(self._adaptors), control_plane)
        self._adaptors.append(adaptor)
        return adaptor

    def __iter__(self) -> Iterator[ControlPlaneAdaptor]:
        return iter(self._adaptors)

    def __len__(self) -> int:
        return len(self._adaptors)

    def by_index(self, index: int) -> ControlPlaneAdaptor:
        try:
            return self._adaptors[index]
        except IndexError:
            raise CpaSpaceError(f"no CPA at index {index}")

    def by_name(self, name: str) -> ControlPlaneAdaptor:
        for adaptor in self._adaptors:
            if adaptor.name == name:
                return adaptor
        raise CpaSpaceError(f"no CPA named {name!r}")

    def find(self, control_plane: ControlPlane) -> Optional[ControlPlaneAdaptor]:
        for adaptor in self._adaptors:
            if adaptor.control_plane is control_plane:
                return adaptor
        return None

    # -- raw bus access (address-decoded MMIO) -----------------------------------

    def mmio_read(self, addr: int) -> int:
        adaptor, reg = self._decode(addr)
        return adaptor.register_file.mmio_read(reg)

    def mmio_write(self, addr: int, value: int) -> None:
        adaptor, reg = self._decode(addr)
        adaptor.register_file.mmio_write(reg, value)

    def _decode(self, addr: int) -> tuple[ControlPlaneAdaptor, int]:
        if not 0 <= addr < self.size_bytes:
            raise CpaSpaceError(f"address {addr:#x} outside the CPA window")
        index, reg = divmod(addr, CPA_SIZE_BYTES)
        if index >= len(self._adaptors):
            raise CpaSpaceError(f"no CPA mapped at {addr:#x}")
        return self._adaptors[index], reg
