"""Analytical FPGA resource model for the control planes (Fig. 12).

We cannot synthesize RTL here, so Fig. 12 is reproduced with an
analytical model whose scaling laws follow the hardware structure --

- parameter/statistics tables: LUTRAM storage linear in entry count,
  plus decode/mux logic linear in entry count;
- trigger tables: dominated by per-entry comparators (logic LUTs + FFs,
  little storage), which is why the paper notes triggers cost more logic
  than storage;
- priority queues: logic and flops linear in total queue depth;
- the tag array's owner-DS-id extension: extra blockRAM proportional to
  the DS-id width relative to the original tag width --

and whose constants are calibrated to the paper's published synthesis
anchors at the design point of 256 table entries / 64 triggers /
two 16-deep queues on the Virtex-7 (Vivado): memory control plane
1526 LUT+FF (10.1% of the 15178 LUT/FF Xilinx MIGv7), LLC control plane
2359 LUT+FF (3.1% of the 75032 LUT/FF OpenSPARC T1 LLC controller
without data arrays), 256-entry tables at 688 LUTRAM, and the 8-bit
owner DS-id adding 6 blockRAMs to the tag array's 12 (+50%).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

MIG_CONTROLLER_LUT_FF = 15_178  # Xilinx MIGv7 memory controller
LLC_CONTROLLER_LUT_FF = 75_032  # OpenSPARC T1 768KB 12-way LLC (tag path)

# Calibrated per-unit costs (see module docstring).
_TABLE_LUT_PER_ENTRY = 0.742        # decode/mux logic, param+stats pair
_TABLE_LUT_BASE = 30
_TABLE_LUTRAM_PER_ENTRY = 2.6875    # 688 LUTRAM at 256 entries
_LLC_TABLE_LUT_PER_ENTRY = 5.496    # wider stats datapath + update logic
_TRIGGER_LUT_PER_ENTRY = 8.984      # comparators
_TRIGGER_FF_PER_ENTRY = 5.891
_TRIGGER_LUTRAM_PER_ENTRY = 0.625
_QUEUE_LUT_PER_SLOT = 10.125
_QUEUE_FF_PER_SLOT = 0.9375


@dataclass(frozen=True)
class ResourceEstimate:
    """FPGA resources of one control-plane component."""

    lut: int = 0
    lutram: int = 0
    ff: int = 0

    @property
    def lut_ff(self) -> int:
        """Logic resources (the paper's LUT/FF totals exclude LUTRAM)."""
        return self.lut + self.ff

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            self.lut + other.lut,
            self.lutram + other.lutram,
            self.ff + other.ff,
        )


@dataclass(frozen=True)
class ControlPlaneCost:
    """A control plane's component breakdown plus host-relative overhead."""

    name: str
    components: dict[str, ResourceEstimate]
    host_lut_ff: int

    @property
    def total(self) -> ResourceEstimate:
        total = ResourceEstimate()
        for estimate in self.components.values():
            total = total + estimate
        return total

    @property
    def overhead_fraction(self) -> float:
        """LUT+FF relative to the host controller (Fig. 12's percentages)."""
        return self.total.lut_ff / self.host_lut_ff


def _check_sizes(table_entries: int, trigger_entries: int) -> None:
    if table_entries <= 0 or trigger_entries <= 0:
        raise ValueError("table and trigger entry counts must be positive")


def table_pair_cost(table_entries: int, llc_datapath: bool = False) -> ResourceEstimate:
    """Parameter + statistics tables for one control plane."""
    per_entry = _LLC_TABLE_LUT_PER_ENTRY if llc_datapath else _TABLE_LUT_PER_ENTRY
    base = 0 if llc_datapath else _TABLE_LUT_BASE
    return ResourceEstimate(
        lut=round(base + per_entry * table_entries),
        lutram=round(_TABLE_LUTRAM_PER_ENTRY * table_entries),
    )


def trigger_table_cost(trigger_entries: int) -> ResourceEstimate:
    """The trigger table: comparator-heavy, storage-light."""
    return ResourceEstimate(
        lut=round(_TRIGGER_LUT_PER_ENTRY * trigger_entries),
        lutram=round(_TRIGGER_LUTRAM_PER_ENTRY * trigger_entries),
        ff=round(_TRIGGER_FF_PER_ENTRY * trigger_entries),
    )


def priority_queue_cost(queue_depth: int = 16, priority_levels: int = 2) -> ResourceEstimate:
    """The memory control plane's priority queues."""
    slots = queue_depth * priority_levels
    return ResourceEstimate(
        lut=round(_QUEUE_LUT_PER_SLOT * slots),
        ff=round(_QUEUE_FF_PER_SLOT * slots),
    )


def memory_control_plane_cost(
    table_entries: int = 256,
    trigger_entries: int = 64,
    queue_depth: int = 16,
    priority_levels: int = 2,
) -> ControlPlaneCost:
    """Fig. 12 right: the memory control plane vs the MIGv7 host."""
    _check_sizes(table_entries, trigger_entries)
    return ControlPlaneCost(
        name="memory",
        components={
            "param+stats tables": table_pair_cost(table_entries),
            "trigger table": trigger_table_cost(trigger_entries),
            "priority queues": priority_queue_cost(queue_depth, priority_levels),
        },
        host_lut_ff=MIG_CONTROLLER_LUT_FF,
    )


def llc_control_plane_cost(
    table_entries: int = 256,
    trigger_entries: int = 64,
) -> ControlPlaneCost:
    """Fig. 12 left: the LLC control plane vs the T1 LLC controller."""
    _check_sizes(table_entries, trigger_entries)
    return ControlPlaneCost(
        name="llc",
        components={
            "param+stats tables": table_pair_cost(table_entries, llc_datapath=True),
            "trigger table": trigger_table_cost(trigger_entries),
        },
        host_lut_ff=LLC_CONTROLLER_LUT_FF,
    )


def tag_array_blockram_overhead(
    dsid_bits: int = 8,
    original_blockrams: int = 12,
    original_tag_bits: int = 28,
) -> tuple[int, int]:
    """Extra tag-array blockRAMs for storing owner DS-ids.

    Returns ``(extra_blockrams, total_blockrams)``. The paper's RTL: an
    8-bit DS-id next to 28-bit tags grows the tag array from 12 to 18
    blockRAMs (+50%) -- blockRAM allocation quantizes to ~16-bit lanes,
    so the overhead is ``ceil(original * dsid_bits / 16)``.
    """
    if dsid_bits <= 0 or original_blockrams <= 0 or original_tag_bits <= 0:
        raise ValueError("widths and counts must be positive")
    extra = ceil(original_blockrams * dsid_bits / 16)
    return extra, original_blockrams + extra
