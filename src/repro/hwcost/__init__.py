"""Analytical FPGA-cost model for PARD control planes (Fig. 12, §7.2)."""

from repro.hwcost.fpga import (
    ControlPlaneCost,
    LLC_CONTROLLER_LUT_FF,
    MIG_CONTROLLER_LUT_FF,
    ResourceEstimate,
    llc_control_plane_cost,
    memory_control_plane_cost,
    tag_array_blockram_overhead,
)

__all__ = [
    "ControlPlaneCost",
    "LLC_CONTROLLER_LUT_FF",
    "MIG_CONTROLLER_LUT_FF",
    "ResourceEstimate",
    "llc_control_plane_cost",
    "memory_control_plane_cost",
    "tag_array_blockram_overhead",
]
