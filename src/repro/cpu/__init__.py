"""CPU substrate: timing cores that execute workload op streams.

Each :class:`~repro.cpu.core.CpuCore` carries a PARD DS-id tag register
(every packet it emits is stamped at the source, §4.1) and executes the
op stream produced by a workload model: compute blocks, tagged memory
accesses routed into its private L1, blocking waits, and callbacks that
let workloads observe simulated time.
"""

from repro.cpu.core import CoreState, CpuCore

__all__ = ["CoreState", "CpuCore"]
