"""The timing CPU core.

The core is a workload interpreter: a workload supplies a generator of
ops and the core charges time for them against the shared engine
timeline.

Op vocabulary (tuples, first element is the kind):

``("compute", cycles)``
    Execute for ``cycles`` core cycles.
``("load", addr)`` / ``("store", addr)``
    A tagged memory access to an LDom-physical address, issued into the
    core's memory port (the private L1). The core blocks until the
    response returns (loads) or the line is owned (stores; write-allocate
    makes the timing identical here).
``("loads", [addr, ...])``
    A batch of independent accesses issued together and waited on
    together -- the op-level expression of memory-level parallelism in an
    out-of-order window.
``("call", fn)``
    Invoke ``fn()`` at the current simulated time (workloads use this to
    timestamp request completions). Takes no simulated time.
``("block",)``
    Park the core until something calls :meth:`CpuCore.wake` (an idle
    memcached worker waiting for a request arrival).
``("io", packet)``
    A programmed-I/O access handed to the core's I/O port.

Small compute blocks and cache hits are *accumulated* and only
materialized as a single engine event when the accumulated time crosses
``flush_threshold_cycles`` or an asynchronous wait begins, which keeps
the event count per simulated second manageable without altering any
modeled latency by more than the threshold (100 cycles = 50 ns by
default, well below every latency the experiments measure).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.core.tagging import TagRegister
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.packet import MemOp, MemoryPacket


class CoreState(Enum):
    IDLE = "idle"
    RUNNING = "running"
    WAITING_MEM = "waiting_mem"
    WAITING_IO = "waiting_io"
    BLOCKED = "blocked"
    DONE = "done"


class CpuCore(Component):
    """A single CPU core with a DS-id tag register."""

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        core_id: int,
        memory: Component,
        io_port: Optional[Component] = None,
        flush_threshold_cycles: int = 100,
        telemetry=None,
    ):
        super().__init__(engine, f"core{core_id}", clock)
        self.core_id = core_id
        self.memory = memory
        self.io_port = io_port
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        if self.telemetry is not None:
            reg = self.telemetry.registry
            reg.gauge_fn(f"cpu.{self.name}.busy_ps", lambda: self.busy_ps)
            reg.gauge_fn(
                f"cpu.{self.name}.memory_accesses", lambda: self.memory_accesses
            )
        self.tag = TagRegister(f"core{core_id}")
        self.flush_threshold_ps = flush_threshold_cycles * clock.period_ps
        self.state = CoreState.IDLE
        self.busy_ps = 0
        self.memory_accesses = 0
        self._ops = None
        self._workload = None
        self._carry_ps = 0
        self._outstanding = 0
        self._wake_pending = False
        self._started_at_ps = 0

    # -- workload control --------------------------------------------------

    def assign(self, workload) -> None:
        """Start running a workload (an object with ``.ops()``)."""
        if self.state not in (CoreState.IDLE, CoreState.DONE):
            raise RuntimeError(f"{self.name} is already running a workload")
        self._workload = workload
        bind = getattr(workload, "bind", None)
        if bind is not None:
            bind(self)
        self._ops = iter(workload.ops())
        self.state = CoreState.RUNNING
        self._started_at_ps = self.now
        self.post(0, self._step)

    def wake(self) -> None:
        """Unblock a core parked on a ``("block",)`` op."""
        if self.state is CoreState.BLOCKED:
            self.state = CoreState.RUNNING
            self.post(0, self._step)
        else:
            self._wake_pending = True

    @property
    def is_busy(self) -> bool:
        return self.state not in (CoreState.IDLE, CoreState.DONE)

    # -- the interpreter loop -------------------------------------------------

    def _step(self) -> None:
        if self.state is not CoreState.RUNNING:
            return
        acc_ps = self._carry_ps
        self._carry_ps = 0
        while True:
            try:
                op = next(self._ops)
            except StopIteration:
                self.busy_ps += acc_ps
                if acc_ps > 0:
                    # Materialize the remaining accumulated time so DONE is
                    # observed at the correct simulated instant.
                    self.post(acc_ps, self._finish)
                else:
                    self.state = CoreState.DONE
                return
            kind = op[0]
            if kind == "compute":
                acc_ps += op[1] * self.clock.period_ps
                if acc_ps >= self.flush_threshold_ps:
                    self.busy_ps += acc_ps
                    self.post(acc_ps, self._step)
                    return
            elif kind == "load" or kind == "store":
                done = self._issue_memory(op[1], kind == "store", acc_ps)
                if done is None:
                    return  # waiting for memory
                acc_ps = done
            elif kind == "loads":
                done = self._issue_batch(op[1], acc_ps)
                if done is None:
                    return
                acc_ps = done
            elif kind == "call":
                op[1]()
            elif kind == "block":
                self.busy_ps += acc_ps
                if self._wake_pending:
                    self._wake_pending = False
                    continue
                self.state = CoreState.BLOCKED
                return
            elif kind == "io":
                self._issue_io(op[1], acc_ps)
                return
            else:
                raise ValueError(f"unknown core op {kind!r}")

    # -- memory ops --------------------------------------------------------------

    def _issue_memory(self, addr: int, is_store: bool, acc_ps: int) -> Optional[int]:
        """Issue one access; returns updated acc on a sync hit, else None."""
        packet = self._make_packet(addr, is_store)
        self.memory_accesses += 1
        latency = self.memory.access(packet, self._resume)
        if latency is not None:
            if packet.span is not None:
                self._finish_span(packet, self.now + latency)
            return acc_ps + latency
        self._begin_wait(acc_ps, outstanding=1)
        return None

    def _issue_batch(self, addrs, acc_ps: int) -> Optional[int]:
        """Issue independent accesses together (MLP); wait for the slowest."""
        max_sync = 0
        pending = 0
        for addr in addrs:
            packet = self._make_packet(addr, False)
            self.memory_accesses += 1
            latency = self.memory.access(packet, self._resume_batch)
            if latency is None:
                pending += 1
            else:
                if packet.span is not None:
                    self._finish_span(packet, self.now + latency)
                if latency > max_sync:
                    max_sync = latency
        if pending == 0:
            return acc_ps + max_sync
        self._begin_wait(acc_ps, outstanding=pending)
        return None

    def _make_packet(self, addr: int, is_store: bool) -> MemoryPacket:
        packet = self.tag.tag(
            MemoryPacket(
                addr=addr,
                op=MemOp.WRITE if is_store else MemOp.READ,
                birth_ps=self.now,
            )
        )
        if self.telemetry is not None:
            span = self.telemetry.spans.maybe_start(packet.ds_id, packet.packet_id)
            if span is not None:
                span.hop(f"{self.name}.issue", self.now)
                packet.span = span
        return packet

    def _finish_span(self, packet, at_ps: int) -> None:
        span = packet.span
        span.hop(f"{self.name}.response", at_ps)
        packet.span = None
        self.telemetry.spans.finish(span)

    def _begin_wait(self, acc_ps: int, outstanding: int) -> None:
        # acc is carried, not consumed: it re-enters the accumulator when
        # the wait ends, so it is charged to busy_ps exactly once.
        self._carry_ps = acc_ps
        self._outstanding = outstanding
        self.state = CoreState.WAITING_MEM

    def _finish(self) -> None:
        self.state = CoreState.DONE

    def _resume(self, _packet=None) -> None:
        if _packet is not None and _packet.span is not None:
            self._finish_span(_packet, self.now)
        if self.state is CoreState.WAITING_MEM:
            self.state = CoreState.RUNNING
            self._step()

    def _resume_batch(self, _packet=None) -> None:
        if _packet is not None and _packet.span is not None:
            self._finish_span(_packet, self.now)
        self._outstanding -= 1
        if self._outstanding == 0:
            self._resume()

    # -- I/O ops --------------------------------------------------------------------

    def _issue_io(self, packet, acc_ps: int) -> None:
        if self.io_port is None:
            raise RuntimeError(f"{self.name} has no I/O port")
        self._carry_ps = acc_ps
        self.state = CoreState.WAITING_IO
        self.tag.tag(packet)

        def resume(_resp=None):
            if self.state is CoreState.WAITING_IO:
                self.state = CoreState.RUNNING
                self._step()

        self.io_port.handle_request(packet, resume)
