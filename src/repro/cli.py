"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro table2
    python -m repro fig8 --loads 222000,333000,500000 --measure-ms 2.0 --jobs 4
    python -m repro fig9
    python -m repro fig10
    python -m repro fig11 --inject 0.75
    python -m repro fig12
    python -m repro all --jobs 4

Each subcommand builds the system, runs the experiment and prints the
same rows/series the benchmark harness does; the benchmarks additionally
assert the expected shapes.

Grid-shaped subcommands (``fig8``, ``fig11``, ``all``) accept
``--jobs N`` to fan independent simulation points out over N worker
processes (default: all cores). Results and telemetry artifacts are
merged by point index, so the output is byte-identical at any ``--jobs``
value; ``--jobs 1`` is the exact serial path. ``all`` runs every figure
even when one fails, prints a per-figure pass/fail summary, and exits
nonzero only at the end.
"""

from __future__ import annotations

import argparse
import sys
import textwrap
import traceback
from typing import Optional, Sequence

from repro.analysis.series import ascii_sparkline
from repro.analysis.tables import format_table
from repro.hwcost.fpga import (
    llc_control_plane_cost,
    memory_control_plane_cost,
    table_pair_cost,
    tag_array_blockram_overhead,
    trigger_table_cost,
)
from repro.runner import SweepPoint, default_jobs, run_sweep
from repro.system.config import TABLE2
from repro.system.experiments import (
    fig8_sweep_points,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
)
from repro.telemetry import Telemetry


def _add_telemetry_args(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group("telemetry")
    group.add_argument("--metrics-out", type=str, default=None, metavar="FILE",
                       help="write metric snapshots as JSONL")
    group.add_argument("--trace-out", type=str, default=None, metavar="FILE",
                       help="write sampled packet spans as a Chrome trace")
    group.add_argument("--span-sample", type=int, default=100, metavar="N",
                       help="record every Nth eligible packet (default 100)")
    group.add_argument("--metrics-every-ms", type=float, default=1.0,
                       help="snapshot period in sim ms (default 1.0)")


def _add_jobs_arg(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent grid points "
             "(default: all cores; 1 = exact serial path)",
    )


def _jobs_from(args) -> int:
    jobs = getattr(args, "jobs", None)
    return jobs if jobs is not None else default_jobs()


def _telemetry_from(args) -> Optional[Telemetry]:
    """Build a Telemetry hub only when an export was requested."""
    if not (getattr(args, "metrics_out", None) or getattr(args, "trace_out", None)):
        return None
    return Telemetry(
        span_sample=max(1, args.span_sample),
        snapshot_period_ms=args.metrics_every_ms,
    )


def _export_telemetry(telemetry: Optional[Telemetry], args) -> None:
    if telemetry is None:
        return
    if args.metrics_out:
        rows = telemetry.export_metrics_jsonl(args.metrics_out)
        print(f"wrote {rows} metric rows to {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        events = telemetry.export_chrome_trace(args.trace_out)
        print(
            f"wrote {events} trace events ({len(telemetry.spans)} spans, "
            f"{telemetry.spans.dropped} dropped) to {args.trace_out}",
            file=sys.stderr,
        )


# -- per-figure result printers (shared by the subcommands and ``all``) ------


def _print_fig7(timeline) -> None:
    for name, series in timeline.llc_occupancy_bytes.items():
        kb = [v / 1024 for v in series]
        print(f"{name:12s} LLC KB |{ascii_sparkline(kb)}| last={kb[-1]:.0f}")
    for when, what in timeline.events:
        print(f"  t={when:6.2f} ms  {what}")


def _print_fig8(results) -> None:
    rows = [
        [r.mode, f"{r.paper_krps:.1f}", f"{r.p95_ms:.3f}", f"{r.mean_ms:.3f}",
         f"{r.cpu_utilization * 100:.0f}%", f"{(r.llc_miss_rate or 0) * 100:.1f}%",
         "yes" if r.trigger_fired else "no"]
        for r in results
    ]
    print(format_table(
        ["mode", "paper-KRPS", "p95 ms", "mean ms", "CPU util", "LLC miss", "trigger"],
        rows,
    ))


def _print_fig9(timeline) -> None:
    for t, miss in zip(timeline.times_ms, timeline.miss_rates):
        marker = ""
        if timeline.trigger_time_ms is not None and abs(t - timeline.trigger_time_ms) < 0.25:
            marker = "  <-- trigger"
        print(f"t={t:6.2f} ms  miss={miss * 100:5.1f}%{marker}")
    print(f"final waymask: {timeline.final_waymask:#06x}")


def _print_fig10(timeline) -> None:
    for i, t in enumerate(timeline.times_ms):
        a = timeline.bandwidth_share["ldom_a"][i] * 100
        b = timeline.bandwidth_share["ldom_b"][i] * 100
        print(f"t={t:7.1f} ms  LDom0={a:5.1f}%  LDom1={b:5.1f}%")
    print(f"quota change at t={timeline.quota_change_ms:.1f} ms")


def _print_fig11(result) -> None:
    print(format_table(
        ["configuration", "mean delay (cycles)"],
        [
            ["w/o control plane", f"{result.baseline_mean_cycles:.1f}"],
            ["high priority", f"{result.high_priority_mean_cycles:.1f} "
                              f"({result.high_priority_speedup:.1f}x faster)"],
            ["low priority", f"{result.low_priority_mean_cycles:.1f} "
                             f"({result.low_priority_slowdown_pct:+.1f}%)"],
        ],
    ))


# -- subcommands -------------------------------------------------------------


def cmd_table2(_args) -> int:
    print(format_table(["parameter", "value"], TABLE2.describe()))
    return 0


def cmd_fig7(args) -> int:
    telemetry = _telemetry_from(args)
    timeline = run_fig7(phase_ms=args.phase_ms, telemetry=telemetry)
    _export_telemetry(telemetry, args)
    _print_fig7(timeline)
    return 0


def cmd_fig8(args) -> int:
    loads = [int(x) for x in args.loads.split(",")] if args.loads else None
    telemetry = _telemetry_from(args)
    results = run_fig8(
        loads_rps=loads, measure_ms=args.measure_ms, telemetry=telemetry,
        jobs=_jobs_from(args),
    )
    _export_telemetry(telemetry, args)
    _print_fig8(results)
    return 0


def cmd_fig9(args) -> int:
    telemetry = _telemetry_from(args)
    timeline = run_fig9(rps=args.rps, total_ms=args.total_ms, telemetry=telemetry)
    _export_telemetry(telemetry, args)
    _print_fig9(timeline)
    return 0


def cmd_fig10(args) -> int:
    telemetry = _telemetry_from(args)
    timeline = run_fig10(phase_ms=args.phase_ms, telemetry=telemetry)
    _export_telemetry(telemetry, args)
    _print_fig10(timeline)
    return 0


def cmd_fig11(args) -> int:
    telemetry = _telemetry_from(args)
    result = run_fig11(
        inject_rate=args.inject, num_requests=args.requests, telemetry=telemetry,
        jobs=_jobs_from(args),
    )
    _export_telemetry(telemetry, args)
    _print_fig11(result)
    return 0


def cmd_fig12(_args) -> int:
    rows = []
    for plane in ("LLC", "Memory"):
        for entries in (64, 128, 256):
            cost = table_pair_cost(entries, llc_datapath=(plane == "LLC"))
            rows.append([plane, f"param+stats {entries}", cost.lut, cost.lutram, cost.ff])
        for triggers in (16, 32, 64):
            cost = trigger_table_cost(triggers)
            rows.append([plane, f"trigger {triggers}", cost.lut, cost.lutram, cost.ff])
    print(format_table(["plane", "component", "LUT", "LUTRAM", "FF"], rows))
    memory = memory_control_plane_cost()
    llc = llc_control_plane_cost()
    extra, total = tag_array_blockram_overhead()
    print(f"\nmemory CP: {memory.total.lut_ff} LUT/FF "
          f"({memory.overhead_fraction * 100:.1f}% of MIG)")
    print(f"LLC CP:    {llc.total.lut_ff} LUT/FF "
          f"({llc.overhead_fraction * 100:.1f}% of T1 LLC)")
    print(f"tag array: +{extra} blockRAMs (12 -> {total})")
    return 0


def cmd_lint(args) -> int:
    """Forward to the simulation-safety linter's own CLI."""
    from repro.analysis.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def cmd_all(args) -> int:
    """Every table and figure; simulation points fan out over ``--jobs``.

    The compute-heavy figures become one sweep grid (Fig. 8 contributes
    a point per mode x load; Figs. 7/9/10/11 one point each), so the
    whole evaluation parallelizes across cores. Every figure runs even
    when another fails; a per-figure pass/fail summary is printed at the
    end and only then does a failure turn into a nonzero exit.

    ``--lint-gate`` is a cheap pre-flight for long sweeps: refuse to
    start if the tree has ERROR-severity lint findings (wall-clock,
    global randomness, raw event queues) that would poison every point.
    """
    if getattr(args, "lint_gate", False):
        from repro.analysis.lint.gate import lint_gate

        if not lint_gate():
            return 2

    telemetry = _telemetry_from(args)

    points = [SweepPoint(index=0, builder="fig7",
                         params={"phase_ms": 1.0}, label="fig7")]
    fig8_points = fig8_sweep_points(measure_ms=2.0, first_index=1)
    points += fig8_points
    base = 1 + len(fig8_points)
    points.append(SweepPoint(index=base, builder="fig9",
                             params={"rps": 300_000, "total_ms": 5.0},
                             label="fig9"))
    points.append(SweepPoint(index=base + 1, builder="fig10",
                             params={"phase_ms": 160.0}, label="fig10"))
    points.append(SweepPoint(index=base + 2, builder="fig11",
                             params={"inject_rate": 0.75, "num_requests": 6000},
                             seed=7, label="fig11"))
    sweep = run_sweep(
        points, jobs=_jobs_from(args), telemetry=telemetry, progress=True
    )
    by_index = {pr.index: pr for pr in sweep.points}
    statuses: list[tuple[str, bool, str]] = []

    def banner(name: str) -> None:
        print(f"\n=== {name} " + "=" * (60 - len(name)))

    def report_failure(name: str, exc: Exception) -> None:
        """Print the failing figure's name with its full traceback."""
        print(f"[{name}] failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        print(textwrap.indent(traceback.format_exc(), f"[{name}] "),
              file=sys.stderr, end="")

    def run_local(name: str, fn) -> None:
        """A figure computed in-process (cheap tables, no simulation)."""
        banner(name)
        try:
            fn()
            statuses.append((name, True, ""))
        except Exception as exc:  # intentionally broad: `all` keeps going
            report_failure(name, exc)
            statuses.append((name, False, f"{type(exc).__name__}: {exc}"))

    def figure(name: str, point_results, render) -> None:
        banner(name)
        failures = [pr for pr in point_results if not pr.ok]
        if failures:
            for pr in failures:
                print(f"point {pr.label} failed:\n{pr.error}")
            statuses.append(
                (name, False,
                 f"{len(failures)}/{len(point_results)} points failed")
            )
            return
        try:
            render([pr.value for pr in point_results])
            statuses.append((name, True, ""))
        except Exception as exc:  # intentionally broad: `all` keeps going
            report_failure(name, exc)
            statuses.append((name, False, f"{type(exc).__name__}: {exc}"))

    run_local("table2", lambda: cmd_table2(args))
    figure("fig7", [by_index[0]], lambda v: _print_fig7(v[0]))
    figure("fig8", [by_index[p.index] for p in fig8_points], _print_fig8)
    figure("fig9", [by_index[base]], lambda v: _print_fig9(v[0]))
    figure("fig10", [by_index[base + 1]], lambda v: _print_fig10(v[0]))
    figure("fig11", [by_index[base + 2]], lambda v: _print_fig11(v[0]))
    run_local("fig12", lambda: cmd_fig12(args))
    _export_telemetry(telemetry, args)

    banner("summary")
    print(format_table(
        ["figure", "status", "detail"],
        [[name, "ok" if ok else "FAILED", detail]
         for name, ok, detail in statuses],
    ))
    return 0 if all(ok for _name, ok, _detail in statuses) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARD (ASPLOS'15) reproduction: regenerate the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="print Table 2").set_defaults(fn=cmd_table2)

    fig7 = sub.add_parser("fig7", help="dynamic partitioning timeline")
    fig7.add_argument("--phase-ms", type=float, default=1.0)
    _add_telemetry_args(fig7)
    fig7.set_defaults(fn=cmd_fig7)

    fig8 = sub.add_parser("fig8", help="tail latency vs load")
    fig8.add_argument("--loads", type=str, default="",
                      help="comma-separated RPS values")
    fig8.add_argument("--measure-ms", type=float, default=2.0)
    _add_jobs_arg(fig8)
    _add_telemetry_args(fig8)
    fig8.set_defaults(fn=cmd_fig8)

    fig9 = sub.add_parser("fig9", help="miss-rate trigger timeline")
    fig9.add_argument("--rps", type=float, default=300_000)
    fig9.add_argument("--total-ms", type=float, default=5.0)
    _add_telemetry_args(fig9)
    fig9.set_defaults(fn=cmd_fig9)

    fig10 = sub.add_parser("fig10", help="disk bandwidth isolation")
    fig10.add_argument("--phase-ms", type=float, default=160.0)
    _add_telemetry_args(fig10)
    fig10.set_defaults(fn=cmd_fig10)

    fig11 = sub.add_parser("fig11", help="memory queueing delay")
    fig11.add_argument("--inject", type=float, default=0.75,
                       help="fraction of measured saturation bandwidth")
    fig11.add_argument("--requests", type=int, default=6000)
    _add_jobs_arg(fig11)
    _add_telemetry_args(fig11)
    fig11.set_defaults(fn=cmd_fig11)

    sub.add_parser("fig12", help="FPGA resource model").set_defaults(fn=cmd_fig12)

    everything = sub.add_parser(
        "all", help="run everything (figures keep going past failures)"
    )
    _add_jobs_arg(everything)
    _add_telemetry_args(everything)
    everything.add_argument(
        "--lint-gate", action="store_true",
        help="refuse to run if the tree has ERROR-severity lint findings",
    )
    everything.set_defaults(fn=cmd_all)

    lint = sub.add_parser(
        "lint",
        help="simulation-safety linter (same as python -m repro.analysis)",
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER, metavar="...",
                      help="arguments forwarded to repro-lint")
    lint.set_defaults(fn=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # Forwarded verbatim: argparse.REMAINDER drops leading options
        # (bpo-17050), so the linter gets its own argv untouched.
        from repro.analysis.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
