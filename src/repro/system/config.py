"""Simulation configuration (Table 2 of the paper).

``TABLE2`` is the paper's configuration verbatim. Full-scale caches make
Python-speed experiments slow, so :meth:`ServerConfig.scaled` derives a
geometry-preserving reduction: capacities shrink by the scale factor
while associativities, latencies and all DRAM timing stay untouched --
contention behaviour (occupancy ratios, miss-rate crossovers, queueing)
is preserved because every working set in the experiments shrinks by the
same factor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram.timing import DramGeometry, DramTiming
from repro.sim.clock import CPU_CLOCK_PS, DRAM_CLOCK_PS
from repro.sim.engine import PS_PER_MS, PS_PER_US


@dataclass(frozen=True)
class ServerConfig:
    """Geometry, timing and management parameters for one PARD server."""

    # CPU (Table 2: 4 four-issue OoO x86 cores at 2 GHz)
    num_cores: int = 4
    cpu_period_ps: int = CPU_CLOCK_PS

    # L1 (64KB 2-way, 2-cycle hit; private per core)
    l1_size_bytes: int = 64 * 1024
    l1_ways: int = 2
    l1_hit_cycles: int = 2

    # Shared LLC (4MB 16-way, 20-cycle hit)
    llc_size_bytes: int = 4 * 1024 * 1024
    llc_ways: int = 16
    llc_hit_cycles: int = 20
    llc_mshrs: int = 32

    # DRAM (DDR3-1600, Table 2 timing; 8GB, 1 channel x 2 ranks x 8 banks)
    dram_period_ps: int = DRAM_CLOCK_PS
    dram_timing: DramTiming = DramTiming()
    dram_geometry: DramGeometry = DramGeometry()

    # Memory organization: Table 2 has one channel; the paper's RTL
    # substrate (OpenSPARC T1) has four controllers.
    memory_channels: int = 1

    # Optional explicit ICN crossbar between the L1s and the LLC
    # (zero-cost fabric by default, matching the experiment calibration).
    icn_crossbar: bool = False
    crossbar_traversal_ps: int = 2_000

    # Disk (4-channel IDE, 8 disks -- modeled as one shared controller)
    disk_bandwidth_bytes_per_s: int = 100 * 1024 * 1024
    disk_chunk_bytes: int = 64 * 1024

    # PRM (100 MHz embedded core; management timing)
    control_window_ps: int = PS_PER_MS
    firmware_reaction_ps: int = 20 * PS_PER_US

    # Control plane sizing (Fig. 12's design point: 256 tags, 64 triggers)
    max_table_entries: int = 256
    max_triggers: int = 64

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("need at least one core")
        if self.llc_size_bytes % (self.llc_ways * 64):
            raise ValueError("LLC size must be divisible by ways * line size")
        if self.memory_channels <= 0:
            raise ValueError("need at least one memory channel")

    def scaled(self, factor: int) -> "ServerConfig":
        """Shrink cache capacities by ``factor`` (a power of two).

        Associativity, latency and DRAM timing are preserved; only
        capacities (and thus simulation cost) change.
        """
        if factor < 1 or factor & (factor - 1):
            raise ValueError("scale factor must be a power of two >= 1")
        return replace(
            self,
            l1_size_bytes=max(self.l1_ways * 64, self.l1_size_bytes // factor),
            llc_size_bytes=max(self.llc_ways * 64, self.llc_size_bytes // factor),
        )

    def describe(self) -> list[tuple[str, str]]:
        """Table 2 as printable rows."""
        t = self.dram_timing
        g = self.dram_geometry
        return [
            ("CPU", f"{self.num_cores} cores @ {1000 / self.cpu_period_ps:.1f} GHz"),
            ("L1/core", f"{self.l1_size_bytes // 1024}KB {self.l1_ways}-way, "
                        f"hit = {self.l1_hit_cycles} cycles"),
            ("Shared LLC", f"{self.llc_size_bytes // (1024 * 1024)}MB "
                           f"{self.llc_ways}-way, hit = {self.llc_hit_cycles} cycles"),
            ("DRAM", f"DDR3-1600 {t.t_rcd}-{t.t_cl}-{t.t_rp}, "
                     f"{g.channels} channel, {g.ranks} ranks, "
                     f"{g.banks_per_rank} banks/rank, row buffer = {g.row_bytes}B"),
            ("Disks", f"IDE @ {self.disk_bandwidth_bytes_per_s // (1024 * 1024)} MB/s"),
            ("PRM", f"window = {self.control_window_ps // PS_PER_MS} ms, "
                    f"reaction = {self.firmware_reaction_ps // PS_PER_US} us"),
            ("Control planes", f"{self.max_table_entries} tags, "
                               f"{self.max_triggers} triggers"),
        ]


TABLE2 = ServerConfig()
