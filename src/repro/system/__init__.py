"""Full-system assembly.

- :mod:`repro.system.config` -- Table 2's simulation parameters, plus a
  uniform scale knob for laptop-speed experiment runs
- :mod:`repro.system.server` -- wires cores, caches, DRAM, I/O, APIC,
  control planes and the PRM firmware into one PARD server
- :mod:`repro.system.experiments` -- drivers that reproduce the paper's
  evaluation scenarios (Figs. 7-11)
"""

from repro.system.config import ServerConfig, TABLE2
from repro.system.server import PardServer

__all__ = ["PardServer", "ServerConfig", "TABLE2"]
