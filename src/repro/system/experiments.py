"""Experiment drivers for the paper's evaluation scenarios (Figs. 7-11).

Each driver builds a PARD server, runs one scenario, and returns a
result object the benchmarks print. Everything is parameterized by
:class:`ColocationSetup`, whose defaults are the calibrated operating
point of this reproduction (see EXPERIMENTS.md for the calibration and
for the scale mapping to the paper's axes):

- the server runs at capacity scale 1/8 (LLC 512 KB, same associativity,
  latencies and DRAM timing as Table 2), with every working set scaled by
  the same factor;
- offered memcached load is normalized so that the solo-mode saturation
  knee corresponds to the paper's 22.5 KRPS;
- the LLC miss-rate trigger threshold is 15% rather than the paper's 30%
  because the synthetic workload's shared-mode miss rate saturates lower
  than real memcached's; the mechanism under test (threshold crossing =>
  interrupt => firmware repartitions => miss rate and tail recover) is
  unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dram.controller import MemoryController
from repro.dram.control_plane import MemoryControlPlane
from repro.prm.rules import partition_llc_action
from repro.sim.clock import ClockDomain, DRAM_CLOCK_PS
from repro.sim.engine import Engine, PS_PER_MS
from repro.sim.packet import MemoryPacket
from repro.sim.rng import DeterministicRng
from repro.sim.stats import LatencyRecorder
from repro.system.config import ServerConfig, TABLE2
from repro.system.server import PardServer
from repro.workloads.base import Boot, Sequence
from repro.workloads.cacheflush import CacheFlush
from repro.workloads.diskio import DiskCopy
from repro.workloads.memcached import MemcachedServer
from repro.workloads.spec import lbm, leslie3d
from repro.workloads.stream import Stream

# The paper's Fig. 8 x-axis tops out at 22.5 KRPS, which corresponds to
# this reproduction's solo saturation knee of ~500 KRPS (scaled server,
# scaled requests). One paper-KRPS is PAPER_KRPS_SCALE of our RPS.
PAPER_KRPS_SCALE = 500_000 / 22_500

FIG8_DEFAULT_LOADS = [222_000, 333_000, 444_000, 500_000]


@dataclass
class ColocationSetup:
    """The calibrated memcached-vs-STREAM co-location configuration."""

    scale: int = 8
    mc_working_set_bytes: int = 224 << 10
    mc_loads_per_request: int = 120
    mc_mlp: int = 1
    mc_compute_cycles: int = 16
    mc_zipf_alpha: float = 0.9
    mc_priority: int = 1
    stream_array_bytes: int = 1 << 20
    stream_mlp: int = 8
    stream_compute_cycles: int = 40
    trigger_threshold_pct: int = 15  # paper: 30 (see module docstring)
    partition_share: float = 0.5
    ldom_memory_bytes: int = 16 << 20
    warmup_ms: float = 1.5
    control_window_ms: float = 1.0
    seed: int = 42

    def config(self) -> ServerConfig:
        from dataclasses import replace
        scaled = TABLE2.scaled(self.scale)
        return replace(scaled, control_window_ps=int(self.control_window_ms * PS_PER_MS))


@dataclass
class ColocationResult:
    """One Fig. 8 measurement point."""

    mode: str
    rps: float
    p95_ms: float
    mean_ms: float
    throughput_rps: float
    cpu_utilization: float
    llc_miss_rate: Optional[float]
    trigger_fired: bool

    @property
    def paper_krps(self) -> float:
        """This point's position on the paper's KRPS x-axis."""
        return self.rps / PAPER_KRPS_SCALE / 1000.0


def _build_colocated_server(
    setup: ColocationSetup, mode: str, rps: float, telemetry=None,
    seed: Optional[int] = None,
) -> tuple[PardServer, MemcachedServer, int]:
    """Create the server, LDoms and workloads for one Fig. 8/9 run."""
    if mode not in ("solo", "shared", "trigger"):
        raise ValueError(f"unknown mode {mode!r}")
    if seed is None:
        seed = setup.seed
    server = PardServer(setup.config(), telemetry=telemetry)
    firmware = server.firmware
    rng = DeterministicRng(seed, name=f"{mode}-{rps:g}")
    mc_ldom = firmware.create_ldom(
        "memcached", core_ids=(0,), memory_bytes=setup.ldom_memory_bytes,
        priority=setup.mc_priority,
    )
    memcached = MemcachedServer(
        server.engine,
        rps=rps,
        working_set_bytes=setup.mc_working_set_bytes,
        loads_per_request=setup.mc_loads_per_request,
        mlp=setup.mc_mlp,
        compute_cycles_per_batch=setup.mc_compute_cycles,
        zipf_alpha=setup.mc_zipf_alpha,
        warmup_ps=int(setup.warmup_ms * PS_PER_MS),
        rng=rng.child("memcached"),
        telemetry=telemetry,
        ds_id=mc_ldom.ds_id,
    )
    if mode == "trigger":
        config = setup.config()
        firmware.register_script(
            "/cpa0_ldom1_t0.sh",
            partition_llc_action(num_ways=config.llc_ways, share=setup.partition_share),
        )
        firmware.sh(
            f"pardtrigger /dev/cpa0 -ldom={mc_ldom.ds_id} -action=0 "
            f"-stats=miss_rate -cond=gt,{setup.trigger_threshold_pct}"
        )
        firmware.sh(
            f"echo /cpa0_ldom1_t0.sh > "
            f"/sys/cpa/cpa0/ldoms/ldom{mc_ldom.ds_id}/triggers/0"
        )
    server.start()
    firmware.launch_ldom("memcached", {0: memcached})
    if mode != "solo":
        for i in range(1, server.config.num_cores):
            firmware.create_ldom(
                f"stream{i}", core_ids=(i,), memory_bytes=setup.ldom_memory_bytes
            )
            stream = Stream(
                array_bytes=setup.stream_array_bytes,
                mlp=setup.stream_mlp,
                compute_cycles_per_batch=setup.stream_compute_cycles,
            )
            firmware.launch_ldom(f"stream{i}", {i: stream})
    return server, memcached, mc_ldom.ds_id


def run_colocation_point(
    mode: str,
    rps: float,
    setup: Optional[ColocationSetup] = None,
    measure_ms: float = 2.5,
    telemetry=None,
    seed: Optional[int] = None,
) -> ColocationResult:
    """One (mode, load) point of Fig. 8.

    ``seed`` is the point's explicit workload seed (default:
    ``setup.seed``). Every RNG the point uses derives from it inside
    this call -- never from global or run-order state -- so the result
    is identical whether the point runs first, last, serially or in a
    worker process. Grid drivers deliberately give every point the same
    root seed (common random numbers): the modes at one load then see
    identical arrival/key streams, making the Fig. 8 curves paired
    comparisons; pass distinct seeds for independent replications.
    """
    setup = setup or ColocationSetup()
    if telemetry is not None:
        telemetry.begin_run(f"{mode}@{rps:g}rps")
    server, memcached, ds_id = _build_colocated_server(
        setup, mode, rps, telemetry=telemetry, seed=seed
    )
    total_ms = setup.warmup_ms + measure_ms
    server.run_ms(total_ms)
    if server.telemetry is not None:
        server.telemetry.snapshot(server.engine.now)
    duration_ps = int(measure_ms * PS_PER_MS)
    return ColocationResult(
        mode=mode,
        rps=rps,
        p95_ms=memcached.p95_ms(),
        mean_ms=memcached.mean_ms(),
        throughput_rps=memcached.throughput_rps(int(total_ms * PS_PER_MS)),
        cpu_utilization=server.cpu_utilization(),
        llc_miss_rate=server.llc_control.last_window_miss_rate(ds_id),
        trigger_fired=server.llc_control.interrupts_raised > 0,
    )


def fig8_sweep_points(
    loads_rps: Optional[list[float]] = None,
    modes: tuple[str, ...] = ("solo", "shared", "trigger"),
    setup: Optional[ColocationSetup] = None,
    measure_ms: float = 2.5,
    first_index: int = 0,
) -> list:
    """The Fig. 8 mode x load grid as picklable sweep points."""
    from dataclasses import asdict

    from repro.runner.sweep import SweepPoint

    setup = setup or ColocationSetup()
    loads = loads_rps or FIG8_DEFAULT_LOADS
    points = []
    for i, (mode, rps) in enumerate(
        (m, r) for m in modes for r in loads
    ):
        points.append(SweepPoint(
            index=first_index + i,
            builder="colocation_point",
            params={
                "mode": mode,
                "rps": rps,
                "setup": asdict(setup),
                "measure_ms": measure_ms,
            },
            seed=setup.seed,
            label=f"{mode}@{rps:g}rps",
        ))
    return points


def run_fig8(
    loads_rps: Optional[list[float]] = None,
    modes: tuple[str, ...] = ("solo", "shared", "trigger"),
    setup: Optional[ColocationSetup] = None,
    measure_ms: float = 2.5,
    telemetry=None,
    jobs: int = 1,
) -> list[ColocationResult]:
    """Fig. 8: tail response time vs offered load, for all three modes.

    The default loads correspond to the paper's 10 / 15 / 20 / 22.5 KRPS
    x-axis points under the :data:`PAPER_KRPS_SCALE` mapping. The grid
    runs through the sweep runner: ``jobs=1`` executes the points
    serially in this process, ``jobs=N`` fans them out over N worker
    processes -- the returned list (and any merged telemetry) is
    byte-identical either way, in grid order.
    """
    from repro.runner.sweep import run_sweep

    points = fig8_sweep_points(
        loads_rps=loads_rps, modes=modes, setup=setup, measure_ms=measure_ms
    )
    sweep = run_sweep(points, jobs=jobs, telemetry=telemetry)
    sweep.raise_on_failure()
    return sweep.values()


@dataclass
class MissRateTimeline:
    """Fig. 9: windowed LLC miss rate over time for the memcached LDom."""

    times_ms: list[float] = field(default_factory=list)
    miss_rates: list[float] = field(default_factory=list)
    trigger_time_ms: Optional[float] = None
    stream_start_ms: float = 0.0
    final_waymask: int = 0


def run_fig9(
    rps: float = 300_000,
    setup: Optional[ColocationSetup] = None,
    stream_delay_ms: float = 1.0,
    total_ms: float = 5.0,
    sample_ms: float = 0.25,
    telemetry=None,
) -> MissRateTimeline:
    """Fig. 9: the trigger catching a miss-rate excursion.

    Memcached runs alone first; the STREAM LDoms start after
    ``stream_delay_ms``; the installed trigger fires when the windowed
    miss rate crosses the threshold and the firmware repartitions.
    """
    setup = setup or ColocationSetup()
    config = setup.config()
    if telemetry is not None:
        telemetry.begin_run(f"fig9@{rps:g}rps")
    server = PardServer(config, telemetry=telemetry)
    firmware = server.firmware
    mc_ldom = firmware.create_ldom(
        "memcached", (0,), setup.ldom_memory_bytes, priority=setup.mc_priority
    )
    memcached = MemcachedServer(
        server.engine, rps=rps,
        working_set_bytes=setup.mc_working_set_bytes,
        loads_per_request=setup.mc_loads_per_request,
        mlp=setup.mc_mlp,
        compute_cycles_per_batch=setup.mc_compute_cycles,
        zipf_alpha=setup.mc_zipf_alpha,
        warmup_ps=0,
        rng=DeterministicRng(setup.seed, "fig9").child("memcached"),
        telemetry=telemetry,
        ds_id=mc_ldom.ds_id,
    )
    firmware.register_script(
        "/cpa0_ldom1_t0.sh",
        partition_llc_action(num_ways=config.llc_ways, share=setup.partition_share),
    )
    firmware.sh(
        f"pardtrigger /dev/cpa0 -ldom={mc_ldom.ds_id} -action=0 "
        f"-stats=miss_rate -cond=gt,{setup.trigger_threshold_pct}"
    )
    firmware.sh(
        f"echo /cpa0_ldom1_t0.sh > /sys/cpa/cpa0/ldoms/ldom{mc_ldom.ds_id}/triggers/0"
    )
    server.start()
    firmware.launch_ldom("memcached", {0: memcached})
    delay_cycles = int(stream_delay_ms * PS_PER_MS / config.cpu_period_ps)
    for i in range(1, config.num_cores):
        firmware.create_ldom(f"stream{i}", (i,), setup.ldom_memory_bytes)
        firmware.launch_ldom(
            f"stream{i}",
            {i: Stream(
                array_bytes=setup.stream_array_bytes,
                mlp=setup.stream_mlp,
                compute_cycles_per_batch=setup.stream_compute_cycles,
                start_delay_cycles=delay_cycles,
            )},
        )
    timeline = MissRateTimeline(stream_start_ms=stream_delay_ms)
    mc_path = f"/sys/cpa/cpa0/ldoms/ldom{mc_ldom.ds_id}"
    steps = int(total_ms / sample_ms)
    for _ in range(steps):
        server.run_ms(sample_ms)
        now_ms = server.engine.now / PS_PER_MS
        miss_rate = int(firmware.cat(f"{mc_path}/statistics/miss_rate")) / 10_000
        timeline.times_ms.append(now_ms)
        timeline.miss_rates.append(miss_rate)
        if timeline.trigger_time_ms is None and firmware.trigger_log:
            timeline.trigger_time_ms = firmware.trigger_log[0][0] / PS_PER_MS
    timeline.final_waymask = int(firmware.cat(f"{mc_path}/parameters/waymask"))
    return timeline


@dataclass
class VirtualizationTimeline:
    """Fig. 7: per-LDom LLC occupancy and memory bandwidth over time."""

    times_ms: list[float] = field(default_factory=list)
    # ldom name -> series
    llc_occupancy_bytes: dict[str, list[int]] = field(default_factory=dict)
    memory_bandwidth_bytes: dict[str, list[int]] = field(default_factory=dict)
    events: list[tuple[float, str]] = field(default_factory=list)


def run_fig7(
    setup: Optional[ColocationSetup] = None,
    phase_ms: float = 1.0,
    sample_ms: float = 0.25,
    telemetry=None,
) -> VirtualizationTimeline:
    """Fig. 7: launch three LDoms in turn, then repartition with ``echo``.

    LDom1 boots and runs 437.leslie3d, LDom2 boots and runs 470.lbm,
    LDom3 boots and runs CacheFlush; after all are up, the operator gives
    LDom1 a dedicated half of the LLC exactly as in the paper's shell
    transcript.
    """
    setup = setup or ColocationSetup()
    config = setup.config()
    if telemetry is not None:
        telemetry.begin_run("fig7")
    server = PardServer(config, telemetry=telemetry)
    firmware = server.firmware
    workload_scale = 1.0 / setup.scale
    boot = lambda: Boot(footprint_bytes=(4 << 20) // setup.scale)
    plan = [
        ("ldom_leslie", 0, Sequence([boot(), leslie3d(scale=workload_scale)])),
        ("ldom_lbm", 1, Sequence([boot(), lbm(scale=workload_scale)])),
        ("ldom_flush", 2, Sequence([boot(), CacheFlush(flush_bytes=(8 << 20) // setup.scale)])),
    ]
    timeline = VirtualizationTimeline()
    for name, _core, _w in plan:
        timeline.llc_occupancy_bytes[name] = []
        timeline.memory_bandwidth_bytes[name] = []
    server.start()
    ldoms = {}
    launched = 0

    def sample() -> None:
        timeline.times_ms.append(server.engine.now / PS_PER_MS)
        for name, _core, _w in plan:
            if name in ldoms:
                ds_id = ldoms[name].ds_id
                occupancy = server.llc_control.occupancy_bytes(ds_id)
                bandwidth = server.memory_control.last_window_bandwidth_bytes(ds_id)
            else:
                occupancy, bandwidth = 0, 0
            timeline.llc_occupancy_bytes[name].append(occupancy)
            timeline.memory_bandwidth_bytes[name].append(bandwidth)

    total_phases = len(plan) + 2  # one phase per launch + two steady phases
    steps_per_phase = max(1, int(phase_ms / sample_ms))
    for phase in range(total_phases):
        if phase < len(plan):
            name, core, workload = plan[phase]
            ldoms[name] = firmware.create_ldom(name, (core,), setup.ldom_memory_bytes)
            firmware.launch_ldom(name, {core: workload})
            launched += 1
            timeline.events.append((server.engine.now / PS_PER_MS, f"launch {name}"))
        elif phase == len(plan) + 1:
            # The paper's manual rebalancing: half the LLC to LDom1.
            half = config.llc_ways // 2
            high_mask = ((1 << half) - 1) << half
            low_mask = (1 << half) - 1
            firmware.sh(
                f"echo {high_mask:#x} > /sys/cpa/cpa0/ldoms/"
                f"ldom{ldoms['ldom_leslie'].ds_id}/parameters/waymask"
            )
            for other in ("ldom_lbm", "ldom_flush"):
                firmware.sh(
                    f"echo {low_mask:#x} > /sys/cpa/cpa0/ldoms/"
                    f"ldom{ldoms[other].ds_id}/parameters/waymask"
                )
            timeline.events.append(
                (server.engine.now / PS_PER_MS, "echo waymask repartition")
            )
        for _ in range(steps_per_phase):
            server.run_ms(sample_ms)
            sample()
    return timeline


@dataclass
class DiskIsolationTimeline:
    """Fig. 10: per-LDom disk bandwidth share over time."""

    times_ms: list[float] = field(default_factory=list)
    bandwidth_share: dict[str, list[float]] = field(default_factory=dict)
    quota_change_ms: Optional[float] = None


def run_fig10(
    setup: Optional[ColocationSetup] = None,
    phase_ms: float = 200.0,
    sample_ms: float = 20.0,
    block_bytes: int = 4 << 20,
    telemetry=None,
) -> DiskIsolationTimeline:
    """Fig. 10: two LDoms ``dd`` to disk; a quota write shifts the split.

    Both LDoms start with the default fair share (50/50); mid-run the
    operator runs ``echo 80 > .../parameters/bandwidth`` and the split
    moves to 80/20.
    """
    setup = setup or ColocationSetup()
    config = setup.config()
    if telemetry is not None:
        telemetry.begin_run("fig10")
    server = PardServer(config, telemetry=telemetry)
    firmware = server.firmware
    names = ("ldom_a", "ldom_b")
    ldoms = {}
    for index, name in enumerate(names):
        ldoms[name] = firmware.create_ldom(name, (index,), setup.ldom_memory_bytes)
    server.start()
    for index, name in enumerate(names):
        firmware.launch_ldom(
            name, {index: DiskCopy(block_bytes=block_bytes, count=0)}
        )
    timeline = DiskIsolationTimeline()
    for name in names:
        timeline.bandwidth_share[name] = []

    previous_totals = {name: 0 for name in names}

    def sample_phase(duration_ms: float) -> None:
        steps = max(1, int(duration_ms / sample_ms))
        for _ in range(steps):
            server.run_ms(sample_ms)
            timeline.times_ms.append(server.engine.now / PS_PER_MS)
            deltas = {}
            for name in names:
                total = server.ide_control.statistics.get_default(
                    ldoms[name].ds_id, "bytes_total", 0
                )
                deltas[name] = total - previous_totals[name]
                previous_totals[name] = total
            interval_total = sum(deltas.values()) or 1
            for name in names:
                timeline.bandwidth_share[name].append(deltas[name] / interval_total)

    sample_phase(phase_ms)
    firmware.sh(
        f"echo 80 > /sys/cpa/cpa2/ldoms/ldom{ldoms['ldom_a'].ds_id}/parameters/bandwidth"
    )
    firmware.sh(
        f"echo 20 > /sys/cpa/cpa2/ldoms/ldom{ldoms['ldom_b'].ds_id}/parameters/bandwidth"
    )
    timeline.quota_change_ms = server.engine.now / PS_PER_MS
    sample_phase(phase_ms)
    return timeline


@dataclass
class QueueingResult:
    """Fig. 11: memory queueing delay distributions."""

    baseline_mean_cycles: float
    high_priority_mean_cycles: float
    low_priority_mean_cycles: float
    baseline_cdf: list[tuple[float, float]]
    high_cdf: list[tuple[float, float]]
    low_cdf: list[tuple[float, float]]

    @property
    def high_priority_speedup(self) -> float:
        if self.high_priority_mean_cycles == 0:
            return float("inf")
        return self.baseline_mean_cycles / self.high_priority_mean_cycles

    @property
    def low_priority_slowdown_pct(self) -> float:
        if self.baseline_mean_cycles == 0:
            return 0.0
        return (
            (self.low_priority_mean_cycles - self.baseline_mean_cycles)
            / self.baseline_mean_cycles * 100.0
        )


def _drive_controller(
    with_control_plane: bool,
    rate_req_per_cycle: Optional[float],
    num_requests: int,
    seed: int,
    row_hit_fraction: float,
    hp_row_buffer: bool,
    telemetry=None,
) -> MemoryController:
    """Run the Fig. 11 injector against one controller configuration.

    With ``rate_req_per_cycle=None`` all requests are enqueued at t=0,
    which measures the controller's saturation throughput.
    """
    engine = Engine()
    clock = ClockDomain(engine, DRAM_CLOCK_PS)
    control = None
    if with_control_plane:
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1, priority=0)
        control.allocate_ldom(2, priority=1)
    controller = MemoryController(
        engine, clock, control=control, hp_row_buffer=hp_row_buffer,
        telemetry=telemetry,
    )
    spans = (
        telemetry.spans
        if (telemetry is not None and telemetry.enabled)
        else None
    )
    rng = DeterministicRng(seed, "fig11")
    addr_rng = rng.child("addr")
    arrival_rng = rng.child("arrival")
    geometry = controller.geometry
    hot_rows = [addr_rng.randint(0, 255) for _ in range(geometry.total_banks)]
    time_ps = 0
    for i in range(num_requests):
        bank = addr_rng.randint(0, geometry.total_banks - 1)
        if addr_rng.random() < row_hit_fraction:
            row = hot_rows[bank]
        else:
            row = addr_rng.randint(0, 4095)
        addr = (row * geometry.total_banks + bank) * geometry.row_bytes
        ds_id = 2 if i % 2 else 1  # half high (2), half low (1)
        packet = MemoryPacket(ds_id=ds_id, addr=addr, birth_ps=time_ps)
        if spans is not None:
            span = spans.maybe_start(ds_id, packet.packet_id)
            if span is not None:
                span.hop("inject", time_ps)
                packet.span = span
        if packet.span is not None:
            done = lambda _r, s=packet.span: spans.finish(s)
        else:
            done = lambda _r: None
        if rate_req_per_cycle is None:
            controller.handle_request(packet, done)
        else:
            mean_gap_ps = DRAM_CLOCK_PS / rate_req_per_cycle
            time_ps += max(1, int(arrival_rng.exponential(mean_gap_ps)))
            engine.post_at(
                time_ps,
                lambda p=packet, cb=done: controller.handle_request(p, cb),
            )
    engine.run()
    return controller


def run_fig11_controller_point(
    with_control_plane: bool,
    rate_req_per_cycle: float,
    num_requests: int,
    seed: int,
    row_hit_fraction: float,
    hp_row_buffer: bool,
    telemetry=None,
) -> dict:
    """One Fig. 11 controller configuration, reduced to picklable stats.

    Returns ``{"mean": {priority: cycles}, "cdf": {priority: [(x, frac)]}}``
    -- the only parts of the driven :class:`MemoryController` the figure
    needs, in a form a sweep worker can ship back to the parent.
    """
    controller = _drive_controller(
        with_control_plane, rate_req_per_cycle, num_requests, seed,
        row_hit_fraction, hp_row_buffer=hp_row_buffer, telemetry=telemetry,
    )
    if telemetry is not None:
        telemetry.snapshot(controller.engine.now)
    return {
        "mean": {
            priority: recorder.mean
            for priority, recorder in enumerate(controller.queue_delay)
        },
        "cdf": {
            priority: recorder.cdf(points=range(0, 101, 2))
            for priority, recorder in enumerate(controller.queue_delay)
        },
    }


def measure_saturation_rate(
    num_requests: int = 4000, seed: int = 7, row_hit_fraction: float = 0.5
) -> float:
    """The baseline controller's saturation throughput (requests/cycle)."""
    controller = _drive_controller(
        False, None, num_requests, seed, row_hit_fraction, hp_row_buffer=False
    )
    cycles = controller.engine.now / DRAM_CLOCK_PS
    return num_requests / cycles


def run_fig11(
    inject_rate: float = 0.75,
    num_requests: int = 6000,
    seed: int = 7,
    row_hit_fraction: float = 0.5,
    hp_row_buffer: bool = False,
    telemetry=None,
    jobs: int = 1,
) -> QueueingResult:
    """Fig. 11: queueing delay CDF at a given bandwidth utilization.

    A synthetic injector (the FPGA microbenchmark's role) drives the
    memory controller at ``inject_rate`` of its *measured* saturation
    bandwidth with half high-priority, half low-priority requests,
    against both the baseline controller (no control plane: one queue)
    and the PARD controller (priority queues; optionally also the extra
    high-priority row buffer).

    The default utilization of 0.75 is the operating point where this
    model's baseline mean queueing delay matches the paper's reported
    15.2 cycles; the paper quotes its own inject rate as 0.44 of its
    RTL's peak (see EXPERIMENTS.md for the calibration discussion).
    """
    if not 0 < inject_rate < 1:
        raise ValueError("inject_rate must be a fraction of peak bandwidth")
    from repro.runner.sweep import SweepPoint, run_sweep

    saturation = measure_saturation_rate(
        num_requests=min(num_requests, 4000), seed=seed,
        row_hit_fraction=row_hit_fraction,
    )
    rate = inject_rate * saturation
    common = {
        "rate_req_per_cycle": rate,
        "num_requests": num_requests,
        "row_hit_fraction": row_hit_fraction,
    }
    points = [
        SweepPoint(
            index=0, builder="fig11_controller",
            params={**common, "with_control_plane": False,
                    "hp_row_buffer": False},
            seed=seed, label="fig11-baseline",
        ),
        SweepPoint(
            index=1, builder="fig11_controller",
            params={**common, "with_control_plane": True,
                    "hp_row_buffer": hp_row_buffer},
            seed=seed, label="fig11-pard",
        ),
    ]
    sweep = run_sweep(points, jobs=jobs, telemetry=telemetry)
    sweep.raise_on_failure()
    baseline, pard = sweep.values()
    return QueueingResult(
        baseline_mean_cycles=baseline["mean"][0],
        high_priority_mean_cycles=pard["mean"][1],
        low_priority_mean_cycles=pard["mean"][0],
        baseline_cdf=baseline["cdf"][0],
        high_cdf=pard["cdf"][1],
        low_cdf=pard["cdf"][0],
    )
