"""The assembled PARD server.

Builds the Fig. 2 machine: tagged cores behind private L1s, a shared LLC
with its control plane, a DDR3 memory controller with its control plane,
an I/O bridge / IDE / NIC with theirs, a per-DS-id APIC, and the PRM
firmware wired to every control plane through CPA register files.

The paper's baselines fall out of policy, not structure: a "conventional
shared server" is this machine with every LDom left at the default
share-everything parameters, and "solo" launches only one LDom.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.cache import Cache, CacheConfig
from repro.cache.control_plane import LlcControlPlane
from repro.cpu.core import CpuCore
from repro.dram.control_plane import MemoryControlPlane
from repro.dram.controller import MemoryController
from repro.dram.multichannel import MultiChannelMemory
from repro.icn.crossbar import Crossbar
from repro.io.apic import Apic
from repro.io.bridge import IoBridge, IoBridgeControlPlane
from repro.io.disk import IdeControlPlane, IdeController
from repro.io.nic import MultiQueueNic, NicControlPlane
from repro.prm.firmware import Firmware, HardwareInventory
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine, make_engine
from repro.sim.trace import NULL_TRACER, Tracer
from repro.system.config import ServerConfig, TABLE2


class PardServer:
    """A four-core PARD server (Table 2 defaults)."""

    def __init__(
        self,
        config: ServerConfig = TABLE2,
        engine: Optional[Engine] = None,
        tracer: Tracer = NULL_TRACER,
        engine_kind: str = "calendar",
        telemetry=None,
    ):
        self.config = config
        if engine is None and telemetry is not None and telemetry.profile_engine:
            # Importing the profiler registers the "profiled" engine kind.
            from repro.telemetry.profiler import ProfiledEngine  # noqa: F401

            engine_kind = "profiled"
        self.engine = engine or make_engine(engine_kind)
        self.tracer = tracer
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        telemetry = self.telemetry
        engine = self.engine
        if telemetry is not None:
            telemetry.registry.gauge_fn(
                "engine.executed_total", lambda: self.engine.executed_total
            )
            telemetry.registry.gauge_fn(
                "engine.pending_events", lambda: self.engine.pending_events
            )

        self.cpu_clock = ClockDomain(engine, config.cpu_period_ps, "cpu")
        self.dram_clock = ClockDomain(engine, config.dram_period_ps, "dram")

        # Control planes (the grey boxes of Fig. 2).
        plane_kwargs = dict(
            max_entries=config.max_table_entries,
            max_triggers=config.max_triggers,
            window_ps=config.control_window_ps,
            tracer=tracer,
        )
        self.llc_control = LlcControlPlane(
            engine, num_ways=config.llc_ways, **plane_kwargs
        )
        self.memory_control = MemoryControlPlane(engine, **plane_kwargs)
        self.ide_control = IdeControlPlane(engine, **plane_kwargs)
        self.bridge_control = IoBridgeControlPlane(engine, **plane_kwargs)

        # Memory hierarchy: one controller (Table 2), or an interleaved
        # multi-channel organization when configured.
        if config.memory_channels == 1:
            self.memory_controller = MemoryController(
                engine, self.dram_clock,
                timing=config.dram_timing, geometry=config.dram_geometry,
                control=self.memory_control, tracer=tracer, telemetry=telemetry,
            )
        else:
            self.memory_controller = MultiChannelMemory(
                engine, self.dram_clock, channels=config.memory_channels,
                timing=config.dram_timing, geometry=config.dram_geometry,
                control=self.memory_control, tracer=tracer, telemetry=telemetry,
            )
        llc_config = CacheConfig(
            name="llc",
            size_bytes=config.llc_size_bytes,
            ways=config.llc_ways,
            hit_latency_cycles=config.llc_hit_cycles,
            mshr_entries=config.llc_mshrs,
        )
        self.llc = Cache(
            engine, self.cpu_clock, llc_config, self.memory_controller,
            control=self.llc_control, tracer=tracer, telemetry=telemetry,
        )
        # Optional explicit crossbar hop between the private L1s and the
        # shared LLC (the T1-style fabric of Fig. 1).
        if config.icn_crossbar:
            self.crossbar = Crossbar(
                engine, self.llc,
                traversal_ps=config.crossbar_traversal_ps, tracer=tracer,
                telemetry=telemetry,
            )
            l1_downstream = self.crossbar
        else:
            self.crossbar = None
            l1_downstream = self.llc

        # I/O.
        self.apic = Apic(engine, tracer=tracer, telemetry=telemetry)
        self.ide = IdeController(
            engine, control=self.ide_control, memory=self.memory_controller,
            apic=self.apic,
            total_bandwidth_bytes_per_s=config.disk_bandwidth_bytes_per_s,
            chunk_bytes=config.disk_chunk_bytes, tracer=tracer,
            telemetry=telemetry,
        )
        self.nic = MultiQueueNic(
            engine, memory=self.memory_controller, apic=self.apic,
            control=NicControlPlane(engine, **plane_kwargs), tracer=tracer,
            telemetry=telemetry,
        )
        self.bridge = IoBridge(
            engine, control=self.bridge_control, tracer=tracer, telemetry=telemetry
        )
        self.bridge.attach_device("ide0", self.ide)

        # Cores behind private L1s.
        self.l1s: list[Cache] = []
        self.cores: list[CpuCore] = []
        for core_id in range(config.num_cores):
            l1_config = CacheConfig(
                name=f"l1d{core_id}",
                size_bytes=config.l1_size_bytes,
                ways=config.l1_ways,
                hit_latency_cycles=config.l1_hit_cycles,
            )
            l1 = Cache(
                engine, self.cpu_clock, l1_config, l1_downstream, tracer=tracer,
                telemetry=telemetry,
            )
            core = CpuCore(
                engine, self.cpu_clock, core_id, l1, io_port=self.bridge,
                telemetry=telemetry,
            )
            self.apic.register_core(core_id, lambda pkt, c=core: c.wake())
            self.l1s.append(l1)
            self.cores.append(core)

        # The PRM and its firmware.
        self.control_planes = [
            self.llc_control,
            self.memory_control,
            self.ide_control,
            self.bridge_control,
        ]
        inventory = HardwareInventory(
            control_planes=self.control_planes,
            cores=self.cores,
            apic=self.apic,
            caches=[self.llc] + self.l1s,
            memory_capacity_bytes=config.dram_geometry.capacity_bytes,
        )
        self.firmware = Firmware(
            engine, inventory,
            reaction_latency_ps=config.firmware_reaction_ps,
            tracer=tracer,
            telemetry=telemetry,
        )

    # -- operation ----------------------------------------------------------

    def start(self) -> None:
        """Begin control-plane statistics windows (call before running)."""
        for plane in self.control_planes:
            plane.start_windows()
        self.nic.control.start_windows()
        if self.telemetry is not None:
            self.telemetry.start_periodic_snapshots(self.engine)

    def run_ms(self, milliseconds: float) -> int:
        """Advance the machine; returns the number of events executed."""
        return self.engine.run_for(int(milliseconds * 1_000_000_000))

    # -- measurement -----------------------------------------------------------

    def cpu_utilization(self) -> float:
        """Fraction of cores currently running work (the paper's server
        CPU-utilization metric: busy cores / total cores)."""
        busy = sum(1 for core in self.cores if core.is_busy)
        return busy / len(self.cores)

    def llc_occupancy_bytes(self, ds_id: int) -> int:
        return self.llc_control.occupancy_bytes(ds_id)
