"""``python -m repro.analysis`` entry point: the simulation-safety linter."""

import sys

from repro.analysis.lint.cli import main

sys.exit(main())
