"""Analysis tooling: result reporting helpers and the static linter.

Two halves share this package: the series/table helpers experiments and
benchmarks print with, and :mod:`repro.analysis.lint`, the AST-based
simulation-safety linter (run it as ``python -m repro.analysis``).
"""

from repro.analysis.series import ascii_sparkline, downsample, share_of_total
from repro.analysis.tables import format_table

__all__ = ["ascii_sparkline", "downsample", "format_table", "share_of_total"]
