"""Analysis and reporting helpers used by experiments and benchmarks."""

from repro.analysis.series import ascii_sparkline, downsample, share_of_total
from repro.analysis.tables import format_table

__all__ = ["ascii_sparkline", "downsample", "format_table", "share_of_total"]
