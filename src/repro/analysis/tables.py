"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; floats print with two
    decimals unless they are integral.
    """
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_numeric(row[i]) for row in rendered_rows) if rendered_rows else False
        for i in range(columns)
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i] and _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * w for w in widths)
    lines = [fmt_line(headers), separator]
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return str(int(cell))
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    try:
        float(text.replace("%", "").replace("x", ""))
        return True
    except ValueError:
        return False
