"""The ``python -m repro.analysis`` / ``repro-lint`` command line.

With no paths, lints the whole repo: ``src/repro`` under the strict
``sim`` profile and ``tests``/``benchmarks`` under the looser ``tests``
profile. Explicit paths use ``--profile`` (default ``sim``).

Exit status: 0 clean; 1 findings (any active finding with ``--strict``,
ERROR-severity otherwise); 2 usage errors. The baseline file
(``lint-baseline.json``) is honored when present and regenerated with
``--write-baseline``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.lint.engine import LintTarget, default_targets, run_lint
from repro.analysis.lint.registry import all_rules, get_profile, rule_examples
from repro.analysis.lint.reporters import render_json_text, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="simulation-safety linter: determinism, event-model, "
                    "telemetry and sweep-runner invariants",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: src/repro "
                             "strictly, tests+benchmarks loosely)")
    parser.add_argument("--profile", default="sim",
                        help="rule profile for explicit paths (sim|tests)")
    parser.add_argument("--root", default=".",
                        help="repo root findings are reported relative to")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format on stdout")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="additionally write the JSON report to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} "
                             f"under --root when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline to cover current findings "
                             "and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="fail on any new finding, not just errors "
                             "(baselined/suppressed still pass)")
    parser.add_argument("--verbose", action="store_true",
                        help="also print baselined and suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _print_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id}  {rule.severity.label:7s}  {rule.title}")
        examples = rule_examples(rule)
        if "bad" not in examples or "good" not in examples:
            print("  (missing Bad::/Good:: examples)")
    return 0


def _baseline_path(args) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    candidate = Path(args.root) / DEFAULT_BASELINE_NAME
    return candidate if candidate.exists() or args.write_baseline else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _print_rules()
    try:
        get_profile(args.profile)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.paths:
        targets = [LintTarget(path, args.profile) for path in args.paths]
    else:
        targets = default_targets(args.root)
        if not targets:
            print(f"nothing to lint under {args.root!r}", file=sys.stderr)
            return 2

    baseline_path = _baseline_path(args)
    if args.write_baseline:
        # Lint without the old baseline applied, then cover everything.
        previous = Baseline.load_or_empty(baseline_path)
        result = run_lint(targets, root=args.root, baseline=None)
        fresh = Baseline.from_findings(result.findings, previous=previous)
        written = fresh.dump(baseline_path or
                             Path(args.root) / DEFAULT_BASELINE_NAME)
        print(f"baseline: {written} entries covering "
              f"{sum(fresh.entries.values())} findings")
        return 0

    baseline = Baseline.load_or_empty(baseline_path)
    result = run_lint(targets, root=args.root, baseline=baseline)

    if args.format == "json":
        sys.stdout.write(render_json_text(result, strict=args.strict))
    else:
        sys.stdout.write(render_text(result, verbose=args.verbose))
    if args.json_out:
        Path(args.json_out).write_text(
            render_json_text(result, strict=args.strict), encoding="utf-8"
        )
    return 1 if result.failed(args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
