"""The lint engine: file walking, parsing, suppression and rule dispatch.

Files are visited in sorted posix-path order and every collection the
engine touches is sorted before iteration, so two runs over the same
tree produce byte-identical reports — the linter holds itself to the
same determinism bar it enforces.

Suppressions are ordinary comments::

    t0 = time.perf_counter_ns()  # simlint: disable=DET001 -- profiler

A comment on its own line covers the next source line; an inline
comment covers its own line; ``# simlint: disable`` with no rule list
covers every rule. Text after ``--`` is a free-form justification.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.findings import Finding, LintResult, Severity
from repro.analysis.lint.registry import Profile, get_profile, rules_for

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<rules>[A-Z0-9_,\s]+))?"
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class ModuleContext:
    """One parsed source file plus the derived maps the rules consume."""

    def __init__(self, path: str, source: str, profile: Profile):
        self.path = path
        self.source = source
        self.profile = profile
        self.tree = ast.parse(source)
        self._scopes: dict[int, str] = {}
        self._imports: dict[str, str] = {}
        self._build_scopes(self.tree, "<module>")
        self._build_imports()
        self.suppressions = _parse_suppressions(source)

    # -- scopes --------------------------------------------------------------

    def _build_scopes(self, node: ast.AST, enclosing: str) -> None:
        # A def/class node itself belongs to its *enclosing* scope (its
        # own body gets the inner qualname), so a finding anchored at a
        # nested def is attributed to the function that contains it.
        self._scopes[id(node)] = enclosing
        inner = enclosing
        if isinstance(node, _SCOPE_NODES):
            inner = node.name if enclosing == "<module>" \
                else f"{enclosing}.{node.name}"
        for child in ast.iter_child_nodes(node):
            self._build_scopes(child, inner)

    def scope_of(self, node: ast.AST) -> str:
        return self._scopes.get(id(node), "<module>")

    # -- imports -------------------------------------------------------------

    def _build_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self._imports[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._imports[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, through import aliases.

        ``from time import perf_counter as pc`` makes a bare ``pc``
        resolve to ``time.perf_counter``; ``time.time`` resolves to
        itself. Returns None for anything that is not a plain chain.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self._imports.get(node.id, node.id))
        return ".".join(reversed(parts))


def _parse_suppressions(source: str) -> dict[int, Optional[frozenset[str]]]:
    """Map line number -> suppressed rule ids (None means *all* rules)."""
    out: dict[int, Optional[frozenset[str]]] = {}
    code_lines: set[int] = set()
    comment_tokens: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comment_tokens.append((tok.start[0], tok.string))
            elif tok.type not in (
                tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                tokenize.DEDENT, tokenize.ENDMARKER, tokenize.ENCODING,
            ):
                code_lines.add(tok.start[0])
    except tokenize.TokenError:
        return out
    ordered_code = sorted(code_lines)
    for line, text in comment_tokens:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        raw = match.group("rules")
        rules = None if raw is None else frozenset(
            part.strip() for part in raw.split(",") if part.strip()
        )
        # An inline comment covers its own line; a standalone one covers
        # the next code line (so a multi-line justification comment
        # block above the statement still attaches to it).
        if line in code_lines:
            target = line
        else:
            idx = bisect_right(ordered_code, line)
            if idx == len(ordered_code):
                continue
            target = ordered_code[idx]
        existing = out.get(target, frozenset())
        if rules is None or existing is None:
            out[target] = None
        else:
            out[target] = existing | rules
    return out


def _is_suppressed(finding: Finding,
                   suppressions: dict[int, Optional[frozenset[str]]]) -> bool:
    rules = suppressions.get(finding.line, frozenset())
    return rules is None or finding.rule in rules


# -- file walking ------------------------------------------------------------


def iter_python_files(path: Path, root: Path) -> list[tuple[Path, str]]:
    """``(absolute, display)`` pairs in sorted display-path order."""
    if path.is_file():
        files = [path]
    else:
        files = [p for p in path.rglob("*.py") if "__pycache__" not in p.parts]
    pairs = []
    for p in files:
        try:
            display = p.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            display = p.as_posix()
        pairs.append((p, display))
    return sorted(pairs, key=lambda pair: pair[1])


def lint_source(source: str, *, path: str = "snippet.py",
                profile: str | Profile = "sim") -> list[Finding]:
    """Lint a source string (the test suite's entry point for fixtures)."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    return _lint_module(path, source, prof)


def _lint_module(path: str, source: str, profile: Profile) -> list[Finding]:
    try:
        module = ModuleContext(path, source, profile)
    except SyntaxError as exc:
        return [Finding(
            rule="PARSE", severity=Severity.ERROR, path=path,
            line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            message=f"could not parse: {exc.msg}",
        )]
    findings: list[Finding] = []
    for rule in rules_for(profile):
        if not profile.applies(rule.id, path):
            continue
        for finding in rule.check(module):
            finding.suppressed = _is_suppressed(finding, module.suppressions)
            findings.append(finding)
    return findings


@dataclass(frozen=True)
class LintTarget:
    """One path to lint under one profile."""

    path: str
    profile: str


def run_lint(targets: Sequence[LintTarget], *, root: Path | str = ".",
             baseline: Optional[Baseline] = None) -> LintResult:
    """Lint every target, apply the baseline, return a sorted result."""
    root_path = Path(root)
    result = LintResult()
    seen: set[str] = set()
    profiles: list[str] = []
    for target in targets:
        profile = get_profile(target.profile)
        if profile.name not in profiles:
            profiles.append(profile.name)
        base = Path(target.path)
        if not base.is_absolute():
            base = root_path / base
        for abs_path, display in iter_python_files(base, root_path):
            if display in seen:
                continue
            seen.add(display)
            result.files += 1
            source = abs_path.read_text(encoding="utf-8")
            result.findings.extend(_lint_module(display, source, profile))
    result.findings.sort(key=Finding.sort_key)
    result.profiles = profiles
    if baseline is not None:
        baseline.apply(result.findings)
    return result


DEFAULT_TARGETS = (
    LintTarget("src/repro", "sim"),
    LintTarget("tests", "tests"),
    LintTarget("benchmarks", "tests"),
)


def default_targets(root: Path | str = ".") -> list[LintTarget]:
    """The repo-wide target set, skipping directories that do not exist."""
    root_path = Path(root)
    return [t for t in DEFAULT_TARGETS if (root_path / t.path).exists()]


def iter_errors(findings: Iterable[Finding]) -> list[Finding]:
    return [f for f in findings if f.active and f.severity >= Severity.ERROR]
