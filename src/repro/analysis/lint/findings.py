"""Finding and severity types shared by the lint engine, rules and reporters.

A :class:`Finding` is one rule violation at one source location. Findings
carry two orthogonal "quieted" flags: *suppressed* (an inline
``# simlint: disable=RULE`` comment covers the line) and *baselined*
(the finding is grandfathered by the checked-in baseline file). A
finding that is neither is **active** and is what makes the linter exit
nonzero.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered severities; ``--strict`` fails on any, default on ERROR."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        return cls[label.upper()]


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str  # posix-style path relative to the lint root
    line: int
    col: int
    message: str
    scope: str = "<module>"  # enclosing qualname; part of the baseline key
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        return not (self.suppressed or self.baselined)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used by the baseline file.

        ``(rule, path, scope)`` survives unrelated edits that shift line
        numbers; the baseline grandfathers *counts* per fingerprint.
        """
        return (self.rule, self.path, self.scope)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "message": self.message,
        }


@dataclass
class LintResult:
    """Everything one lint run produced, pre-sorted for reproducible output."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    profiles: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    def counts(self) -> dict[str, int]:
        active = self.active
        return {
            "files": self.files,
            "active": len(active),
            "errors": sum(1 for f in active if f.severity >= Severity.ERROR),
            "warnings": sum(1 for f in active if f.severity == Severity.WARNING),
            "baselined": len(self.baselined),
            "suppressed": len(self.suppressed),
        }

    def failed(self, strict: bool) -> bool:
        """Should this run exit nonzero?"""
        if strict:
            return bool(self.active)
        return any(f.severity >= Severity.ERROR for f in self.active)
