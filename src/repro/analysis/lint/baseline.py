"""Checked-in baseline of grandfathered findings.

A baseline entry is ``(rule, path, scope) -> count``: up to ``count``
findings with that fingerprint are marked ``baselined`` (oldest first
by line number) instead of failing the run. Keying on the enclosing
scope rather than the line number keeps the baseline stable across
unrelated edits that shift lines.

The file is JSON with sorted keys so regeneration is diff-friendly::

    {"version": 1, "entries": [
        {"rule": "DET001", "path": "src/repro/x.py",
         "scope": "Frob.tick", "count": 1,
         "note": "tracking: issue #42"}]}

``note`` is free-form and preserved across rewrites of unchanged
entries — it is where the tracking comment for an unfixable finding
lives.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class Baseline:
    """Fingerprint -> allowed count, with optional per-entry notes."""

    def __init__(self, entries: Optional[dict[tuple[str, str, str], int]] = None,
                 notes: Optional[dict[tuple[str, str, str], str]] = None):
        self.entries = dict(entries or {})
        self.notes = dict(notes or {})

    # -- I/O -----------------------------------------------------------------

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version {raw.get('version')!r}"
            )
        entries: dict[tuple[str, str, str], int] = {}
        notes: dict[tuple[str, str, str], str] = {}
        for entry in raw.get("entries", []):
            key = (entry["rule"], entry["path"], entry.get("scope", "<module>"))
            entries[key] = int(entry.get("count", 1))
            if entry.get("note"):
                notes[key] = entry["note"]
        return cls(entries, notes)

    @classmethod
    def load_or_empty(cls, path: Path | str | None) -> "Baseline":
        if path is not None and Path(path).exists():
            return cls.load(path)
        return cls()

    def dump(self, path: Path | str) -> int:
        """Write the baseline; returns the number of entries."""
        rows = [
            {
                "rule": rule, "path": fpath, "scope": scope,
                "count": self.entries[(rule, fpath, scope)],
                **({"note": self.notes[(rule, fpath, scope)]}
                   if (rule, fpath, scope) in self.notes else {}),
            }
            for (rule, fpath, scope) in sorted(self.entries)
        ]
        payload = {"version": BASELINE_VERSION, "entries": rows}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return len(rows)

    # -- application ---------------------------------------------------------

    def apply(self, findings: Iterable[Finding]) -> None:
        """Mark up to ``count`` findings per fingerprint as baselined.

        Findings must already be sorted (the engine sorts by location),
        so "which ones are grandfathered" is deterministic.
        """
        budget = dict(self.entries)
        for finding in findings:
            if finding.suppressed:
                continue
            key = finding.fingerprint()
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                finding.baselined = True

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      previous: Optional["Baseline"] = None) -> "Baseline":
        """A baseline covering every non-suppressed finding.

        Notes from ``previous`` are carried over for fingerprints that
        are still present.
        """
        entries: dict[tuple[str, str, str], int] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            key = finding.fingerprint()
            entries[key] = entries.get(key, 0) + 1
        notes = {
            key: note for key, note in (previous.notes if previous else {}).items()
            if key in entries
        }
        return cls(entries, notes)

    def __len__(self) -> int:
        return len(self.entries)
