"""Rule base class, rule registry and lint profiles.

Every rule is a class with a stable id (``DET001``), a default
severity, and a docstring that doubles as its documentation *and* its
test fixture: the docstring must contain a ``Bad::`` and a ``Good::``
literal block, and the test suite lints both — the bad snippet must
trip the rule, the good one must not. :func:`rule_examples` is the
shared extractor.

Profiles decide which rules run where. The strict ``sim`` profile (all
rules, used on ``src/repro``) carries per-rule path exemptions for the
few modules whose *job* is the hazard (the engine owns the raw event
queue, ``sim.rng`` owns ``random``, the runner measures wall-clock).
The looser ``tests`` profile drops the determinism/telemetry rules that
test and benchmark code legitimately violates (benchmarks time things;
tests poke module state) while keeping the structural ones.
"""

from __future__ import annotations

import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.lint.findings import Finding, Severity

_RULES: dict[str, "Rule"] = {}


class Rule:
    """One static check. Subclasses set ``id``/``severity``/``title``
    and implement :meth:`check` yielding findings via :meth:`finding`."""

    id: str = ""
    severity: Severity = Severity.ERROR
    title: str = ""

    def check(self, module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module, node, message: str,
                severity: Severity | None = None) -> Finding:
        """Build a finding anchored at ``node`` inside ``module``."""
        return Finding(
            rule=self.id,
            severity=self.severity if severity is None else severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            scope=module.scope_of(node),
        )


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and index the rule by id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return cls


def _ensure_rules_loaded() -> None:
    # Deferred so the registry module stays import-light; the rules
    # package imports this module for the decorator.
    if not _RULES:
        import repro.analysis.lint.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (the iteration order contract)."""
    _ensure_rules_loaded()
    return [_RULES[rid] for rid in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    return _RULES[rule_id]


def rule_examples(rule: Rule) -> dict[str, str]:
    """Extract the ``Bad::`` / ``Good::`` snippets from a rule docstring.

    Each marker introduces one indented literal block; the block ends at
    the first line that is non-empty and not indented past the marker.
    """
    doc = inspect.cleandoc(rule.__doc__ or "")
    lines = doc.splitlines()
    out: dict[str, str] = {}
    for marker, key in (("Bad::", "bad"), ("Good::", "good")):
        try:
            start = next(i for i, ln in enumerate(lines) if ln.strip() == marker)
        except StopIteration:
            continue
        block: list[str] = []
        for ln in lines[start + 1:]:
            if ln.strip() == "":
                block.append("")
            elif ln.startswith((" ", "\t")):
                block.append(ln)
            else:
                break
        out[key] = textwrap.dedent("\n".join(block)).strip("\n") + "\n"
    return out


@dataclass(frozen=True)
class Profile:
    """Which rules run, and where individual rules are path-exempt."""

    name: str
    rules: tuple[str, ...]  # rule ids, sorted
    # rule id -> posix-path substrings where the rule does not apply
    exemptions: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def applies(self, rule_id: str, path: str) -> bool:
        if rule_id not in self.rules:
            return False
        for fragment in self.exemptions.get(rule_id, ()):
            if fragment in path:
                return False
        return True


_ALL_RULE_IDS = (
    "DET001", "DET002", "DET003", "DET004",
    "EVT001", "EVT002", "EVT003",
    "TEL001", "TEL002",
    "RUN001", "RUN002",
    "EXC001",
)

PROFILES: dict[str, Profile] = {
    # Full rule pack for simulated/runtime code under src/repro.
    "sim": Profile(
        name="sim",
        rules=_ALL_RULE_IDS,
        exemptions={
            # The runner measures wall-clock durations by design; the
            # issue's determinism contract covers *simulated* code only.
            "DET001": ("repro/runner/",),
            # sim.rng is the one sanctioned wrapper around ``random``.
            "DET002": ("repro/sim/rng.py",),
            # The engine module *is* the event queue implementation.
            "EVT003": ("repro/sim/engine.py",),
        },
    ),
    # Looser pack for tests/ and benchmarks/: timing and module-state
    # tricks are legitimate there, but the structural event-model and
    # exception-hygiene rules still hold.
    "tests": Profile(
        name="tests",
        rules=("DET003", "EVT001", "EVT002", "EVT003", "RUN001", "EXC001"),
        exemptions={},
    ),
}


def get_profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown lint profile {name!r}; known: {known}") from None


def rules_for(profile: Profile) -> list[Rule]:
    return [r for r in all_rules() if r.id in profile.rules]


def describe_rules(rules: Iterable[Rule]) -> list[dict]:
    """Stable rule-catalogue rows for ``--list-rules`` and the JSON report."""
    return [
        {"id": r.id, "severity": r.severity.label, "title": r.title}
        for r in rules
    ]
