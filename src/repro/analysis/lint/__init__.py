"""``repro.analysis.lint`` — AST-based simulation-safety linter.

A from-scratch, stdlib-only static-analysis framework enforcing the
invariants the reproduction's guarantees rest on: no wall-clock or
process-global randomness in simulated code (DET), event scheduling
only through the engine (EVT), telemetry that observes without
perturbing (TEL), picklable pure sweep builders (RUN) and exception
hygiene (EXC).

Entry points: ``python -m repro.analysis``, the ``repro-lint`` console
script, ``repro lint`` and the :func:`repro.analysis.lint.gate.lint_gate`
pre-flight used by ``repro all --lint-gate``.
"""

from repro.analysis.lint.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.lint.engine import (
    LintTarget,
    default_targets,
    lint_source,
    run_lint,
)
from repro.analysis.lint.findings import Finding, LintResult, Severity
from repro.analysis.lint.gate import check_tree, lint_gate
from repro.analysis.lint.registry import (
    PROFILES,
    Profile,
    Rule,
    all_rules,
    get_profile,
    get_rule,
    register_rule,
    rule_examples,
)
from repro.analysis.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintResult",
    "LintTarget",
    "PROFILES",
    "Profile",
    "Rule",
    "Severity",
    "all_rules",
    "check_tree",
    "default_targets",
    "get_profile",
    "get_rule",
    "lint_gate",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "rule_examples",
    "run_lint",
]
