"""EVT rules: the discrete-event contract.

Components interact with simulated time only through the engine
(``post``/``schedule``), must not block the single dispatch thread, and
must treat a packet as frozen once it has been handed downstream (the
receiver may run arbitrarily later but sees the object by reference).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Severity
from repro.analysis.lint.registry import Rule, register_rule
from repro.analysis.lint.rules._util import component_classes, walk_in_order

_BLOCKING_EXACT = frozenset({"time.sleep", "input", "open"})
_BLOCKING_PREFIXES = (
    "socket.", "subprocess.", "requests.", "urllib.request.", "http.client.",
)

# Calls that hand a packet to another component or to the future.
_HANDOFF_ATTRS = frozenset({
    "post", "post_at", "schedule", "handle_request", "access", "forward",
    "send",
})

_QUEUE_NAME_HINTS = ("queue", "event", "pending")


@register_rule
class BlockingIoInHandlerRule(Rule):
    """Component code runs on the engine's single dispatch thread; a
    blocking call (sleep, file/socket/process I/O) stalls *all*
    simulated time, and host-I/O latency leaks into none of the
    simulated clocks. Model delays with ``post_cycles`` instead.

    Bad::

        import time
        from repro.sim.component import Component

        class SlowNic(Component):
            def handle_request(self, packet, on_response):
                time.sleep(0.001)
                on_response(packet)

    Good::

        from repro.sim.component import Component

        class SlowNic(Component):
            def handle_request(self, packet, on_response):
                self.post_cycles(10, lambda: on_response(packet))
    """

    id = "EVT001"
    severity = Severity.ERROR
    title = "blocking call inside a Component"

    def check(self, module) -> Iterator:
        for klass in component_classes(module):
            for node in ast.walk(klass):
                if not isinstance(node, ast.Call):
                    continue
                resolved = module.resolve(node.func)
                if resolved is None:
                    continue
                if resolved in _BLOCKING_EXACT or resolved.startswith(
                    _BLOCKING_PREFIXES
                ):
                    yield self.finding(
                        module, node,
                        f"{resolved} blocks the dispatch thread inside "
                        f"Component {klass.name}; model latency via "
                        f"post/post_cycles",
                    )


@register_rule
class MutateAfterHandoffRule(Rule):
    """Once a packet has been posted or forwarded, the downstream
    component owns it — it will observe the object *later* in simulated
    time but holds the same reference now, so mutating it afterwards
    rewrites history. Finish the packet before handing it off.

    (Heuristic: straight-line analysis within one function body; a
    handoff in one branch and a mutation in another can false-positive
    — suppress with a justification if the paths are exclusive.)

    Bad::

        from repro.sim.component import Component

        class Router(Component):
            def handle_request(self, packet, on_response):
                self.downstream.handle_request(packet, on_response)
                packet.hops = packet.hops + 1

    Good::

        from repro.sim.component import Component

        class Router(Component):
            def handle_request(self, packet, on_response):
                packet.hops = packet.hops + 1
                self.downstream.handle_request(packet, on_response)
    """

    id = "EVT002"
    severity = Severity.WARNING
    title = "packet mutated after being handed off"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module, func) -> Iterator:
        handed_off: dict[str, int] = {}
        for node in walk_in_order(func):
            if node is not func and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # nested defs run later; analyzed separately
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _HANDOFF_ATTRS:
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        handed_off.setdefault(arg.id, node.lineno)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and isinstance(
                        target.value, ast.Name
                    ) and target.value.id in handed_off:
                        name = target.value.id
                        yield self.finding(
                            module, target,
                            f"{name}.{target.attr} assigned after {name} was "
                            f"handed off (line {handed_off[name]}); the "
                            f"receiver sees the mutation",
                        )


@register_rule
class RawEventQueueRule(Rule):
    """All event scheduling must go through the engine: a private
    ``heapq`` (or sorting a queue list in place) bypasses the calendar
    queue's FIFO-within-timestamp ordering guarantee, so event order —
    and therefore every downstream digest — stops being reproducible.

    Bad::

        import heapq

        class PrivateQueue:
            def __init__(self):
                self.events = []

            def push(self, when_ps, callback):
                heapq.heappush(self.events, (when_ps, callback))

    Good::

        class EngineQueue:
            def __init__(self, engine):
                self.engine = engine

            def push(self, delay_ps, callback):
                self.engine.post(delay_ps, callback)
    """

    id = "EVT003"
    severity = Severity.ERROR
    title = "raw event queue bypassing the engine"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq":
                        yield self.finding(
                            module, node,
                            "heapq import: schedule through engine.post/"
                            "post_at, not a private heap",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "heapq":
                yield self.finding(
                    module, node,
                    "heapq import: schedule through engine.post/post_at, "
                    "not a private heap",
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr == "sort":
                target = node.func.value
                name = target.id if isinstance(target, ast.Name) else (
                    target.attr if isinstance(target, ast.Attribute) else None
                )
                if name and any(h in name.lower() for h in _QUEUE_NAME_HINTS):
                    yield self.finding(
                        module, node,
                        f"sorting {name!r} in place looks like manual event "
                        f"ordering; route through the engine instead",
                    )
