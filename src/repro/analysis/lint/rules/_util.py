"""Shared AST helpers for the rule pack."""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def is_set_expr(node: ast.AST, module) -> bool:
    """An expression whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = module.resolve(node.func)
        return resolved in ("set", "frozenset")
    return False


def call_attr(node: ast.Call) -> Optional[str]:
    """The trailing attribute name of a method-style call, if any."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def walk_in_order(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first traversal in source order (iter_child_nodes preserves
    field order, which matches source order for statement bodies)."""
    yield node
    for child in ast.iter_child_nodes(node):
        yield from walk_in_order(child)


def functions_in(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def component_classes(module) -> Iterator[ast.ClassDef]:
    """Classes that (syntactically) subclass ``Component``.

    Inheritance is resolved by name only — a direct base called
    ``Component`` or ``*.Component`` — which matches how this codebase
    derives hardware models directly from :class:`repro.sim.component.
    Component`. Deeper hierarchies need their own direct check or a
    suppression.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id == "Component":
                yield node
                break
            if isinstance(base, ast.Attribute) and base.attr == "Component":
                yield node
                break


def enclosing_handler(module, node: ast.AST) -> Optional[str]:
    """The handler-like function scope containing ``node``, if any.

    Handler-like means the per-event entry points this codebase uses:
    names starting with ``handle``, ``on_``, ``process``, ``tick`` or
    ``access`` — the paths that run once per packet/event.
    """
    scope = module.scope_of(node)
    for part in scope.split("."):
        if part.startswith(("handle", "_handle", "on_", "process", "tick",
                            "access")):
            return part
    return None
