"""EXC rules: exception hygiene.

A broad ``except`` in experiment code converts a determinism bug into a
silently wrong figure. Handlers must either name the exceptions they
expect, re-raise, or carry a suppression explaining why swallowing
everything is the design (worker failure capture, keep-going figure
loops).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Severity
from repro.analysis.lint.registry import Rule, register_rule

_BROAD = frozenset({"Exception", "BaseException"})


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain a bare ``raise``? (Catch-log-reraise
    is legitimate cleanup, not swallowing.)"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@register_rule
class BroadExceptRule(Rule):
    """Bare and broad excepts swallow determinism violations,
    ``KeyboardInterrupt`` (bare) and typos alike. Catch the exceptions
    the code can actually produce; if a keep-going loop genuinely needs
    breadth, re-raise or suppress with a justification.

    Bad::

        def run_figure(fn):
            try:
                return fn()
            except:
                return None

    Good::

        def run_figure(fn):
            try:
                return fn()
            except (ValueError, KeyError) as exc:
                report_failure(exc)
                return None
    """

    id = "EXC001"
    severity = Severity.WARNING
    title = "bare or broad except"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare except catches KeyboardInterrupt and SystemExit; "
                    "name the expected exceptions",
                    severity=Severity.ERROR,
                )
            elif isinstance(node.type, ast.Name) and node.type.id in _BROAD \
                    and not _reraises(node):
                yield self.finding(
                    module, node,
                    f"except {node.type.id} without re-raise swallows "
                    f"unexpected failures; narrow it or re-raise",
                )
