"""The initial rule pack. Importing this package registers every rule.

Modules group rules by hazard family: determinism (DET), event-model
(EVT), telemetry (TEL), sweep-runner (RUN) and exception hygiene (EXC).
"""

from repro.analysis.lint.rules import (  # noqa: F401
    determinism,
    event_model,
    exceptions,
    runner,
    telemetry,
)
