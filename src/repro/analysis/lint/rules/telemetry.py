"""TEL rules: telemetry must observe the simulation, never perturb it.

Instrument creation allocates and takes registry locks; it belongs in
``__init__``/mount-time code, not per-event handlers. Metric names
share one hierarchical namespace (``component.instance.stat``) that the
exporters, the sysfs mirror and the sweep merge all key on.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.findings import Severity
from repro.analysis.lint.registry import Rule, register_rule
from repro.analysis.lint.rules._util import enclosing_handler

_CREATION_ATTRS = frozenset({"counter", "gauge", "gauge_fn", "histogram"})

_SEGMENT_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _instrument_creation(node: ast.AST) -> Optional[ast.Call]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _CREATION_ATTRS:
        return node
    return None


def _bad_name_segments(name: str) -> Optional[str]:
    """Why ``name`` violates the convention, or None if it is fine."""
    if not name:
        return "empty name"
    if "." not in name:
        return "metric names are hierarchical: at least component.stat"
    if name.startswith(".") or name.endswith(".") or ".." in name:
        return "empty segment"
    for segment in name.split("."):
        if not set(segment) <= _SEGMENT_OK:
            return f"segment {segment!r} must be [a-z0-9_]"
    return None


@register_rule
class InstrumentCreationInHotPathRule(Rule):
    """``registry.counter(name)`` is get-or-create: calling it per event
    re-hashes the name and re-checks the type on every packet, and the
    first call inside a handler silently registers a new instrument
    mid-run (so early snapshots are missing it). Create instruments at
    construction/mount time and call ``.add()``/``.record()`` on the
    hot path.

    Bad::

        from repro.sim.component import Component

        class Nic(Component):
            def __init__(self, engine, name, registry):
                super().__init__(engine, name)
                self.registry = registry

            def handle_request(self, packet, on_response):
                self.registry.counter("nic.rx_packets").add(1)
                on_response(packet)

    Good::

        from repro.sim.component import Component

        class Nic(Component):
            def __init__(self, engine, name, registry):
                super().__init__(engine, name)
                self._rx = registry.counter("nic.rx_packets")

            def handle_request(self, packet, on_response):
                self._rx.add(1)
                on_response(packet)
    """

    id = "TEL001"
    severity = Severity.WARNING
    title = "instrument created on a per-event path"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            call = _instrument_creation(node)
            if call is None:
                continue
            handler = enclosing_handler(module, call)
            if handler is not None:
                yield self.finding(
                    module, call,
                    f"instrument created inside per-event path {handler}(); "
                    f"create it in __init__ and keep only .add()/.record() "
                    f"on the hot path",
                )


@register_rule
class MetricNamingRule(Rule):
    """Metric names are one shared hierarchy (``nic.eth0.rx_dropped``):
    lowercase ``[a-z0-9_]`` segments joined by dots, at least two
    segments deep. The exporters, ``/sys/telemetry`` and the sweep
    merge key on these strings, so a malformed name pollutes every
    consumer. (Only literal and f-string names are checked; dynamic
    names are out of static reach.)

    Bad::

        def attach(registry):
            return registry.counter("NIC RX Packets")

    Good::

        def attach(registry):
            return registry.counter("nic.rx_packets")
    """

    id = "TEL002"
    severity = Severity.WARNING
    title = "metric name violates the naming convention"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            call = _instrument_creation(node)
            if call is None or not call.args:
                continue
            arg = call.args[0]
            reason = self._check_name_arg(arg)
            if reason is not None:
                yield self.finding(
                    module, arg,
                    f"metric name: {reason} (convention: lowercase dotted "
                    f"component.instance.stat)",
                )

    def _check_name_arg(self, arg: ast.AST) -> Optional[str]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return _bad_name_segments(arg.value)
        if isinstance(arg, ast.JoinedStr):
            # Validate the constant fragments; interpolations are opaque
            # and stand in for exactly one well-formed segment chunk.
            for part in arg.values:
                if isinstance(part, ast.Constant) and isinstance(part.value, str):
                    if not set(part.value) <= (_SEGMENT_OK | {"."}):
                        return f"fragment {part.value!r} must be [a-z0-9_.]"
            return None
        return None
