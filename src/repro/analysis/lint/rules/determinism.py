"""DET rules: nothing in simulated code may depend on the host machine.

The repo's reproducibility guarantees (golden determinism digests,
serial-vs-parallel byte equality) hold only if simulated code never
reads wall-clock time, never draws from process-global randomness, and
never iterates hash-ordered containers on a path that feeds scheduling
or accumulation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Severity
from repro.analysis.lint.registry import Rule, register_rule
from repro.analysis.lint.rules._util import is_set_expr

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_GLOBAL_RNG_EXACT = frozenset({"os.urandom"})
_GLOBAL_RNG_PREFIXES = ("random.", "uuid.uuid", "secrets.")
_SEEDED_RNG = frozenset({"random.Random", "random.SystemRandom"})


@register_rule
class WallClockRule(Rule):
    """Simulated code must take time from ``engine.now``, never the host
    clock: a wall-clock read makes event timing depend on the machine
    running the simulation, which breaks byte-identical replay.

    Bad::

        import time

        def service_latency(started_ps):
            return time.time() - started_ps

    Good::

        def service_latency(engine, started_ps):
            return engine.now - started_ps
    """

    id = "DET001"
    severity = Severity.ERROR
    title = "wall-clock read in simulated code"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            resolved = module.resolve(node)
            if resolved in _WALL_CLOCK:
                yield self.finding(
                    module, node,
                    f"{resolved} reads the host clock; simulated code must "
                    f"use engine.now (wall-clock belongs in runner/ and "
                    f"benchmarks/)",
                )


@register_rule
class GlobalRandomnessRule(Rule):
    """All stochastic behaviour must flow from a named child stream of
    :class:`repro.sim.rng.DeterministicRng`; the process-global
    ``random`` module, ``os.urandom`` and ``uuid`` are unseeded (or
    seeded once, globally) and make runs irreproducible.

    Bad::

        import random

        def jitter_ps():
            return random.randint(0, 100)

    Good::

        def jitter_ps(rng):
            # rng is a DeterministicRng child stream, e.g. root.child("jitter")
            return rng.randint(0, 100)
    """

    id = "DET002"
    severity = Severity.ERROR
    title = "process-global randomness"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            resolved = module.resolve(node)
            if resolved is None or resolved in _SEEDED_RNG:
                continue
            if resolved in _GLOBAL_RNG_EXACT or resolved.startswith(
                _GLOBAL_RNG_PREFIXES
            ):
                yield self.finding(
                    module, node,
                    f"{resolved} is process-global randomness; draw from a "
                    f"named DeterministicRng child stream (repro.sim.rng) "
                    f"instead",
                )


@register_rule
class UnorderedIterationRule(Rule):
    """Iterating a set (or sorting by ``id()``) visits elements in
    hash order, which differs between interpreter runs — any scheduling
    or hashing decision derived from it is irreproducible. Wrap the
    iterable in ``sorted()`` with a value-based key.

    Bad::

        def drain(waiting):
            for name in {"dram", "llc", "nic"}:
                waiting.pop(name)

    Good::

        def drain(waiting):
            for name in sorted({"dram", "llc", "nic"}):
                waiting.pop(name)
    """

    id = "DET003"
    severity = Severity.ERROR
    title = "iteration order depends on hashing"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_set_expr(
                node.iter, module
            ):
                yield self.finding(
                    module, node.iter,
                    "iterating a set visits elements in hash order; wrap in "
                    "sorted() before using the order",
                )
            elif isinstance(node, ast.comprehension) and is_set_expr(
                node.iter, module
            ):
                yield self.finding(
                    module, node.iter,
                    "comprehension over a set runs in hash order; wrap in "
                    "sorted() before using the order",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_id_keys(module, node)

    def _check_id_keys(self, module, node: ast.Call) -> Iterator:
        resolved = module.resolve(node.func)
        name = resolved if resolved is not None else (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        if name == "hash" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Call) and module.resolve(arg.func) == "id":
                yield self.finding(
                    module, node,
                    "hash(id(...)) varies per process; hash a stable value "
                    "(name, index) instead",
                )
        if name in ("sorted", "sort", "min", "max") or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        ):
            for kw in node.keywords:
                if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                        and kw.value.id == "id":
                    yield self.finding(
                        module, kw.value,
                        "sorting by id() orders by memory address; key on a "
                        "stable attribute instead",
                    )


@register_rule
class UnorderedAccumulationRule(Rule):
    """Float addition is not associative: summing a hash-ordered
    iterable accumulates rounding error in a different order each run,
    so statistics derived from it are not byte-stable. Sum in sorted
    order (or use ``math.fsum``, which is order-independent).

    Bad::

        def total_latency(samples):
            return sum({s.latency_ps for s in samples})

    Good::

        def total_latency(samples):
            return sum(sorted(s.latency_ps for s in samples))
    """

    id = "DET004"
    severity = Severity.WARNING
    title = "float accumulation over an unordered iterable"

    def check(self, module) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.resolve(node.func) != "sum" or not node.args:
                continue
            arg = node.args[0]
            hazard = is_set_expr(arg, module) or (
                isinstance(arg, ast.GeneratorExp)
                and any(is_set_expr(gen.iter, module) for gen in arg.generators)
            )
            if hazard:
                yield self.finding(
                    module, node,
                    "sum() over a set accumulates floats in hash order; sum "
                    "in sorted order or use math.fsum",
                )
