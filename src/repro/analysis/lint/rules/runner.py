"""RUN rules: sweep builders must be pure, picklable point functions.

The parallel runner's serial-vs-parallel byte-equality guarantee holds
because a :class:`SweepPoint` travels to workers as (builder *name*,
params, seed) and the builder recomputes everything from that spec. A
builder that closes over locals cannot be resolved in a spawn-started
worker, and one that reads module-level mutable state gives different
answers depending on which process (and after how many other points)
it runs in.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Severity
from repro.analysis.lint.registry import Rule, register_rule

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "collections.defaultdict", "defaultdict",
    "collections.Counter", "Counter", "collections.OrderedDict",
    "OrderedDict", "collections.deque", "deque",
})


def _is_register_builder(node: ast.AST, module) -> bool:
    """Does this expression refer to ``register_builder``?"""
    resolved = module.resolve(node)
    return resolved is not None and (
        resolved == "register_builder"
        or resolved.endswith(".register_builder")
    )


def _registered_builders(module) -> Iterator[ast.FunctionDef]:
    """Functions decorated with ``@register_builder(...)`` (or bare)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if _is_register_builder(target, module):
                yield node
                break


@register_rule
class UnpicklableBuilderRule(Rule):
    """A builder registered as a lambda or inside another function is a
    closure: it pickles by qualified name, so a spawn-started worker
    (or any process that didn't execute the enclosing call) cannot
    resolve it, and whatever it captured is silently frozen. Register
    plain module-level functions and pass variation through
    ``point.params``.

    Bad::

        from repro.runner.registry import register_builder

        def make_builder(scale):
            @register_builder("scaled")
            def build(point, telemetry):
                return scale * point.params["x"]
            return build

    Good::

        from repro.runner.registry import register_builder

        @register_builder("scaled")
        def build(point, telemetry):
            return point.params["scale"] * point.params["x"]
    """

    id = "RUN001"
    severity = Severity.ERROR
    title = "sweep builder is a closure or lambda"

    def check(self, module) -> Iterator:
        # Lambdas handed straight to register_builder(name, fn) / (name)(fn).
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            direct = _is_register_builder(node.func, module)
            curried = isinstance(node.func, ast.Call) and _is_register_builder(
                node.func.func, module
            )
            if direct or curried:
                for arg in node.args:
                    if isinstance(arg, ast.Lambda):
                        yield self.finding(
                            module, arg,
                            "lambda registered as a sweep builder cannot be "
                            "pickled by name; use a module-level def",
                        )
        # Builders defined inside another function (closures).
        for func in _registered_builders(module):
            scope = module.scope_of(func)
            if scope != "<module>":
                yield self.finding(
                    module, func,
                    f"builder {func.name!r} is defined inside {scope}; "
                    f"workers resolve builders by name, so it must be "
                    f"module-level",
                )


@register_rule
class BuilderModuleStateRule(Rule):
    """Everything a point needs must arrive in its spec: a builder that
    reads module-level mutable state (or declares ``global``) computes
    different values depending on process history, which breaks the
    any-``--jobs`` byte-equality guarantee.

    Bad::

        from repro.runner.registry import register_builder

        RESULT_CACHE = {}

        @register_builder("cached")
        def build(point, telemetry):
            return RESULT_CACHE.get(point.index, 0)

    Good::

        from repro.runner.registry import register_builder

        @register_builder("pure")
        def build(point, telemetry):
            return point.params["value"]
    """

    id = "RUN002"
    severity = Severity.WARNING
    title = "sweep builder reads module-level mutable state"

    def check(self, module) -> Iterator:
        mutable = self._module_level_mutables(module)
        for func in _registered_builders(module):
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        module, node,
                        f"builder {func.name!r} declares global "
                        f"{', '.join(node.names)}; pass state through "
                        f"point.params",
                    )
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ) and node.id in mutable:
                    yield self.finding(
                        module, node,
                        f"builder {func.name!r} reads module-level mutable "
                        f"{node.id!r}; pass it through point.params",
                    )

    def _module_level_mutables(self, module) -> set[str]:
        names: set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            if not self._is_mutable_literal(value, module):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _is_mutable_literal(self, value: ast.AST, module) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            return module.resolve(value.func) in _MUTABLE_FACTORIES
        return False
