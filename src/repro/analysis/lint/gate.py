"""Pre-flight lint gate for long-running experiment sweeps.

``repro all --lint-gate`` (and ``REPRO_LINT_GATE=1`` under the
benchmark harness) refuses to launch hours of simulation from a tree
with ERROR-severity lint findings — exactly the class of bug (wall
clock, global randomness, raw queues) that would silently poison every
point of a sweep.

The gate prefers the repo layout (``src/repro`` under the root, with
the checked-in baseline); when the package is imported from an
installed location instead, it lints the package directory and skips
the baseline (paths would not match).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.lint.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.lint.engine import LintTarget, iter_errors, run_lint


def _repo_layout(root: Path) -> bool:
    return (root / "src" / "repro").is_dir()


def check_tree(root: Path | str = ".") -> list:
    """ERROR-severity active findings in the simulation sources."""
    root_path = Path(root)
    if _repo_layout(root_path):
        targets = [LintTarget("src/repro", "sim")]
        baseline = Baseline.load_or_empty(root_path / DEFAULT_BASELINE_NAME)
        result = run_lint(targets, root=root_path, baseline=baseline)
    else:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        targets = [LintTarget(str(package_root), "sim")]
        result = run_lint(targets, root=package_root.parent, baseline=None)
    return iter_errors(result.findings)


def lint_gate(root: Path | str = ".", *, stream=None) -> bool:
    """Run the gate; print any blockers; True means clear to run."""
    out = stream if stream is not None else sys.stderr
    errors = check_tree(root)
    if not errors:
        return True
    print("lint gate: refusing to run experiments; fix or baseline these "
          "ERROR findings first:", file=out)
    for finding in errors:
        print(f"  {finding.location}  {finding.rule}  {finding.message}",
              file=out)
    print(f"lint gate: {len(errors)} error(s); see `python -m repro.analysis`",
          file=out)
    return False
