"""Text and JSON reporters.

Both render from the engine's already-sorted findings and contain no
timestamps, absolute paths or environment-dependent values, so a report
is a pure function of the tree being linted — two consecutive runs are
byte-identical.
"""

from __future__ import annotations

import json

from repro.analysis.lint.findings import LintResult
from repro.analysis.lint.registry import describe_rules, get_profile, rules_for

JSON_REPORT_VERSION = 1


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """``path:line:col  SEV  RULE  message`` lines plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        if not finding.active and not verbose:
            continue
        tag = ""
        if finding.suppressed:
            tag = "  [suppressed]"
        elif finding.baselined:
            tag = "  [baselined]"
        lines.append(
            f"{finding.location}  {finding.severity.label:7s}  "
            f"{finding.rule}  {finding.message}{tag}"
        )
    counts = result.counts()
    lines.append(
        f"{counts['files']} files: {counts['active']} findings "
        f"({counts['errors']} errors, {counts['warnings']} warnings), "
        f"{counts['baselined']} baselined, {counts['suppressed']} suppressed"
    )
    return "\n".join(lines) + "\n"


def render_json(result: LintResult, *, strict: bool) -> dict:
    """The machine-readable report (schema checked by the test suite)."""
    rules: list[dict] = []
    seen: set[str] = set()
    for profile_name in result.profiles:
        for row in describe_rules(rules_for(get_profile(profile_name))):
            if row["id"] not in seen:
                seen.add(row["id"])
                rules.append(row)
    rules.sort(key=lambda row: row["id"])
    return {
        "version": JSON_REPORT_VERSION,
        "profiles": list(result.profiles),
        "strict": strict,
        "rules": rules,
        "findings": [f.to_dict() for f in result.findings if f.active],
        "baselined": [f.to_dict() for f in result.findings if f.baselined],
        "suppressed": [f.to_dict() for f in result.findings if f.suppressed],
        "summary": result.counts(),
        "failed": result.failed(strict),
    }


def render_json_text(result: LintResult, *, strict: bool) -> str:
    return json.dumps(render_json(result, strict=strict),
                      indent=2, sort_keys=True) + "\n"
