"""Time-series helpers for experiment output."""

from __future__ import annotations

from typing import Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def downsample(series: Sequence[float], max_points: int) -> list[float]:
    """Reduce a series to at most ``max_points`` by bucket-averaging."""
    if max_points <= 0:
        raise ValueError("max_points must be positive")
    n = len(series)
    if n <= max_points:
        return list(series)
    result = []
    for bucket in range(max_points):
        start = bucket * n // max_points
        end = max(start + 1, (bucket + 1) * n // max_points)
        chunk = series[start:end]
        result.append(sum(chunk) / len(chunk))
    return result


def ascii_sparkline(series: Sequence[float], width: int = 60) -> str:
    """A one-line ASCII rendering of a series (for benchmark logs)."""
    if not series:
        return ""
    values = downsample(list(series), width)
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def share_of_total(values: Sequence[float]) -> list[float]:
    """Normalize values to fractions of their sum (0s stay 0 if all 0)."""
    total = sum(values)
    if total == 0:
        return [0.0] * len(values)
    return [v / total for v in values]
