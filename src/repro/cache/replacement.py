"""Way-partitioning-enabled tree pseudo-LRU (PARD Fig. 4).

The LLC control plane hands the replacement logic a per-DS-id way mask
from its parameter table; the PLRU tree then only ever selects victims
among the allowed ways. Masks restrict *allocation*, not lookup: a block
that hits in a way outside the requester's current mask is still a hit,
which is what makes mask reprogramming safe at any time (occupancy then
drifts toward the new partition as allocations happen).
"""

from __future__ import annotations


class ReplacementError(RuntimeError):
    """Raised when no way is eligible for replacement (empty mask)."""


def mask_ways(mask: int, num_ways: int) -> list[int]:
    """The way indices enabled by ``mask`` (bit i = way i)."""
    return [w for w in range(num_ways) if mask & (1 << w)]


class WayMaskedPlru:
    """A binary tree PLRU over a power-of-two number of ways.

    Tree nodes live in a heap-style array: node 1 is the root, node ``n``
    has children ``2n`` and ``2n+1``; nodes ``num_ways .. 2*num_ways-1``
    are the leaves (ways). A node bit of 0 means the left subtree is
    colder (next victim direction); touching a way flips the bits on its
    path to point away from it.
    """

    def __init__(self, num_ways: int):
        if num_ways < 1 or num_ways & (num_ways - 1):
            raise ValueError(f"num_ways must be a power of two, got {num_ways}")
        self.num_ways = num_ways
        # bits[n] for internal nodes 1..num_ways-1; index 0 unused.
        self.bits = [0] * num_ways
        self.full_mask = (1 << num_ways) - 1

    def touch(self, way: int) -> None:
        """Record an access to ``way``, making it most recently used."""
        self._check_way(way)
        node = self.num_ways + way
        while node > 1:
            parent = node >> 1
            # Point the parent's bit at the *other* child.
            self.bits[parent] = 0 if node & 1 else 1
            node = parent

    def victim(self, mask: int | None = None) -> int:
        """Choose the victim way, restricted to ``mask`` (default: all)."""
        if mask is None:
            mask = self.full_mask
        mask &= self.full_mask
        if mask == 0:
            raise ReplacementError("way mask selects no ways")
        node = 1
        while node < self.num_ways:
            preferred = 2 * node + self.bits[node]
            other = 2 * node + (1 - self.bits[node])
            if self._subtree_has_allowed(preferred, mask):
                node = preferred
            else:
                node = other
        return node - self.num_ways

    def _subtree_has_allowed(self, node: int, mask: int) -> bool:
        """True if any leaf under ``node`` is enabled in ``mask``."""
        # The subtree rooted at ``node`` covers a contiguous leaf range.
        first, count = node, 1
        while first < self.num_ways:
            first *= 2
            count *= 2
        first -= self.num_ways
        subtree_mask = ((1 << count) - 1) << first
        return bool(mask & subtree_mask)

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range for {self.num_ways} ways")
