"""Set-associative cache model.

One :class:`Cache` class serves both the private L1s and the shared LLC;
the difference is that the LLC is constructed with an
:class:`~repro.cache.control_plane.LlcControlPlane`, which supplies
per-DS-id way masks for victim selection and receives per-DS-id
hit/miss/occupancy accounting. The control-plane interactions happen off
the critical path -- the hit latency is identical with and without a
control plane attached, which is the paper's "no extra cycles" claim for
the LLC control plane (§7.2) and is asserted by a benchmark.

DS-id semantics (PARD Fig. 4): the tag array stores an ``owner DS-id``
next to each tag, a hit requires *both* the address tag and the DS-id to
match, and an evicted dirty block's writeback is tagged with the owner
DS-id, not the requester's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.mshr import MshrFile, MshrFullError
from repro.cache.replacement import WayMaskedPlru
from repro.cache.writeback import WritebackBuffer
from repro.sim.clock import ClockDomain
from repro.sim.component import Component, ResponseCallback
from repro.sim.engine import Engine
from repro.sim.packet import MemOp, MemoryPacket
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_size: int = 64
    hit_latency_cycles: int = 2
    mshr_entries: int = 16
    writeback_entries: int = 8
    retry_cycles: int = 4  # back-off when the MSHR file is full

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_size <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.ways * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line_size = {self.ways * self.line_size}"
            )
        sets = self.num_sets
        if sets & (sets - 1):
            raise ValueError(f"{self.name}: number of sets {sets} must be a power of two")
        if self.ways & (self.ways - 1):
            raise ValueError(f"{self.name}: ways {self.ways} must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


class _Line:
    __slots__ = ("tag", "ds_id", "valid", "dirty")

    def __init__(self) -> None:
        self.tag = 0
        self.ds_id = 0
        self.valid = False
        self.dirty = False


class _Set:
    __slots__ = ("lines", "plru")

    def __init__(self, ways: int):
        self.lines = [_Line() for _ in range(ways)]
        self.plru = WayMaskedPlru(ways)


class Cache(Component):
    """A write-allocate, writeback, set-associative cache."""

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        config: CacheConfig,
        downstream: Component,
        control=None,
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        super().__init__(engine, config.name, clock)
        self.config = config
        self.downstream = downstream
        self.control = control
        self.tracer = tracer
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        self._sets: dict[int, _Set] = {}
        self._reserved_slots: dict[tuple[int, int], int] = {}
        self.mshrs = MshrFile(config.mshr_entries)
        self.writebacks = WritebackBuffer(config.writeback_entries)
        # Plain counters for caches without a control plane (the L1s).
        self.total_hits = 0
        self.total_misses = 0
        if self.telemetry is not None:
            # Callback gauges over the plain counters: zero hot-path cost,
            # read only at snapshot time.
            reg = self.telemetry.registry
            reg.gauge_fn(f"cache.{self.name}.hits", lambda: self.total_hits)
            reg.gauge_fn(f"cache.{self.name}.misses", lambda: self.total_misses)
            reg.gauge_fn(f"cache.{self.name}.miss_rate", lambda: self.miss_rate)
        if control is not None:
            control.bind_cache(self)

    # -- request path -----------------------------------------------------

    def handle_request(self, packet: MemoryPacket, on_response: ResponseCallback) -> None:
        """Accept a tagged cache access; respond after the modeled latency."""
        self.post_cycles(
            self.config.hit_latency_cycles, lambda: self._lookup(packet, on_response)
        )

    def access(self, packet: MemoryPacket, on_response: ResponseCallback) -> Optional[int]:
        """Fast-path entry: a hit completes synchronously.

        Returns the hit latency in picoseconds when the line is resident
        (``on_response`` is then *not* called); a miss takes the normal
        event-driven path and returns None. Keeping hits off the event
        queue is purely a simulator optimization -- the modeled latency is
        identical to :meth:`handle_request`.
        """
        line_addr = packet.line_addr(self.config.line_size)
        set_index, tag = self._decompose(line_addr)
        cache_set = self._set(set_index)
        way = self._find(cache_set, tag, packet.ds_id)
        if way is None:
            self.handle_request(packet, on_response)
            return None
        cache_set.plru.touch(way)
        if packet.is_write:
            cache_set.lines[way].dirty = True
        self.total_hits += 1
        if self.control is not None:
            self.control.record_access(packet.ds_id, hit=True)
        latency_ps = self.config.hit_latency_cycles * self.clock.period_ps
        if packet.span is not None:
            packet.span.hop(f"{self.name}.hit", self.now + latency_ps)
        return latency_ps

    def _lookup(self, packet: MemoryPacket, on_response: ResponseCallback) -> None:
        line_addr = packet.line_addr(self.config.line_size)
        set_index, tag = self._decompose(line_addr)
        cache_set = self._set(set_index)
        way = self._find(cache_set, tag, packet.ds_id)
        if way is not None:
            self._on_hit(cache_set, way, packet, on_response)
        else:
            self._on_miss(cache_set, set_index, tag, line_addr, packet, on_response)

    def _on_hit(self, cache_set: _Set, way: int, packet: MemoryPacket, on_response) -> None:
        cache_set.plru.touch(way)
        if packet.is_write:
            cache_set.lines[way].dirty = True
        self.total_hits += 1
        if self.control is not None:
            self.control.record_access(packet.ds_id, hit=True)
        if packet.span is not None:
            packet.span.hop(f"{self.name}.hit", self.now)
        on_response(packet)

    def _on_miss(
        self, cache_set: _Set, set_index: int, tag: int, line_addr: int, packet, on_response
    ) -> None:
        self.total_misses += 1
        if self.control is not None:
            self.control.record_access(packet.ds_id, hit=False)
        if packet.span is not None:
            packet.span.hop(f"{self.name}.miss", self.now)
        try:
            _entry, is_primary = self.mshrs.allocate(
                line_addr,
                packet.ds_id,
                self.now,
                is_write=packet.is_write,
                on_fill=lambda: on_response(packet),
            )
        except MshrFullError:
            # Structural stall: retry the lookup after a short back-off.
            self.post_cycles(
                self.config.retry_cycles, lambda: self._lookup(packet, on_response)
            )
            return
        if not is_primary:
            return  # merged into an in-flight fill
        self._evict_victim(cache_set, set_index, line_addr, packet.ds_id)
        fill = MemoryPacket(
            ds_id=packet.ds_id,
            addr=line_addr,
            size=self.config.line_size,
            op=MemOp.READ,
            birth_ps=self.now,
            # The fill inherits the missing request's span, so the trail
            # continues downstream (LLC, crossbar, DRAM).
            span=packet.span,
        )
        fill_done = lambda _resp=None: self._on_fill(set_index, tag, line_addr, packet.ds_id)
        sync_latency = self.downstream.access(fill, fill_done)
        if sync_latency is not None:
            self.post(sync_latency, fill_done)

    def _evict_victim(self, cache_set: _Set, set_index: int, line_addr: int, ds_id: int) -> None:
        """Select and evict the victim for an incoming fill.

        The victim way is chosen under the requester's way mask (from the
        control plane's parameter table); the slot is reserved (tag -1) so
        concurrent misses to the same set pick different ways. The
        reservation key is the MSHR key ``(line_addr, ds_id)``, which is
        unique because only primary misses reach this point.
        """
        mask = self._waymask(ds_id)
        way = self._find_invalid(cache_set, mask)
        if way is None:
            way = cache_set.plru.victim(mask)
        victim = cache_set.lines[way]
        if victim.valid:
            if self.control is not None:
                self.control.record_eviction(victim.ds_id)
            if victim.dirty:
                self._write_back(set_index, victim)
            victim.valid = False
        # Reserve the slot for this fill.
        victim.tag = -1
        cache_set.plru.touch(way)
        self._reserved_slots[(line_addr, ds_id)] = way

    def _write_back(self, set_index: int, victim: _Line) -> None:
        line_addr = self._compose(set_index, victim.tag)
        entry = self.writebacks.push(line_addr, victim.ds_id, self.now)
        self.tracer.emit(
            self.now, self.name, "writeback",
            f"addr={line_addr:#x} owner={victim.ds_id}",
        )
        # Drain immediately; the memory controller queue is the real
        # contention point downstream.
        self.writebacks.pop()
        packet = MemoryPacket(
            ds_id=entry.owner_ds_id,
            addr=entry.line_addr,
            size=self.config.line_size,
            op=MemOp.WRITEBACK,
            owner_ds_id=entry.owner_ds_id,
            birth_ps=self.now,
        )
        self.downstream.handle_request(packet, lambda _resp: None)

    def _on_fill(self, set_index: int, tag: int, line_addr: int, ds_id: int) -> None:
        """Install the returned line and wake the MSHR waiters."""
        cache_set = self._set(set_index)
        way = self._reserved_slots.pop((line_addr, ds_id), None)
        if way is None:  # defensive: no reservation recorded; pick now
            mask = self._waymask(ds_id)
            way = self._find_invalid(cache_set, mask)
            if way is None:
                way = cache_set.plru.victim(mask)
        entry = self.mshrs.complete(line_addr, ds_id)
        line = cache_set.lines[way]
        if line.valid:
            # A concurrent fill landed in our reserved way (possible when a
            # narrow way mask forces PLRU onto a reserved slot); evict it.
            if self.control is not None:
                self.control.record_eviction(line.ds_id)
            if line.dirty:
                self._write_back(set_index, line)
        line.tag = tag
        line.ds_id = ds_id
        line.valid = True
        line.dirty = entry.is_write
        cache_set.plru.touch(way)
        if self.control is not None:
            self.control.record_fill(ds_id)

    # -- geometry helpers ---------------------------------------------------

    def _decompose(self, line_addr: int) -> tuple[int, int]:
        block = line_addr // self.config.line_size
        return block % self.config.num_sets, block // self.config.num_sets

    def _compose(self, set_index: int, tag: int) -> int:
        return (tag * self.config.num_sets + set_index) * self.config.line_size

    def _set(self, set_index: int) -> _Set:
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            cache_set = _Set(self.config.ways)
            self._sets[set_index] = cache_set
        return cache_set

    def _find(self, cache_set: _Set, tag: int, ds_id: int) -> Optional[int]:
        for way, line in enumerate(cache_set.lines):
            if line.valid and line.tag == tag and line.ds_id == ds_id:
                return way
        return None

    def _find_invalid(self, cache_set: _Set, mask: int) -> Optional[int]:
        for way, line in enumerate(cache_set.lines):
            if not line.valid and line.tag == 0 and mask & (1 << way):
                return way
        return None

    def _waymask(self, ds_id: int) -> int:
        full = (1 << self.config.ways) - 1
        if self.control is None:
            return full
        return self.control.waymask(ds_id) & full

    # -- management operations ---------------------------------------------

    def flush_dsid(self, ds_id: int) -> int:
        """Invalidate every block owned by ``ds_id``, writing back dirty
        ones. Returns the number of blocks flushed.

        The firmware runs this when an LDom is destroyed so that its
        DRAM window can be recycled without leaking data into (or
        serving stale data to) a later tenant.
        """
        flushed = 0
        for set_index, cache_set in self._sets.items():
            for line in cache_set.lines:
                if line.valid and line.ds_id == ds_id:
                    if line.dirty:
                        self._write_back(set_index, line)
                    line.valid = False
                    line.tag = 0
                    line.dirty = False
                    flushed += 1
                    if self.control is not None:
                        self.control.record_eviction(ds_id)
        return flushed

    # -- introspection ---------------------------------------------------------

    def occupancy_blocks(self, ds_id: int) -> int:
        """Blocks currently owned by ``ds_id`` (counted from the tag array,
        like the paper's per-DS-id capacity statistic)."""
        count = 0
        for cache_set in self._sets.values():
            for line in cache_set.lines:
                if line.valid and line.ds_id == ds_id:
                    count += 1
        return count

    @property
    def miss_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_misses / total if total else 0.0
