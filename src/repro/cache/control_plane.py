"""The LLC control plane (PARD Fig. 4, Table 3).

Parameter table:  ``waymask`` -- way-partitioning mask bits per DS-id
                  (e.g. ``0xFF00`` = the leftmost 8 of 16 ways).
Statistics table: ``miss_rate`` (basis points, windowed), ``capacity``
                  (bytes currently owned, from the tag array's owner
                  DS-ids), plus cumulative ``hit_cnt`` / ``miss_cnt``.
Trigger table:    e.g. the paper's running rule
                  ``LLC.MissRate > 30% => increase way allocation``.

The plane is bound to a :class:`~repro.cache.cache.Cache`; the cache
pushes accounting events in (off the critical path) and pulls the current
way mask out during victim selection.
"""

from __future__ import annotations

from typing import Optional

from repro.core.control_plane import ControlPlane
from repro.sim.engine import Engine, PS_PER_MS
from repro.sim.stats import WindowedRate
from repro.sim.trace import NULL_TRACER, Tracer

BASIS_POINTS = 10_000


class LlcControlPlane(ControlPlane):
    """Programmable control plane for the shared last-level cache."""

    IDENT = "CACHE_CP"
    TYPE_CODE = "C"
    STATISTICS_COLUMNS = (
        ("miss_rate", 0),
        ("capacity", 0),
        ("hit_cnt", 0),
        ("miss_cnt", 0),
    )

    def __init__(
        self,
        engine: Engine,
        name: str = "cpa_cache",
        num_ways: int = 16,
        max_entries: int = 256,
        max_triggers: int = 64,
        window_ps: int = PS_PER_MS,
        tracer: Tracer = NULL_TRACER,
    ):
        self.num_ways = num_ways
        self.full_mask = (1 << num_ways) - 1
        # The schema default for new LDoms is "share everything".
        self.PARAMETER_COLUMNS = (("waymask", self.full_mask),)
        super().__init__(
            engine, name,
            max_entries=max_entries, max_triggers=max_triggers,
            window_ps=window_ps, tracer=tracer,
        )
        self._cache = None
        self._window_hits: dict[int, WindowedRate] = {}
        self._window_misses: dict[int, WindowedRate] = {}
        self._occupancy: dict[int, int] = {}
        self._line_size = 64

    def bind_cache(self, cache) -> None:
        """Called by the Cache constructor when this plane is attached."""
        self._cache = cache
        self._line_size = cache.config.line_size
        if cache.config.ways != self.num_ways:
            raise ValueError(
                f"{self.name}: plane sized for {self.num_ways} ways but "
                f"cache {cache.name} has {cache.config.ways}"
            )

    # -- policy reads (hardware side) -----------------------------------------

    def waymask(self, ds_id: int) -> int:
        """The way-partition mask for a DS-id; untracked DS-ids share all ways."""
        return self.parameters.get_default(ds_id, "waymask", self.full_mask)

    # -- accounting (hardware side, off the critical path) ----------------------

    def record_access(self, ds_id: int, hit: bool) -> None:
        if hit:
            self._window(self._window_hits, ds_id).add(1)
        else:
            self._window(self._window_misses, ds_id).add(1)

    def record_fill(self, ds_id: int) -> None:
        self._occupancy[ds_id] = self._occupancy.get(ds_id, 0) + 1

    def record_eviction(self, owner_ds_id: int) -> None:
        count = self._occupancy.get(owner_ds_id, 0)
        self._occupancy[owner_ds_id] = max(0, count - 1)

    def occupancy_bytes(self, ds_id: int) -> int:
        return self._occupancy.get(ds_id, 0) * self._line_size

    # -- window publication -------------------------------------------------------

    def on_window(self) -> None:
        """Publish windowed miss rate and current capacity per DS-id."""
        for ds_id in self.statistics.ds_ids:
            hits = self._window(self._window_hits, ds_id).roll()
            misses = self._window(self._window_misses, ds_id).roll()
            total = hits + misses
            if total:
                miss_rate = misses * BASIS_POINTS // total
                self.statistics.set(ds_id, "miss_rate", miss_rate)
            # A window with no accesses keeps the previous published rate,
            # which avoids spuriously clearing a trigger condition while an
            # LDom is momentarily idle.
            self.statistics.add(ds_id, "hit_cnt", hits)
            self.statistics.add(ds_id, "miss_cnt", misses)
            self.statistics.set(ds_id, "capacity", self.occupancy_bytes(ds_id))

    def last_window_miss_rate(self, ds_id: int) -> Optional[float]:
        """Miss rate of the last published window as a fraction, or None."""
        if not self.statistics.has(ds_id):
            return None
        return self.statistics.get(ds_id, "miss_rate") / BASIS_POINTS

    def _window(self, table: dict[int, WindowedRate], ds_id: int) -> WindowedRate:
        rate = table.get(ds_id)
        if rate is None:
            rate = WindowedRate(f"{self.name}.dsid{ds_id}")
            table[ds_id] = rate
        return rate
