"""Cache substrate: set-associative caches with PARD way partitioning.

- :mod:`repro.cache.replacement` -- tree pseudo-LRU with way-mask support
  (the "Way Partitioning Enabled Pseudo-LRU" of PARD Fig. 4)
- :mod:`repro.cache.mshr` -- miss status holding registers
- :mod:`repro.cache.writeback` -- the writeback buffer (owner-DS-id tagged)
- :mod:`repro.cache.cache` -- the cache model itself (used for both the
  private L1s and the shared LLC)
- :mod:`repro.cache.control_plane` -- the LLC control plane
"""

from repro.cache.cache import Cache, CacheConfig
from repro.cache.control_plane import LlcControlPlane
from repro.cache.mshr import MshrFile, MshrFullError
from repro.cache.replacement import WayMaskedPlru
from repro.cache.writeback import WritebackBuffer

__all__ = [
    "Cache",
    "CacheConfig",
    "LlcControlPlane",
    "MshrFile",
    "MshrFullError",
    "WayMaskedPlru",
    "WritebackBuffer",
]
