"""The writeback buffer.

Evicted dirty blocks enter the writeback buffer together with their
*owner* DS-id (PARD §4.1: the writeback to DRAM must be attributed to the
LDom that owned the block, not to the request that caused the eviction).
The buffer drains to the downstream memory path; if it fills, evictions
stall until a slot frees, which is the same backpressure the RTL applies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class WritebackEntry:
    line_addr: int
    owner_ds_id: int
    queued_at_ps: int


class WritebackBuffer:
    """A bounded FIFO of pending writebacks."""

    def __init__(self, num_entries: int = 8):
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self._queue: deque[WritebackEntry] = deque()
        self.total_enqueued = 0

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.num_entries

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def push(self, line_addr: int, owner_ds_id: int, now_ps: int) -> WritebackEntry:
        if self.is_full:
            raise OverflowError(f"writeback buffer full ({self.num_entries} entries)")
        entry = WritebackEntry(line_addr, owner_ds_id, now_ps)
        self._queue.append(entry)
        self.total_enqueued += 1
        return entry

    def pop(self) -> WritebackEntry:
        if not self._queue:
            raise IndexError("writeback buffer empty")
        return self._queue.popleft()

    def peek(self) -> WritebackEntry:
        if not self._queue:
            raise IndexError("writeback buffer empty")
        return self._queue[0]
