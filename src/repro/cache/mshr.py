"""Miss status holding registers.

An MSHR entry tracks one outstanding line fill, keyed by
``(line_addr, ds_id)`` -- the DS-id is part of the key because two LDoms
can legally have outstanding misses on the same LDom-physical address
(PARD Fig. 4 step 4 allocates the MSHR "for the request and the DS-id").
Secondary misses to an in-flight line merge into the existing entry
instead of issuing a duplicate memory request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


class MshrFullError(RuntimeError):
    """All MSHRs are busy; the cache must stall the request."""


@dataclass
class MshrEntry:
    line_addr: int
    ds_id: int
    issued_at_ps: int
    is_write: bool = False
    waiters: list[Callable[[], None]] = field(default_factory=list)

    @property
    def key(self) -> tuple[int, int]:
        return (self.line_addr, self.ds_id)


class MshrFile:
    """A bounded set of MSHR entries with secondary-miss merging."""

    def __init__(self, num_entries: int = 16):
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self._entries: dict[tuple[int, int], MshrEntry] = {}
        self.primary_misses = 0
        self.secondary_misses = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def lookup(self, line_addr: int, ds_id: int) -> Optional[MshrEntry]:
        return self._entries.get((line_addr, ds_id))

    def allocate(
        self,
        line_addr: int,
        ds_id: int,
        now_ps: int,
        is_write: bool = False,
        on_fill: Optional[Callable[[], None]] = None,
    ) -> tuple[MshrEntry, bool]:
        """Allocate or merge; returns ``(entry, is_primary)``.

        ``is_primary`` is True when this call created the entry (and the
        caller must issue the downstream fill request).
        """
        key = (line_addr, ds_id)
        entry = self._entries.get(key)
        if entry is not None:
            self.secondary_misses += 1
            entry.is_write = entry.is_write or is_write
            if on_fill is not None:
                entry.waiters.append(on_fill)
            return entry, False
        if self.is_full:
            raise MshrFullError(
                f"all {self.num_entries} MSHRs busy at line {line_addr:#x}"
            )
        entry = MshrEntry(line_addr, ds_id, now_ps, is_write=is_write)
        if on_fill is not None:
            entry.waiters.append(on_fill)
        self._entries[key] = entry
        self.primary_misses += 1
        return entry, True

    def complete(self, line_addr: int, ds_id: int) -> MshrEntry:
        """Retire the entry on fill; returns it so waiters can be notified."""
        try:
            entry = self._entries.pop((line_addr, ds_id))
        except KeyError:
            raise KeyError(f"no MSHR for line {line_addr:#x} ds_id {ds_id}")
        for waiter in entry.waiters:
            waiter()
        return entry
