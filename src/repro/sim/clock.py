"""Clock domains.

The PARD server in Table 2 mixes a 2 GHz CPU domain with a DDR3-1600
memory domain (800 MHz bus clock, tCK = 1.25 ns). A :class:`ClockDomain`
converts between cycles in its own domain and the engine's picosecond
timeline, always aligning work to its own clock edges the way a
synchronous circuit would.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine, EventHandle

CPU_CLOCK_PS = 500  # 2 GHz
DRAM_CLOCK_PS = 1250  # DDR3-1600: tCK = 1.25 ns
PRM_CLOCK_PS = 10_000  # the PRM's embedded core runs at 100 MHz


class ClockDomain:
    """A synchronous clock domain on top of the shared engine timeline."""

    def __init__(self, engine: Engine, period_ps: int, name: str = "clk"):
        if period_ps <= 0:
            raise ValueError(f"clock period must be positive, got {period_ps}")
        self.engine = engine
        self.period_ps = int(period_ps)
        self.name = name

    @property
    def frequency_ghz(self) -> float:
        return 1_000.0 / self.period_ps

    @property
    def now_cycles(self) -> int:
        """Completed cycles of this domain at the current engine time."""
        return self.engine.now // self.period_ps

    def cycles_to_ps(self, cycles: int) -> int:
        return int(cycles) * self.period_ps

    def ps_to_cycles(self, ps: int) -> float:
        return ps / self.period_ps

    def next_edge_ps(self) -> int:
        """Absolute time of the next clock edge (now, if on an edge)."""
        now = self.engine.now
        remainder = now % self.period_ps
        if remainder == 0:
            return now
        return now + (self.period_ps - remainder)

    def schedule_cycles(self, cycles: int, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``cycles`` edges after the next aligned edge."""
        target = self.next_edge_ps() + self.cycles_to_ps(cycles)
        return self.engine.schedule_at(target, callback)

    def post_cycles(self, cycles: int, callback: Callable[[], None]) -> None:
        """Uncancellable :meth:`schedule_cycles`: edge-aligned work from
        every component in this domain lands in the same engine bucket and
        is dispatched in one queue operation."""
        target = self.next_edge_ps() + self.cycles_to_ps(cycles)
        self.engine.post_at(target, callback)
