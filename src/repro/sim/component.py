"""Base class for hardware components on the intra-computer network.

A :class:`Component` owns a name, an engine reference and a clock domain.
Request/response plumbing is deliberately simple: a downstream component
exposes ``handle_request(packet, on_response)`` and invokes the callback
when the (possibly much later) response is ready. This models the ICN's
request/reply packet flows without a heavyweight port abstraction.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine
from repro.sim.packet import Packet

ResponseCallback = Callable[[Packet], None]


class Component:
    """A named, clocked hardware model."""

    def __init__(self, engine: Engine, name: str, clock: Optional[ClockDomain] = None):
        self.engine = engine
        self.name = name
        self.clock = clock

    @property
    def now(self) -> int:
        return self.engine.now

    def schedule(self, delay_ps: int, callback: Callable[[], None]):
        return self.engine.schedule(delay_ps, callback)

    def post(self, delay_ps: int, callback: Callable[[], None]) -> None:
        """Uncancellable fast-path schedule (no handle allocation)."""
        self.engine.post(delay_ps, callback)

    def schedule_cycles(self, cycles: int, callback: Callable[[], None]):
        if self.clock is None:
            raise RuntimeError(f"component {self.name} has no clock domain")
        return self.clock.schedule_cycles(cycles, callback)

    def post_cycles(self, cycles: int, callback: Callable[[], None]) -> None:
        """Uncancellable fast-path schedule aligned to this clock domain."""
        if self.clock is None:
            raise RuntimeError(f"component {self.name} has no clock domain")
        self.clock.post_cycles(cycles, callback)

    def handle_request(self, packet: Packet, on_response: ResponseCallback) -> None:
        """Accept a request; call ``on_response`` when the reply is ready."""
        raise NotImplementedError

    def access(self, packet: Packet, on_response: ResponseCallback) -> Optional[int]:
        """Fast-path request entry.

        Components that can complete a request without waiting (e.g. a
        cache hit) may return its latency in picoseconds and skip the
        callback entirely, which keeps hits off the event queue. The
        default defers to :meth:`handle_request` and returns None, meaning
        ``on_response`` will be called later.
        """
        self.handle_request(packet, on_response)
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
