"""Statistics primitives used by control planes and experiment harnesses.

Control-plane statistics tables (PARD Fig. 2) store per-DS-id usage
information such as hit/miss counts, bandwidth and average queueing
latency. Triggers compare *rates* over recent history, so alongside plain
counters we provide windowed counters that expose a value over the last
completed window.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class WindowedRate:
    """A counter whose rate is read out per fixed window.

    ``roll()`` closes the current window: the accumulated amount becomes
    ``last_window_value`` and accumulation restarts. Control planes roll
    their statistics at the trigger-evaluation period.
    """

    __slots__ = ("name", "current", "last_window_value", "windows_completed")

    def __init__(self, name: str = "rate"):
        self.name = name
        self.current = 0
        self.last_window_value = 0
        self.windows_completed = 0

    def add(self, amount: int = 1) -> None:
        self.current += amount

    def roll(self) -> int:
        self.last_window_value = self.current
        self.current = 0
        self.windows_completed += 1
        return self.last_window_value

    def __repr__(self) -> str:
        return f"WindowedRate({self.name}: last={self.last_window_value})"


class LatencyRecorder:
    """Records latency samples and reports mean/percentiles/CDF.

    Used both by hardware models (memory queueing delay, Fig. 11) and by
    workloads (memcached response times, Fig. 8).

    The recorder sits on per-request hot paths, so the summary statistics
    are maintained incrementally: ``record`` updates a running sum and
    min/max, making ``mean``/``min``/``max``/``total`` O(1) reads instead
    of full-list reductions. Percentile and CDF queries sort once and
    reuse the sorted view until the next sample arrives.
    """

    __slots__ = ("name", "samples", "_sum", "_min", "_max", "_ordered_cache")

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: list[float] = []
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._ordered_cache: Optional[list[float]] = None

    def record(self, value: float) -> None:
        value = float(value)
        self.samples.append(value)
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._ordered_cache = None

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of all recorded samples (incrementally maintained)."""
        return self._sum

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self._sum / len(self.samples)

    @property
    def max(self) -> Optional[float]:
        """Largest sample, or ``None`` if nothing was recorded (a bare
        0.0 would be indistinguishable from a real zero-latency sample)."""
        return self._max if self.samples else None

    @property
    def min(self) -> Optional[float]:
        """Smallest sample, or ``None`` if nothing was recorded."""
        return self._min if self.samples else None

    def _ordered(self) -> list[float]:
        ordered = self._ordered_cache
        if ordered is None:
            ordered = self._ordered_cache = sorted(self.samples)
        return ordered

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, ``pct`` in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = self._ordered()
        if len(ordered) == 1:
            return ordered[0]
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * frac

    def p95(self) -> float:
        return self.percentile(95.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def cdf(self, points: Optional[Iterable[float]] = None) -> list[tuple[float, float]]:
        """Empirical CDF as ``(value, cumulative_fraction)`` pairs.

        With ``points`` given, evaluates the CDF at those values;
        otherwise returns one step per distinct sample.
        """
        if not self.samples:
            return []
        ordered = self._ordered()
        n = len(ordered)
        if points is None:
            result = []
            seen = 0
            previous = None
            for value in ordered:
                seen += 1
                if value != previous:
                    result.append((value, seen / n))
                    previous = value
                else:
                    result[-1] = (value, seen / n)
            return result
        result = []
        for point in points:
            covered = _count_le(ordered, point)
            result.append((float(point), covered / n))
        return result

    def reset(self) -> None:
        self.samples.clear()
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._ordered_cache = None

    def __repr__(self) -> str:
        return f"LatencyRecorder({self.name}: n={self.count}, mean={self.mean:.2f})"


def _count_le(ordered: list[float], point: float) -> int:
    """Count of values <= point in an ascending list (binary search)."""
    low, high = 0, len(ordered)
    while low < high:
        mid = (low + high) // 2
        if ordered[mid] <= point:
            low = mid + 1
        else:
            high = mid
    return low
