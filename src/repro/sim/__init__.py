"""Discrete-event simulation kernel for the PARD intra-computer network.

This package provides the substrate every hardware model in the
reproduction is built on:

- :mod:`repro.sim.engine` -- the event loop (integer picosecond time base)
- :mod:`repro.sim.clock` -- clock domains (CPU at 2 GHz, DDR3-1600 at 800 MHz)
- :mod:`repro.sim.component` -- base class and port plumbing for hardware models
- :mod:`repro.sim.packet` -- tagged intra-computer-network (ICN) packets
- :mod:`repro.sim.stats` -- counters, windowed rates and latency recorders
- :mod:`repro.sim.rng` -- deterministic random streams
- :mod:`repro.sim.trace` -- optional event tracing
"""

from repro.sim.clock import ClockDomain, CPU_CLOCK_PS, DRAM_CLOCK_PS
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.packet import (
    DEFAULT_DSID,
    DmaPacket,
    InterruptPacket,
    IoPacket,
    MemoryPacket,
    Packet,
)
from repro.sim.rng import DeterministicRng
from repro.sim.stats import Counter, LatencyRecorder, WindowedRate

__all__ = [
    "ClockDomain",
    "Component",
    "Counter",
    "CPU_CLOCK_PS",
    "DRAM_CLOCK_PS",
    "DEFAULT_DSID",
    "DeterministicRng",
    "DmaPacket",
    "Engine",
    "InterruptPacket",
    "IoPacket",
    "LatencyRecorder",
    "MemoryPacket",
    "Packet",
    "WindowedRate",
]
