"""Event-driven simulation engine.

Time is an integer number of picoseconds, which lets the CPU domain
(500 ps per cycle at 2 GHz) and the DRAM domain (1250 ps per cycle at
DDR3-1600's 800 MHz bus clock) coexist without rounding drift.

Components never advance time themselves; they schedule callbacks and the
engine invokes them in timestamp order. Ties are broken by scheduling
order, which keeps runs fully deterministic.

Two queue implementations share one API and one ordering contract:

:class:`Engine` (the default)
    A bucketed calendar queue. Events are grouped into per-timestamp
    buckets (a dict keyed by time) and a small heap orders only the
    *distinct* timestamps. Because hardware models align work to clock
    edges, many events share a timestamp, so a whole clock edge's worth
    of callbacks is dispatched with a single heap operation. Within a
    bucket events run in scheduling order, which is exactly the
    ``(time, sequence)`` order of the heap reference -- the two engines
    produce byte-identical event orderings for the same schedule.

:class:`HeapqEngine`
    The reference implementation: one binary heap of ``(time, sequence)``
    ordered events. Kept deliberately simple; property tests cross-check
    the calendar queue against it.

Both engines support two scheduling paths:

``schedule()`` / ``schedule_at()``
    Allocate an event record and return an :class:`EventHandle` that can
    cancel the callback. Cancellation is O(1): a live-event counter is
    decremented immediately and the dead record is dropped either when it
    reaches the head of the queue or by a lazy purge when dead records
    outnumber live ones.

``post()`` / ``post_at()``
    The allocation-free hot path: the bare callback is enqueued with no
    event record and no handle. Use it for the vast majority of
    schedules that are never cancelled (cache lookups, DRAM completions,
    core steps, statistics windows).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000

# Lazy-purge thresholds: rebuild the queue once at least this many
# cancelled records linger *and* they outnumber the live entries.
_PURGE_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for violations of engine scheduling rules."""


class _Event:
    """A cancellable scheduled callback.

    ``seq`` orders ties in the heap engine; the calendar engine orders
    ties by bucket append order and leaves ``seq`` at 0. ``done`` marks
    an event that already executed, so a late ``cancel()`` on its handle
    cannot corrupt the live-event counter.
    """

    __slots__ = ("time_ps", "seq", "callback", "cancelled", "done")

    def __init__(self, time_ps: int, seq: int, callback: Callable[[], None]):
        self.time_ps = time_ps
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.done = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time_ps != other.time_ps:
            return self.time_ps < other.time_ps
        return self.seq < other.seq


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; allows cancellation."""

    __slots__ = ("_engine", "_event")

    def __init__(self, engine: "Engine", event: _Event):
        self._engine = engine
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once,
        and a no-op once the event has executed."""
        event = self._event
        if not event.cancelled and not event.done:
            event.cancelled = True
            self._engine._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time_ps(self) -> int:
        return self._event.time_ps


class Engine:
    """Deterministic discrete-event engine over a bucketed calendar queue.

    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(100, lambda: fired.append(engine.now))
    >>> engine.run()
    1
    >>> fired
    [100]
    """

    kind = "calendar"

    def __init__(self) -> None:
        self._now = 0
        # time_ps -> FIFO list of entries; an entry is either a bare
        # callback (post path) or an _Event (cancellable path).
        self._buckets: dict[int, list] = {}
        self._times: list[int] = []  # heap of the distinct bucket times
        self._pos = 0  # resume index into the earliest bucket after stop()
        # Invariant: live events == _queued - _cancelled_pending. Keeping
        # two counters instead of three makes the per-event bookkeeping a
        # single integer update on each of the insert and dispatch paths.
        self._queued = 0  # total entries queued, cancelled included
        self._cancelled_pending = 0  # cancelled records not yet dropped
        self._running = False
        self._stopped = False
        self.executed_total = 0

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        return self._now / PS_PER_NS

    @property
    def now_us(self) -> float:
        return self._now / PS_PER_US

    @property
    def now_ms(self) -> float:
        return self._now / PS_PER_MS

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1)."""
        return self._queued - self._cancelled_pending

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        return self.schedule_at(self._now + int(delay_ps), callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute timestamp, cancellable."""
        time_ps = int(time_ps)
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, already at {self._now} ps"
            )
        event = _Event(time_ps, 0, callback)
        bucket = self._buckets.get(time_ps)
        if bucket is None:
            self._buckets[time_ps] = [event]
            heapq.heappush(self._times, time_ps)
        else:
            bucket.append(event)
        self._queued += 1
        return EventHandle(self, event)

    # The two post methods inline the bucket insert: they are the hottest
    # functions in the whole simulator and every saved call level counts.

    def post(self, delay_ps: int, callback: Callable[[], None]) -> None:
        """Uncancellable fast path: no event record, no handle."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        time_ps = self._now + int(delay_ps)
        bucket = self._buckets.get(time_ps)
        if bucket is None:
            self._buckets[time_ps] = [callback]
            heapq.heappush(self._times, time_ps)
        else:
            bucket.append(callback)
        self._queued += 1

    def post_at(self, time_ps: int, callback: Callable[[], None]) -> None:
        """Uncancellable fast path at an absolute timestamp."""
        time_ps = int(time_ps)
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, already at {self._now} ps"
            )
        bucket = self._buckets.get(time_ps)
        if bucket is None:
            self._buckets[time_ps] = [callback]
            heapq.heappush(self._times, time_ps)
        else:
            bucket.append(callback)
        self._queued += 1

    # -- cancellation bookkeeping --------------------------------------------

    def _on_cancel(self) -> None:
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= _PURGE_MIN_CANCELLED
            and self._cancelled_pending * 2 > self._queued
        ):
            self._purge()

    def _purge(self) -> None:
        """Drop cancelled records from every bucket not currently executing."""
        # Never rewrite the bucket currently (or partially) executing:
        # _pos indexes into it.
        in_head = self._running or self._pos
        skip = self._times[0] if in_head and self._times else None
        removed = 0
        for time_ps in list(self._buckets):
            if time_ps == skip:
                continue
            bucket = self._buckets[time_ps]
            kept = [
                e for e in bucket
                if not (e.__class__ is _Event and e.cancelled)
            ]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                if kept:
                    self._buckets[time_ps] = kept
                else:
                    del self._buckets[time_ps]
                    self._times.remove(time_ps)
        if removed:
            heapq.heapify(self._times)
            self._queued -= removed
            self._cancelled_pending -= removed

    # -- execution -----------------------------------------------------------

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def run(self, until_ps: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until_ps`` is reached.

        Events stamped exactly at ``until_ps`` are executed. Returns the
        number of callbacks invoked. After a bounded run, time is advanced
        to ``until_ps`` even if the queue drained earlier, so repeated
        bounded runs tile the timeline predictably.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        times = self._times
        buckets = self._buckets
        event_class = _Event
        try:
            while times and not self._stopped:
                time_ps = times[0]
                if until_ps is not None and time_ps > until_ps:
                    break
                bucket = buckets[time_ps]
                if self._pos:
                    # Resuming after a mid-bucket stop(): drop the already
                    # dispatched prefix so iteration restarts at zero.
                    bucket = bucket[self._pos:]
                    buckets[time_ps] = bucket
                    self._pos = 0
                self._now = time_ps
                i = 0
                # The list iterator re-checks the length every step, so
                # callbacks that schedule more work at the current
                # timestamp extend this bucket and the new entries run in
                # this same pass, in append order.
                for entry in bucket:
                    i += 1
                    self._queued -= 1
                    if entry.__class__ is event_class:
                        if entry.cancelled:
                            self._cancelled_pending -= 1
                            continue
                        entry.done = True
                        entry = entry.callback
                    entry()
                    executed += 1
                    if self._stopped:
                        break
                if i < len(bucket):
                    # Stopped mid-bucket: remember where to resume.
                    self._pos = i
                    break
                del buckets[time_ps]
                heapq.heappop(times)
        finally:
            self._running = False
            self.executed_total += executed
        if until_ps is not None and self._now < until_ps and not self._stopped:
            self._now = until_ps
        return executed

    def run_for(self, duration_ps: int) -> int:
        """Run for a fixed duration from the current time."""
        return self.run(until_ps=self._now + int(duration_ps))

    def drain(self, callbacks: Iterable[Callable[[], None]] = ()) -> int:
        """Schedule ``callbacks`` immediately, then run the queue dry."""
        for callback in callbacks:
            self.post(0, callback)
        return self.run()


class HeapqEngine(Engine):
    """The reference engine: a single binary heap of ``(time, seq)`` events.

    Functionally identical to :class:`Engine` (the property suite asserts
    byte-identical orderings); kept as the straightforward implementation
    the calendar queue is validated -- and benchmarked -- against.
    """

    kind = "heapq"

    def __init__(self) -> None:
        super().__init__()
        self._queue: list[_Event] = []
        self._seq = 0

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> EventHandle:
        time_ps = int(time_ps)
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, already at {self._now} ps"
            )
        event = _Event(time_ps, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._queued += 1
        return EventHandle(self, event)

    def post(self, delay_ps: int, callback: Callable[[], None]) -> None:
        # The reference engine has no bare-callback representation; the
        # post path simply discards the handle.
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        self.schedule_at(self._now + int(delay_ps), callback)

    def post_at(self, time_ps: int, callback: Callable[[], None]) -> None:
        self.schedule_at(time_ps, callback)

    def _purge(self) -> None:
        survivors = [e for e in self._queue if not e.cancelled]
        removed = len(self._queue) - len(survivors)
        if removed:
            heapq.heapify(survivors)
            self._queue = survivors
            self._queued -= removed
            self._cancelled_pending -= removed

    def run(self, until_ps: Optional[int] = None) -> int:
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        try:
            while queue and not self._stopped:
                event = queue[0]
                if until_ps is not None and event.time_ps > until_ps:
                    break
                heapq.heappop(queue)
                self._queued -= 1
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = event.time_ps
                event.done = True
                event.callback()
                executed += 1
        finally:
            self._running = False
            self.executed_total += executed
        if until_ps is not None and self._now < until_ps and not self._stopped:
            self._now = until_ps
        return executed


ENGINE_KINDS = {
    "calendar": Engine,
    "heapq": HeapqEngine,
}


def make_engine(kind: str = "calendar") -> Engine:
    """Build an engine by queue implementation name."""
    try:
        return ENGINE_KINDS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown engine kind {kind!r}; choose from {sorted(ENGINE_KINDS)}"
        ) from None
