"""Event-driven simulation engine.

The engine keeps a priority queue of ``(time_ps, sequence, callback)``
entries. Time is an integer number of picoseconds, which lets the CPU
domain (500 ps per cycle at 2 GHz) and the DRAM domain (1250 ps per cycle
at DDR3-1600's 800 MHz bus clock) coexist without rounding drift.

Components never advance time themselves; they schedule callbacks and the
engine invokes them in timestamp order. Ties are broken by scheduling
order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


class SimulationError(RuntimeError):
    """Raised for violations of engine scheduling rules."""


class _Event:
    """A scheduled callback. Cancelled events stay in the heap but are skipped."""

    __slots__ = ("time_ps", "seq", "callback", "cancelled")

    def __init__(self, time_ps: int, seq: int, callback: Callable[[], None]):
        self.time_ps = time_ps
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time_ps != other.time_ps:
            return self.time_ps < other.time_ps
        return self.seq < other.seq


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time_ps(self) -> int:
        return self._event.time_ps


class Engine:
    """Deterministic discrete-event simulation engine.

    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(100, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [100]
    """

    def __init__(self) -> None:
        self._now = 0
        self._queue: list[_Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        return self._now / PS_PER_NS

    @property
    def now_us(self) -> float:
        return self._now / PS_PER_US

    @property
    def now_ms(self) -> float:
        return self._now / PS_PER_MS

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        return self.schedule_at(self._now + int(delay_ps), callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute timestamp."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, already at {self._now} ps"
            )
        event = _Event(int(time_ps), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def run(self, until_ps: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until_ps`` is reached.

        Events stamped exactly at ``until_ps`` are executed. Returns the
        number of callbacks invoked. After a bounded run, time is advanced
        to ``until_ps`` even if the queue drained earlier, so repeated
        bounded runs tile the timeline predictably.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if until_ps is not None and event.time_ps > until_ps:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time_ps
                event.callback()
                executed += 1
        finally:
            self._running = False
        if until_ps is not None and self._now < until_ps and not self._stopped:
            self._now = until_ps
        return executed

    def run_for(self, duration_ps: int) -> int:
        """Run for a fixed duration from the current time."""
        return self.run(until_ps=self._now + int(duration_ps))

    def drain(self, callbacks: Iterable[Callable[[], None]] = ()) -> int:
        """Schedule ``callbacks`` immediately, then run the queue dry."""
        for callback in callbacks:
            self.schedule(0, callback)
        return self.run()
