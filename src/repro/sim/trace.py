"""Lightweight event tracing.

A :class:`Tracer` collects ``(time_ps, source, event, detail)`` records.
Tracing is off by default; experiments and tests enable it to assert on
ordering properties (e.g. that a writeback carried the owner DS-id, or
that a trigger interrupt preceded the firmware's table write).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    time_ps: int
    source: str
    event: str
    detail: str = ""


class Tracer:
    """Collects trace records; filterable by source/event.

    With a ``capacity``, the tracer is a ring buffer: the *most recent*
    records are kept (the usual thing wanted when diagnosing the end of
    a run) and ``dropped`` counts how many old records were evicted.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, time_ps: int, source: str, event: str, detail: str = "") -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(TraceRecord(time_ps, source, event, detail))

    def filter(
        self,
        source: Optional[str] = None,
        event: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        result: Iterable[TraceRecord] = self.records
        if source is not None:
            result = (r for r in result if r.source == source)
        if event is not None:
            result = (r for r in result if r.event == event)
        if predicate is not None:
            result = (r for r in result if predicate(r))
        return list(result)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything; the default for hot paths."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def emit(self, time_ps: int, source: str, event: str, detail: str = "") -> None:
        return


NULL_TRACER = NullTracer()
