"""Intra-computer-network (ICN) packets.

PARD's founding observation is that a computer is inherently a network:
cores, caches, memory controllers and devices exchange packets over the
NoC/crossbar and PCIe. Every packet here carries a DS-id tag (16 bits in
the CPA protocol) that identifies the high-level entity -- an LDom in the
data-center configuration -- that originated it. The tag is attached at
the source and travels with the request for its whole lifetime (PARD §3
mechanism 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

DEFAULT_DSID = 0
MAX_DSID = 0xFFFF

_packet_ids = itertools.count()


def reset_packet_ids(start: int = 0) -> None:
    """Restart the global packet-id counter (ids are telemetry-only).

    The sweep runner calls this at the start of every point so a point's
    span payload -- which embeds packet ids -- is a pure function of the
    point's spec, not of what ran earlier in the process. Packet ids
    never influence event scheduling, only span/trace identification.
    """
    global _packet_ids
    _packet_ids = itertools.count(start)


class MemOp(Enum):
    """Memory operation kinds seen by caches and the memory controller."""

    READ = "read"
    WRITE = "write"
    WRITEBACK = "writeback"


class IoOp(Enum):
    """I/O operations on the programmed-I/O path."""

    PIO_READ = "pio_read"
    PIO_WRITE = "pio_write"


@dataclass(slots=True)
class Packet:
    """Base class for all ICN packets.

    ``ds_id`` is the DiffServ identity tag; ``birth_ps`` records when the
    packet entered the network, for end-to-end latency accounting.

    Packets are the single most-allocated object in a run (one per
    memory access that reaches the event-driven path), so every subclass
    is a ``slots=True`` dataclass: no per-instance ``__dict__``, smaller
    footprint, faster attribute access.
    """

    ds_id: int = DEFAULT_DSID
    birth_ps: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Optional telemetry span (repro.telemetry.Span). None for the vast
    # majority of packets; only a sampled fraction carries one, and every
    # hop site guards with a single `is not None` check.
    span: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0 <= self.ds_id <= MAX_DSID:
            raise ValueError(f"DS-id {self.ds_id} outside 16-bit tag space")


@dataclass(slots=True)
class MemoryPacket(Packet):
    """A cache/memory access request.

    ``addr`` is an *LDom-physical* address: LDoms all see an address space
    starting at 0 and the memory control plane translates to DRAM physical
    addresses (PARD §4.2). ``owner_ds_id`` is only meaningful for
    writebacks, where the evicted block's owner -- not the requester that
    caused the eviction -- must be charged (PARD §4.1).
    """

    addr: int = 0
    size: int = 64
    op: MemOp = MemOp.READ
    owner_ds_id: Optional[int] = None

    @property
    def is_write(self) -> bool:
        return self.op in (MemOp.WRITE, MemOp.WRITEBACK)

    @property
    def effective_ds_id(self) -> int:
        """The DS-id used for accounting and policy at the memory level."""
        if self.op is MemOp.WRITEBACK and self.owner_ds_id is not None:
            return self.owner_ds_id
        return self.ds_id

    def line_addr(self, line_size: int = 64) -> int:
        return self.addr - (self.addr % line_size)


@dataclass(slots=True)
class IoPacket(Packet):
    """A programmed-I/O request issued by a CPU core to a device register."""

    device: str = ""
    offset: int = 0
    op: IoOp = IoOp.PIO_READ
    value: int = 0


@dataclass(slots=True)
class DmaPacket(Packet):
    """A DMA data-transfer request issued by a device's DMA engine."""

    addr: int = 0
    size: int = 512
    to_device: bool = False
    device: str = ""


@dataclass(slots=True)
class InterruptPacket(Packet):
    """An interrupt raised by a device, routed by the APIC per DS-id."""

    vector: int = 0
    device: str = ""
