"""Deterministic random streams.

Every stochastic element of the simulation (arrival processes, address
distributions, injector choices) draws from a named child of one root
seed, so experiments are reproducible and two components never perturb
each other's streams.
"""

from __future__ import annotations

import hashlib
import math
import random


class DeterministicRng:
    """A reproducible random stream with common distributions.

    Child streams derived by name are stable across runs:

    >>> root = DeterministicRng(7)
    >>> a1 = root.child("arrivals").uniform()
    >>> a2 = DeterministicRng(7).child("arrivals").uniform()
    >>> a1 == a2
    True
    """

    def __init__(self, seed: int = 42, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self.seed)

    def child(self, name: str) -> "DeterministicRng":
        """A new independent stream keyed by this stream's seed and ``name``."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big")
        return DeterministicRng(child_seed, name=f"{self.name}/{name}")

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, items):
        return self._random.choice(items)

    def exponential(self, mean: float) -> float:
        """Exponential variate; used for Poisson inter-arrival times."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def zipf_index(self, n: int, alpha: float = 0.99) -> int:
        """A Zipf-distributed index in [0, n), via inverse-CDF on the
        continuous approximation. Memcached key popularity is Zipfian.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n == 1:
            return 0
        u = self._random.random()
        if abs(alpha - 1.0) < 1e-9:
            # Harmonic normalization ~ ln(n)
            value = math.exp(u * math.log(n))
        else:
            one_minus = 1.0 - alpha
            value = (u * (n**one_minus - 1.0) + 1.0) ** (1.0 / one_minus)
        index = int(value) - 1
        return min(max(index, 0), n - 1)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def random(self) -> float:
        return self._random.random()
