"""PARD: Programmable Architecture for Resourcing-on-Demand.

A full reproduction of Ma et al., ASPLOS 2015. The public API surface:

>>> from repro import PardServer, TABLE2
>>> server = PardServer(TABLE2.scaled(16))
>>> ldom = server.firmware.create_ldom("web", (0,), 32 << 20)
>>> server.start()

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the reproduced evaluation.
"""

from repro.system.config import ServerConfig, TABLE2
from repro.system.server import PardServer

__version__ = "1.0.0"

__all__ = ["PardServer", "ServerConfig", "TABLE2", "__version__"]
