"""DS-id tag registers.

PARD adds a tag register to every request source -- each CPU core and
every DMA-capable device (§3 mechanism 1, §4.1). The register's value is
attached to every packet the source emits; the tag then travels with the
request for its whole lifetime.

Tag registers are programmed by the PRM when an LDom is created or when a
core/device is reassigned between LDoms.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.packet import DEFAULT_DSID, MAX_DSID, Packet


class TagRegister:
    """A per-source DS-id register.

    ``on_change`` lets hardware models react to retagging (e.g. a core
    flushing speculative state when moved between LDoms).
    """

    def __init__(
        self,
        owner: str,
        ds_id: int = DEFAULT_DSID,
        on_change: Optional[Callable[[int, int], None]] = None,
    ):
        self.owner = owner
        self._on_change = on_change
        self._ds_id = DEFAULT_DSID
        self.write(ds_id)

    @property
    def ds_id(self) -> int:
        return self._ds_id

    def write(self, ds_id: int) -> None:
        if not 0 <= ds_id <= MAX_DSID:
            raise ValueError(f"DS-id {ds_id} outside 16-bit tag space")
        old = self._ds_id
        self._ds_id = int(ds_id)
        if self._on_change is not None and old != self._ds_id:
            self._on_change(old, self._ds_id)

    def tag(self, packet: Packet) -> Packet:
        """Stamp a packet with this source's DS-id (in place)."""
        packet.ds_id = self._ds_id
        return packet

    def __repr__(self) -> str:
        return f"TagRegister({self.owner}: ds_id={self._ds_id})"
