"""Logical domains (LDoms).

An LDom is a hardware-virtualized submachine: some CPU cores, a slice of
memory capacity, a slice of storage, and a DS-id that identifies all of
its traffic on the intra-computer network. LDoms run unmodified guest
software because the memory control plane translates their 0-based
physical address spaces (PARD §3 footnote 3, §4.2).

The firmware (:mod:`repro.prm.firmware`) creates LDoms; this module only
defines the model object and its lifecycle states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.address import AddressMapping


class LDomState(Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


_VALID_TRANSITIONS = {
    LDomState.CREATED: {LDomState.RUNNING, LDomState.DESTROYED},
    LDomState.RUNNING: {LDomState.STOPPED, LDomState.DESTROYED},
    LDomState.STOPPED: {LDomState.RUNNING, LDomState.DESTROYED},
    LDomState.DESTROYED: set(),
}


class LDomLifecycleError(RuntimeError):
    """Raised on an invalid LDom state transition."""


@dataclass
class LDom:
    """A logical domain: DS-id + resource assignment.

    ``priority`` is the memory scheduling priority (0 = low, 1 = high in
    the two-level design of §4.2); ``disk_share`` is the IDE bandwidth
    quota in percent.
    """

    ds_id: int
    name: str
    core_ids: tuple[int, ...]
    memory: AddressMapping
    priority: int = 0
    disk_share: int = 0
    state: LDomState = field(default=LDomState.CREATED)

    def __post_init__(self) -> None:
        if self.ds_id < 0:
            raise ValueError("DS-id must be non-negative")
        if not self.core_ids:
            raise ValueError(f"LDom {self.name} needs at least one core")
        if not 0 <= self.disk_share <= 100:
            raise ValueError(f"disk share must be a percentage, got {self.disk_share}")

    def _transition(self, new_state: LDomState) -> None:
        if new_state not in _VALID_TRANSITIONS[self.state]:
            raise LDomLifecycleError(
                f"LDom {self.name}: cannot go {self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def launch(self) -> None:
        self._transition(LDomState.RUNNING)

    def stop(self) -> None:
        self._transition(LDomState.STOPPED)

    def destroy(self) -> None:
        self._transition(LDomState.DESTROYED)

    @property
    def is_running(self) -> bool:
        return self.state is LDomState.RUNNING
