"""DS-id indexed tables.

Every PARD control plane carries three tables indexed by DS-id (Fig. 2):

- a **parameter table** storing resource-allocation policy (way masks,
  priorities, address mappings, bandwidth quotas),
- a **statistics table** storing usage information (hit/miss counts,
  bandwidth, queueing latency),
- a **trigger table** storing performance triggers.

A :class:`DsidTable` is a bounded, schema-checked mapping from DS-id to a
row of named integer cells. All cells are integers by convention so they
round-trip exactly through the 64-bit ``data`` register of the CPA
programming protocol; rates are stored in basis points (1/100 of a
percent) and latencies in hundredths of a cycle.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence


class TableError(KeyError):
    """Raised for unknown columns, unknown DS-ids, or a full table."""


class TableSchema:
    """Ordered column names with per-column defaults.

    The column *order* defines the register-protocol offsets: offset ``i``
    selects the ``i``-th column of the table.
    """

    def __init__(self, columns: Sequence[tuple[str, int]]):
        if not columns:
            raise ValueError("a table schema needs at least one column")
        names = [name for name, _ in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        self._columns = list(columns)
        self._index = {name: i for i, (name, _) in enumerate(columns)}

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self._columns]

    @property
    def defaults(self) -> dict[str, int]:
        return {name: default for name, default in self._columns}

    def offset_of(self, column: str) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise TableError(f"unknown column {column!r}; have {self.column_names}")

    def column_at(self, offset: int) -> str:
        if not 0 <= offset < len(self._columns):
            raise TableError(
                f"offset {offset} out of range for {len(self._columns)}-column table"
            )
        return self._columns[offset][0]

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, column: str) -> bool:
        return column in self._index


class DsidTable:
    """A bounded table of per-DS-id rows.

    ``max_entries`` models the hardware table size (Fig. 12 evaluates 64,
    128 and 256 entries); allocating a row for one more DS-id than the
    hardware provides raises :class:`TableError`, which is exactly the
    resource-exhaustion behaviour an operator would hit on silicon.
    """

    def __init__(self, name: str, schema: TableSchema, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.name = name
        self.schema = schema
        self.max_entries = max_entries
        self._rows: dict[int, dict[str, int]] = {}

    # -- row management -------------------------------------------------

    def allocate(self, ds_id: int, **overrides: int) -> dict[str, int]:
        """Create the row for ``ds_id`` with schema defaults plus overrides."""
        if ds_id in self._rows:
            raise TableError(f"{self.name}: DS-id {ds_id} already allocated")
        if len(self._rows) >= self.max_entries:
            raise TableError(
                f"{self.name}: table full ({self.max_entries} entries), "
                f"cannot allocate DS-id {ds_id}"
            )
        row = self.schema.defaults
        for column, value in overrides.items():
            if column not in self.schema:
                raise TableError(f"{self.name}: unknown column {column!r}")
            row[column] = int(value)
        self._rows[ds_id] = row
        return dict(row)

    def free(self, ds_id: int) -> None:
        """Remove the row (LDom destruction)."""
        if ds_id not in self._rows:
            raise TableError(f"{self.name}: DS-id {ds_id} not allocated")
        del self._rows[ds_id]

    def has(self, ds_id: int) -> bool:
        return ds_id in self._rows

    @property
    def ds_ids(self) -> list[int]:
        return sorted(self._rows)

    @property
    def entry_count(self) -> int:
        return len(self._rows)

    # -- cell access ----------------------------------------------------

    def get(self, ds_id: int, column: str) -> int:
        row = self._row(ds_id)
        if column not in self.schema:
            raise TableError(f"{self.name}: unknown column {column!r}")
        return row[column]

    def get_default(self, ds_id: int, column: str, default: int) -> int:
        """Like :meth:`get`, but returns ``default`` for missing rows.

        Hardware reads with an unallocated DS-id fall back to default
        behaviour rather than faulting.
        """
        if ds_id not in self._rows:
            return default
        return self.get(ds_id, column)

    def set(self, ds_id: int, column: str, value: int) -> None:
        row = self._row(ds_id)
        if column not in self.schema:
            raise TableError(f"{self.name}: unknown column {column!r}")
        row[column] = int(value)

    def add(self, ds_id: int, column: str, delta: int) -> int:
        """In-place increment used by hardware statistics updates."""
        row = self._row(ds_id)
        row[column] = row.get(column, 0) + int(delta)
        return row[column]

    def row(self, ds_id: int) -> dict[str, int]:
        """A copy of the row, for inspection."""
        return dict(self._row(ds_id))

    def rows(self) -> Iterator[tuple[int, dict[str, int]]]:
        for ds_id in sorted(self._rows):
            yield ds_id, dict(self._rows[ds_id])

    # -- register-protocol access (by offset) ----------------------------

    def read_cell(self, ds_id: int, offset: int) -> int:
        return self.get(ds_id, self.schema.column_at(offset))

    def write_cell(self, ds_id: int, offset: int, value: int) -> None:
        self.set(ds_id, self.schema.column_at(offset), value)

    def _row(self, ds_id: int) -> dict[str, int]:
        try:
            return self._rows[ds_id]
        except KeyError:
            raise TableError(f"{self.name}: DS-id {ds_id} not allocated")

    def __repr__(self) -> str:
        return f"DsidTable({self.name}, {self.entry_count}/{self.max_entries} rows)"


def make_table(
    name: str,
    columns: Sequence[tuple[str, int]],
    max_entries: int = 256,
    schema: Optional[TableSchema] = None,
) -> DsidTable:
    """Convenience constructor used by control-plane subclasses."""
    return DsidTable(name, schema or TableSchema(columns), max_entries)
