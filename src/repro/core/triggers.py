"""Trigger rules.

A trigger row (PARD Fig. 2, "Trigger Table") names a statistics-table
column, a comparison operator and a threshold for one DS-id. When the
control plane rolls its statistics window it evaluates every armed
trigger; a transition from false to true raises an interrupt toward the
PRM, where the firmware runs the bound action script.

Triggers are edge-armed: after firing, a trigger does not fire again until
its condition has been observed false (otherwise a standing condition
would raise an interrupt storm while the firmware is still reacting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum


class TriggerOp(IntEnum):
    """Comparison operators, encoded as the integers stored in the table."""

    GT = 0
    LT = 1
    GE = 2
    LE = 3
    EQ = 4
    NE = 5

    def apply(self, observed: int, threshold: int) -> bool:
        if self is TriggerOp.GT:
            return observed > threshold
        if self is TriggerOp.LT:
            return observed < threshold
        if self is TriggerOp.GE:
            return observed >= threshold
        if self is TriggerOp.LE:
            return observed <= threshold
        if self is TriggerOp.EQ:
            return observed == threshold
        return observed != threshold

    @classmethod
    def from_symbol(cls, symbol: str) -> "TriggerOp":
        """Parse the symbols accepted by ``pardtrigger -cond=<op>,<val>``."""
        table = {
            "gt": cls.GT, ">": cls.GT,
            "lt": cls.LT, "<": cls.LT,
            "ge": cls.GE, ">=": cls.GE,
            "le": cls.LE, "<=": cls.LE,
            "eq": cls.EQ, "==": cls.EQ,
            "ne": cls.NE, "!=": cls.NE,
        }
        try:
            return table[symbol.strip().lower()]
        except KeyError:
            raise ValueError(f"unknown trigger operator {symbol!r}")

    @property
    def symbol(self) -> str:
        return {
            TriggerOp.GT: ">", TriggerOp.LT: "<", TriggerOp.GE: ">=",
            TriggerOp.LE: "<=", TriggerOp.EQ: "==", TriggerOp.NE: "!=",
        }[self]


@dataclass
class TriggerRule:
    """One armed trigger: ``stats[ds_id][stat_column] <op> threshold``.

    ``action_id`` identifies the handler slot in the firmware's device
    file tree (``.../triggers/<action_id>``); the control plane only knows
    the number, the binding to a script lives in the firmware.
    """

    ds_id: int
    stat_column: str
    op: TriggerOp
    threshold: int
    action_id: int = 0
    enabled: bool = True
    fire_count: int = field(default=0)
    _armed: bool = field(default=True, repr=False)

    def evaluate(self, observed: int) -> bool:
        """Evaluate against a fresh statistics value.

        Returns True exactly when the trigger *fires* (condition true and
        the trigger was armed). Re-arms when the condition is false.
        """
        if not self.enabled:
            return False
        condition = self.op.apply(observed, self.threshold)
        if not condition:
            self._armed = True
            return False
        if not self._armed:
            return False
        self._armed = False
        self.fire_count += 1
        return True

    def describe(self) -> str:
        return (
            f"dsid={self.ds_id} {self.stat_column} {self.op.symbol} "
            f"{self.threshold} => action {self.action_id}"
        )
