"""Per-LDom address mapping.

Each LDom sees a physical address space starting at 0 so it can run an
unmodified OS; the memory control plane's parameter table stores the
mapping that translates an LDom-physical address into a DRAM address
(PARD §4.2, Fig. 5). The mapping is a contiguous base+bound window here,
matching the paper's single AddrMap column per DS-id.
"""

from __future__ import annotations

from dataclasses import dataclass


class AddressTranslationError(Exception):
    """An LDom-physical address fell outside its DRAM window."""


@dataclass(frozen=True)
class AddressMapping:
    """A base+bound window mapping LDom-physical to DRAM addresses."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError(f"invalid mapping base={self.base} size={self.size}")

    @property
    def limit(self) -> int:
        """One past the highest DRAM address of the window."""
        return self.base + self.size

    def translate(self, ldom_addr: int) -> int:
        """LDom-physical -> DRAM address, bounds-checked."""
        if not 0 <= ldom_addr < self.size:
            raise AddressTranslationError(
                f"LDom address {ldom_addr:#x} outside window of size {self.size:#x}"
            )
        return self.base + ldom_addr

    def reverse(self, dram_addr: int) -> int:
        """DRAM address -> LDom-physical, bounds-checked."""
        if not self.base <= dram_addr < self.limit:
            raise AddressTranslationError(
                f"DRAM address {dram_addr:#x} outside window "
                f"[{self.base:#x}, {self.limit:#x})"
            )
        return dram_addr - self.base

    def overlaps(self, other: "AddressMapping") -> bool:
        return self.base < other.limit and other.base < self.limit
