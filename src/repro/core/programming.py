"""The CPA register programming protocol (PARD Fig. 6).

Each control plane adaptor (CPA) occupies 32 bytes of the PRM's 64 KB I/O
space:

====== ===== ====================================================
offset bytes register
====== ===== ====================================================
0      8     IDENT       (low 8 chars of the ident string)
8      4     IDENT_HIGH  (next 4 chars)
12     4     type        (control plane type, e.g. ``ord('C')``)
16     4     addr        [31:16] DS-id, [15:2] offset, [1:0] table
20     4     cmd         0 = READ, 1 = WRITE
24     8     data        read result / value to write
====== ===== ====================================================

To program a cell, a driver writes the ``addr`` register to select a table
cell by DS-id (row) and offset (column), then either writes the ``data``
register followed by a WRITE command, or issues a READ command and reads
``data`` back. Writing ``cmd`` is what performs the access, exactly like
the hardware.

The firmware side of this protocol lives in :mod:`repro.prm`; this module
implements the hardware side plus the bit-level pack/unpack helpers.
"""

from __future__ import annotations

from typing import Callable, Optional

TABLE_PARAMETER = 0
TABLE_STATISTICS = 1
TABLE_TRIGGER = 2

CMD_READ = 0
CMD_WRITE = 1

CPA_SIZE_BYTES = 32
CPA_SPACE_BYTES = 64 * 1024  # the PRM reserves a 64 KB I/O window

REG_IDENT = 0
REG_IDENT_HIGH = 8
REG_TYPE = 12
REG_ADDR = 16
REG_CMD = 20
REG_DATA = 24

_DSID_BITS = 16
_OFFSET_BITS = 14
_TABLE_BITS = 2

MAX_PROTOCOL_DSID = (1 << _DSID_BITS) - 1
MAX_PROTOCOL_OFFSET = (1 << _OFFSET_BITS) - 1

_DATA_MASK = (1 << 64) - 1


class ProtocolError(ValueError):
    """Raised for malformed register accesses."""


def pack_addr(ds_id: int, offset: int, table: int) -> int:
    """Encode the 32-bit ``addr`` register value."""
    if not 0 <= ds_id <= MAX_PROTOCOL_DSID:
        raise ProtocolError(f"DS-id {ds_id} exceeds {_DSID_BITS} bits")
    if not 0 <= offset <= MAX_PROTOCOL_OFFSET:
        raise ProtocolError(f"offset {offset} exceeds {_OFFSET_BITS} bits")
    if not 0 <= table < (1 << _TABLE_BITS):
        raise ProtocolError(f"table selector {table} exceeds {_TABLE_BITS} bits")
    return (ds_id << 16) | (offset << 2) | table


def unpack_addr(addr: int) -> tuple[int, int, int]:
    """Decode ``addr`` into ``(ds_id, offset, table)``."""
    if not 0 <= addr < (1 << 32):
        raise ProtocolError(f"addr {addr:#x} is not a 32-bit value")
    return (addr >> 16) & 0xFFFF, (addr >> 2) & 0x3FFF, addr & 0x3


# A table access performed by the register file. Arguments are
# (table, ds_id, offset) for reads; writes get the value appended.
TableReader = Callable[[int, int, int], int]
TableWriter = Callable[[int, int, int, int], None]


class CpaRegisterFile:
    """The hardware side of one control plane adaptor.

    The register file holds ``ident``/``type`` identification plus the
    ``addr``/``cmd``/``data`` access registers; issuing a command calls
    back into the owning control plane to touch the selected table cell.
    """

    def __init__(
        self,
        ident: str,
        type_code: str,
        reader: TableReader,
        writer: TableWriter,
    ):
        if len(ident) > 12:
            raise ProtocolError(f"ident {ident!r} longer than 12 bytes")
        if len(type_code) != 1:
            raise ProtocolError("type code must be a single character")
        self.ident = ident
        self.type_code = type_code
        self._reader = reader
        self._writer = writer
        self.addr = 0
        self.data = 0
        self.last_cmd: Optional[int] = None

    # -- convenience API used by the firmware's CPA driver ---------------

    def write_addr(self, ds_id: int, offset: int, table: int) -> None:
        self.addr = pack_addr(ds_id, offset, table)

    def issue(self, cmd: int) -> None:
        """Write the ``cmd`` register, performing the selected access."""
        ds_id, offset, table = unpack_addr(self.addr)
        if cmd == CMD_READ:
            self.data = int(self._reader(table, ds_id, offset)) & _DATA_MASK
        elif cmd == CMD_WRITE:
            self._writer(table, ds_id, offset, self.data)
        else:
            raise ProtocolError(f"unknown command {cmd}")
        self.last_cmd = cmd

    def read_cell(self, ds_id: int, offset: int, table: int) -> int:
        """addr-then-READ sequence, returning the ``data`` register."""
        self.write_addr(ds_id, offset, table)
        self.issue(CMD_READ)
        return self.data

    def write_cell(self, ds_id: int, offset: int, table: int, value: int) -> None:
        """addr+data-then-WRITE sequence."""
        self.write_addr(ds_id, offset, table)
        self.data = int(value) & _DATA_MASK
        self.issue(CMD_WRITE)

    # -- raw byte-offset access (what the PRM bus actually does) ---------

    def mmio_read(self, reg_offset: int) -> int:
        """Read a register by its byte offset within the 32-byte block."""
        if reg_offset == REG_IDENT:
            return int.from_bytes(self.ident[:8].encode().ljust(8, b"\0"), "little")
        if reg_offset == REG_IDENT_HIGH:
            return int.from_bytes(self.ident[8:12].encode().ljust(4, b"\0"), "little")
        if reg_offset == REG_TYPE:
            return ord(self.type_code)
        if reg_offset == REG_ADDR:
            return self.addr
        if reg_offset == REG_CMD:
            return self.last_cmd if self.last_cmd is not None else 0
        if reg_offset == REG_DATA:
            return self.data
        raise ProtocolError(f"invalid CPA register offset {reg_offset}")

    def mmio_write(self, reg_offset: int, value: int) -> None:
        """Write a register by byte offset; writing ``cmd`` runs the access."""
        if reg_offset == REG_ADDR:
            if not 0 <= value < (1 << 32):
                raise ProtocolError("addr register is 32 bits")
            self.addr = value
        elif reg_offset == REG_DATA:
            self.data = int(value) & _DATA_MASK
        elif reg_offset == REG_CMD:
            self.issue(value)
        elif reg_offset in (REG_IDENT, REG_IDENT_HIGH, REG_TYPE):
            raise ProtocolError("ident/type registers are read-only")
        else:
            raise ProtocolError(f"invalid CPA register offset {reg_offset}")
