"""The base programmable control plane.

A :class:`ControlPlane` bundles the three DS-id indexed tables, the CPA
register file, the interrupt line to the PRM, and a periodic statistics
window. Component-specific control planes (LLC, memory controller, I/O
bridge, IDE) subclass it, declare their table schemas, and override the
window hook to publish derived statistics (miss rates, bandwidth,
average queueing latency) into the statistics table.

Everything management-side -- the PRM firmware, ``pardtrigger``, trigger
handler scripts -- reaches these tables *only* through the register file,
mirroring the hardware's narrow programming interface.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.programming import (
    CMD_READ,
    CpaRegisterFile,
    ProtocolError,
    TABLE_PARAMETER,
    TABLE_STATISTICS,
    TABLE_TRIGGER,
)
from repro.core.tables import DsidTable, TableError, TableSchema, make_table
from repro.core.triggers import TriggerOp, TriggerRule
from repro.sim.engine import Engine, PS_PER_MS
from repro.sim.trace import NULL_TRACER, Tracer

# Interrupt callbacks receive (control_plane, ds_id, rule).
InterruptCallback = Callable[["ControlPlane", int, TriggerRule], None]

# Register-protocol layout of one trigger slot: offset = slot * SLOT_STRIDE
# + field index. ``fire_count`` is read-only from the protocol.
TRIGGER_FIELDS = ("stat_col", "op", "threshold", "action_id", "enabled", "fire_count")
TRIGGER_SLOT_STRIDE = 8


class TriggerBank:
    """Bounded storage for trigger rules, addressable per (DS-id, slot)."""

    def __init__(self, stats_schema: TableSchema, max_triggers: int = 64):
        if max_triggers <= 0:
            raise ValueError("max_triggers must be positive")
        self.stats_schema = stats_schema
        self.max_triggers = max_triggers
        self._slots: dict[tuple[int, int], dict[str, int]] = {}
        self._rules: dict[tuple[int, int], TriggerRule] = {}

    @property
    def armed_count(self) -> int:
        return len(self._rules)

    def install(
        self,
        ds_id: int,
        stat_column: str,
        op: TriggerOp,
        threshold: int,
        action_id: int = 0,
        slot: Optional[int] = None,
    ) -> int:
        """Install and enable a rule; returns the slot index used."""
        if slot is None:
            slot = 0
            while (ds_id, slot) in self._rules:
                slot += 1
        stat_col = self.stats_schema.offset_of(stat_column)
        for field, value in (
            ("stat_col", stat_col),
            ("op", int(op)),
            ("threshold", int(threshold)),
            ("action_id", int(action_id)),
            ("enabled", 1),
        ):
            self.write_field(ds_id, slot, field, value)
        return slot

    def remove(self, ds_id: int, slot: int) -> None:
        self._slots.pop((ds_id, slot), None)
        self._rules.pop((ds_id, slot), None)

    def remove_ldom(self, ds_id: int) -> None:
        for key in [k for k in self._slots if k[0] == ds_id]:
            del self._slots[key]
        for key in [k for k in self._rules if k[0] == ds_id]:
            del self._rules[key]

    def rules(self) -> list[tuple[int, int, TriggerRule]]:
        """All armed rules as ``(ds_id, slot, rule)``, in stable order."""
        return [(d, s, self._rules[(d, s)]) for d, s in sorted(self._rules)]

    def rule_at(self, ds_id: int, slot: int) -> Optional[TriggerRule]:
        return self._rules.get((ds_id, slot))

    # -- register-protocol cell access ------------------------------------

    def write_field(self, ds_id: int, slot: int, field: str, value: int) -> None:
        raw = self._slots.setdefault((ds_id, slot), {})
        if field == "fire_count":
            raise TableError("trigger fire_count is read-only")
        raw[field] = int(value)
        if field == "enabled":
            if value:
                self._materialize(ds_id, slot, raw)
            else:
                self._rules.pop((ds_id, slot), None)
        elif (ds_id, slot) in self._rules:
            # Live update of an armed rule.
            self._materialize(ds_id, slot, raw)

    def write_cell(self, ds_id: int, offset: int, value: int) -> None:
        slot, field_index = divmod(offset, TRIGGER_SLOT_STRIDE)
        if field_index >= len(TRIGGER_FIELDS):
            raise TableError(f"invalid trigger field offset {offset}")
        self.write_field(ds_id, slot, TRIGGER_FIELDS[field_index], value)

    def read_cell(self, ds_id: int, offset: int) -> int:
        slot, field_index = divmod(offset, TRIGGER_SLOT_STRIDE)
        if field_index >= len(TRIGGER_FIELDS):
            raise TableError(f"invalid trigger field offset {offset}")
        field = TRIGGER_FIELDS[field_index]
        rule = self._rules.get((ds_id, slot))
        if field == "fire_count":
            return rule.fire_count if rule else 0
        if field == "enabled":
            return 1 if rule else 0
        raw = self._slots.get((ds_id, slot))
        if raw is None:
            raise TableError(f"trigger slot {slot} for DS-id {ds_id} is empty")
        return raw.get(field, 0)

    def _materialize(self, ds_id: int, slot: int, raw: dict[str, int]) -> None:
        if len(self._rules) >= self.max_triggers and (ds_id, slot) not in self._rules:
            raise TableError(
                f"trigger table full ({self.max_triggers} entries), "
                f"cannot arm slot {slot} for DS-id {ds_id}"
            )
        previous = self._rules.get((ds_id, slot))
        rule = TriggerRule(
            ds_id=ds_id,
            stat_column=self.stats_schema.column_at(raw.get("stat_col", 0)),
            op=TriggerOp(raw.get("op", 0)),
            threshold=raw.get("threshold", 0),
            action_id=raw.get("action_id", 0),
        )
        if previous is not None:
            rule.fire_count = previous.fire_count
        self._rules[(ds_id, slot)] = rule


class ControlPlane:
    """Base class for all component control planes.

    Subclasses define:

    - ``IDENT`` / ``TYPE_CODE`` -- identification (e.g. ``CACHE_CP`` / 'C')
    - ``PARAMETER_COLUMNS`` / ``STATISTICS_COLUMNS`` -- table schemas
    - :meth:`on_window` -- publish derived per-window statistics
    - :meth:`on_parameter_write` -- react to firmware policy changes
    """

    IDENT = "BASE_CP"
    TYPE_CODE = "?"
    PARAMETER_COLUMNS: Sequence[tuple[str, int]] = (("reserved", 0),)
    STATISTICS_COLUMNS: Sequence[tuple[str, int]] = (("reserved", 0),)

    def __init__(
        self,
        engine: Engine,
        name: str,
        max_entries: int = 256,
        max_triggers: int = 64,
        window_ps: int = PS_PER_MS,
        tracer: Tracer = NULL_TRACER,
    ):
        self.engine = engine
        self.name = name
        self.window_ps = int(window_ps)
        self.tracer = tracer
        self.parameters = make_table(f"{name}.parameters", list(self.PARAMETER_COLUMNS), max_entries)
        self.statistics = make_table(f"{name}.statistics", list(self.STATISTICS_COLUMNS), max_entries)
        self.triggers = TriggerBank(self.statistics.schema, max_triggers)
        self.register_file = CpaRegisterFile(
            self.IDENT, self.TYPE_CODE, self._table_read, self._table_write
        )
        self._interrupt_callback: Optional[InterruptCallback] = None
        self._windows_started = False
        self.interrupts_raised = 0

    # -- PRM attachment ----------------------------------------------------

    def attach_interrupt(self, callback: InterruptCallback) -> None:
        """Connect the interrupt line (called by the PRM when wiring CPAs)."""
        self._interrupt_callback = callback

    # -- LDom lifecycle ------------------------------------------------------

    def allocate_ldom(self, ds_id: int, **parameter_overrides: int) -> None:
        """Allocate parameter and statistics rows for a new DS-id."""
        self.parameters.allocate(ds_id, **parameter_overrides)
        self.statistics.allocate(ds_id)
        self.tracer.emit(self.engine.now, self.name, "ldom_allocated", f"dsid={ds_id}")

    def free_ldom(self, ds_id: int) -> None:
        self.parameters.free(ds_id)
        self.statistics.free(ds_id)
        self.triggers.remove_ldom(ds_id)
        self.tracer.emit(self.engine.now, self.name, "ldom_freed", f"dsid={ds_id}")

    @property
    def ds_ids(self) -> list[int]:
        return self.parameters.ds_ids

    # -- statistics windows --------------------------------------------------

    def start_windows(self) -> None:
        """Begin periodic statistics publication and trigger evaluation."""
        if self._windows_started:
            return
        self._windows_started = True
        self.engine.post(self.window_ps, self._window_tick)

    def _window_tick(self) -> None:
        self.roll_window()
        self.engine.post(self.window_ps, self._window_tick)

    def roll_window(self) -> list[tuple[int, TriggerRule]]:
        """Publish derived statistics, then evaluate armed triggers."""
        self.on_window()
        fired = []
        for ds_id, _slot, rule in self.triggers.rules():
            observed = self.statistics.get_default(ds_id, rule.stat_column, 0)
            if rule.evaluate(observed):
                fired.append((ds_id, rule))
                self._raise_interrupt(ds_id, rule, observed)
        return fired

    def _raise_interrupt(self, ds_id: int, rule: TriggerRule, observed: int) -> None:
        self.interrupts_raised += 1
        self.tracer.emit(
            self.engine.now,
            self.name,
            "trigger_interrupt",
            f"dsid={ds_id} {rule.stat_column}={observed} {rule.op.symbol} {rule.threshold}",
        )
        if self._interrupt_callback is not None:
            self._interrupt_callback(self, ds_id, rule)

    # -- subclass hooks --------------------------------------------------------

    def on_window(self) -> None:
        """Publish derived statistics for the closing window (subclass hook)."""

    def on_parameter_write(self, ds_id: int, column: str, value: int) -> None:
        """React to a firmware parameter write (subclass hook)."""

    # -- register-file plumbing --------------------------------------------------

    def _table_read(self, table: int, ds_id: int, offset: int) -> int:
        if table == TABLE_PARAMETER:
            return self.parameters.read_cell(ds_id, offset)
        if table == TABLE_STATISTICS:
            return self.statistics.read_cell(ds_id, offset)
        if table == TABLE_TRIGGER:
            return self.triggers.read_cell(ds_id, offset)
        raise ProtocolError(f"invalid table selector {table}")

    def _table_write(self, table: int, ds_id: int, offset: int, value: int) -> None:
        if table == TABLE_PARAMETER:
            column = self.parameters.schema.column_at(offset)
            self.parameters.write_cell(ds_id, offset, value)
            self.tracer.emit(
                self.engine.now, self.name, "parameter_write",
                f"dsid={ds_id} {column}={value}",
            )
            self.on_parameter_write(ds_id, column, value)
        elif table == TABLE_STATISTICS:
            # Statistics are hardware-maintained; firmware writes clear them.
            self.statistics.write_cell(ds_id, offset, value)
        elif table == TABLE_TRIGGER:
            self.triggers.write_cell(ds_id, offset, value)
        else:
            raise ProtocolError(f"invalid table selector {table}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ldoms={self.ds_ids}>"
