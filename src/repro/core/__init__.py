"""PARD core: the programmable control-plane framework.

This package is the paper's primary contribution, independent of any
particular hardware resource:

- :mod:`repro.core.tables` -- the three DS-id indexed tables every control
  plane carries (parameter, statistics, trigger; PARD Fig. 2)
- :mod:`repro.core.triggers` -- trigger conditions and comparison operators
- :mod:`repro.core.programming` -- the 32-byte CPA register protocol
  (IDENT / IDENT_HIGH / type / addr / cmd / data; PARD Fig. 6)
- :mod:`repro.core.control_plane` -- the base :class:`ControlPlane` that
  component-specific control planes (LLC, memory, I/O) instantiate
- :mod:`repro.core.tagging` -- DS-id tag registers placed at packet sources
- :mod:`repro.core.ldom` -- logical domains (submachines)
- :mod:`repro.core.address` -- per-LDom physical address mapping
"""

from repro.core.address import AddressMapping, AddressTranslationError
from repro.core.control_plane import ControlPlane
from repro.core.ldom import LDom, LDomState
from repro.core.programming import (
    CMD_READ,
    CMD_WRITE,
    CpaRegisterFile,
    TABLE_PARAMETER,
    TABLE_STATISTICS,
    TABLE_TRIGGER,
    pack_addr,
    unpack_addr,
)
from repro.core.tables import DsidTable, TableSchema
from repro.core.tagging import TagRegister
from repro.core.triggers import TriggerOp, TriggerRule

__all__ = [
    "AddressMapping",
    "AddressTranslationError",
    "CMD_READ",
    "CMD_WRITE",
    "ControlPlane",
    "CpaRegisterFile",
    "DsidTable",
    "LDom",
    "LDomState",
    "TABLE_PARAMETER",
    "TABLE_STATISTICS",
    "TABLE_TRIGGER",
    "TableSchema",
    "TagRegister",
    "TriggerOp",
    "TriggerRule",
    "pack_addr",
    "unpack_addr",
]
