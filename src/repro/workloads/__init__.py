"""Workload models.

Synthetic but behaviourally faithful versions of the paper's workloads:

- :mod:`repro.workloads.memcached` -- an open-loop latency-critical
  key-value server (Poisson arrivals, Zipfian keys, per-request latency
  recording) standing in for memcached 1.4.17 under CloudSuite load
- :mod:`repro.workloads.stream` -- the STREAM bandwidth microbenchmark
- :mod:`repro.workloads.cacheflush` -- the paper's CacheFlush
  microbenchmark (touches more lines than the LLC holds)
- :mod:`repro.workloads.spec` -- synthetic SPEC CPU2006 memory behaviour
  models (437.leslie3d, 470.lbm)
- :mod:`repro.workloads.diskio` -- ``dd``-style disk writers (DiskCopy)
- :mod:`repro.workloads.base` -- the op-stream protocol and combinators
"""

from repro.workloads.base import Boot, Sequence, Workload
from repro.workloads.cacheflush import CacheFlush
from repro.workloads.diskio import DiskCopy
from repro.workloads.memcached import MemcachedServer
from repro.workloads.multiplex import TimeSliced
from repro.workloads.spec import SyntheticSpec, lbm, leslie3d, libquantum, mcf, omnetpp
from repro.workloads.stream import Stream
from repro.workloads.trace import TraceReplay, parse_trace

__all__ = [
    "Boot",
    "CacheFlush",
    "DiskCopy",
    "MemcachedServer",
    "Sequence",
    "Stream",
    "SyntheticSpec",
    "TimeSliced",
    "TraceReplay",
    "Workload",
    "lbm",
    "leslie3d",
    "libquantum",
    "mcf",
    "omnetpp",
    "parse_trace",
]
