"""Time-sliced workload multiplexing with per-slice retagging.

One of the paper's open problems (§10): "how to make OS directly run on
PARD server to support *process-level* DiffServ?" The hardware hook
already exists -- the per-core DS-id tag register -- and the missing
piece is an OS scheduler that rewrites it at context-switch time.

:class:`TimeSliced` models exactly that: it multiplexes several
workloads on one core in round-robin time slices, writing the core's tag
register at every switch, so each process's traffic is tagged with its
own DS-id and the shared-resource control planes can tell co-scheduled
processes apart *within* one LDom.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.workloads.base import Workload


class TimeSliced(Workload):
    """Round-robin multiplexing of workloads with per-slice DS-ids.

    ``entries`` is a sequence of ``(workload, ds_id)``; each gets
    ``slice_cycles`` of execution before the scheduler switches. Memory
    time inside a slice does not count against the slice budget (the
    budget models a tick-based OS scheduler, which charges compute).
    """

    name = "timesliced"

    def __init__(
        self,
        entries: Sequence[tuple[Workload, int]],
        slice_cycles: int = 20_000,
        switch_overhead_cycles: int = 200,
    ):
        super().__init__()
        if not entries:
            raise ValueError("need at least one (workload, ds_id) entry")
        if slice_cycles <= 0:
            raise ValueError("slice_cycles must be positive")
        if switch_overhead_cycles < 0:
            raise ValueError("switch overhead cannot be negative")
        self.entries = list(entries)
        self.slice_cycles = slice_cycles
        self.switch_overhead_cycles = switch_overhead_cycles
        self.context_switches = 0

    def bind(self, core) -> None:
        super().bind(core)
        for workload, _ds_id in self.entries:
            workload.bind(core)

    def _set_tag(self, ds_id: int):
        def write() -> None:
            if self.core is not None:
                self.core.tag.write(ds_id)
        return write

    def ops(self) -> Iterator[tuple]:
        iterators = [iter(w.ops()) for w, _ in self.entries]
        live = list(range(len(self.entries)))
        while live:
            for index in list(live):
                iterator = iterators[index]
                _workload, ds_id = self.entries[index]
                yield ("call", self._set_tag(ds_id))
                if self.switch_overhead_cycles:
                    yield ("compute", self.switch_overhead_cycles)
                self.context_switches += 1
                budget = self.slice_cycles
                while budget > 0:
                    try:
                        op = next(iterator)
                    except StopIteration:
                        live.remove(index)
                        break
                    if op[0] == "compute":
                        budget -= op[1]
                    yield op
