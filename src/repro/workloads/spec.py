"""Synthetic SPEC CPU2006 memory-behaviour models.

The paper runs 437.leslie3d and 470.lbm in LDoms (Fig. 7). We cannot run
SPEC binaries inside a Python architecture simulator, so each benchmark
is modeled by its published memory characteristics: working-set size,
memory intensity (loads per 1000 compute cycles), write share, and the
fraction of accesses with short-term reuse. What the experiments need
from these workloads is their LLC occupancy and memory bandwidth
footprint, which these parameters determine.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.rng import DeterministicRng
from repro.workloads.base import LINE, Workload


class SyntheticSpec(Workload):
    """A parameterized compute/memory mixture.

    Each iteration executes a compute block, then a batch of accesses:
    with probability ``locality`` the batch re-reads the hot subset
    (cache-friendly), otherwise it advances a streaming sweep through the
    full working set.
    """

    name = "spec"

    def __init__(
        self,
        benchmark: str,
        working_set_bytes: int,
        compute_cycles_per_batch: int,
        mlp: int = 4,
        locality: float = 0.5,
        hot_fraction: float = 0.1,
        write_fraction: float = 0.2,
        rng: DeterministicRng | None = None,
    ):
        super().__init__(rng=rng or DeterministicRng(17, name=benchmark))
        if working_set_bytes < LINE * mlp:
            raise ValueError("working set too small")
        if not 0.0 <= locality <= 1.0 or not 0.0 < hot_fraction <= 1.0:
            raise ValueError("locality/hot_fraction must be fractions")
        self.name = benchmark
        self.working_set_bytes = working_set_bytes
        self.compute_cycles_per_batch = compute_cycles_per_batch
        self.mlp = mlp
        self.locality = locality
        self.hot_fraction = hot_fraction
        self.write_fraction = write_fraction

    def ops(self) -> Iterator[tuple]:
        lines = self.working_set_bytes // LINE
        hot_lines = max(self.mlp, int(lines * self.hot_fraction))
        sweep = 0
        while True:
            yield ("compute", self.compute_cycles_per_batch)
            if self.rng.random() < self.locality:
                base = self.rng.randint(0, hot_lines - self.mlp)
                batch = [(base + i) * LINE for i in range(self.mlp)]
            else:
                batch = [((sweep + i) % lines) * LINE for i in range(self.mlp)]
                sweep += self.mlp
            yield ("loads", batch)
            if self.rng.random() < self.write_fraction:
                yield ("store", batch[-1])


def leslie3d(scale: float = 1.0) -> SyntheticSpec:
    """437.leslie3d: moderate working set, mixed reuse, steady bandwidth."""
    return SyntheticSpec(
        benchmark="437.leslie3d",
        working_set_bytes=int((2 << 20) * scale),
        compute_cycles_per_batch=60,
        mlp=4,
        locality=0.55,
        hot_fraction=0.15,
        write_fraction=0.25,
    )


def lbm(scale: float = 1.0) -> SyntheticSpec:
    """470.lbm: streaming-dominated, large footprint, write-heavy."""
    return SyntheticSpec(
        benchmark="470.lbm",
        working_set_bytes=int((6 << 20) * scale),
        compute_cycles_per_batch=30,
        mlp=6,
        locality=0.15,
        hot_fraction=0.05,
        write_fraction=0.4,
    )


def mcf(scale: float = 1.0) -> SyntheticSpec:
    """429.mcf: pointer chasing over a huge graph -- latency-bound,
    almost no MLP, very low locality."""
    return SyntheticSpec(
        benchmark="429.mcf",
        working_set_bytes=int((8 << 20) * scale),
        compute_cycles_per_batch=20,
        mlp=1,
        locality=0.25,
        hot_fraction=0.02,
        write_fraction=0.1,
    )


def libquantum(scale: float = 1.0) -> SyntheticSpec:
    """462.libquantum: perfectly streaming over one large vector."""
    return SyntheticSpec(
        benchmark="462.libquantum",
        working_set_bytes=int((4 << 20) * scale),
        compute_cycles_per_batch=16,
        mlp=8,
        locality=0.02,
        hot_fraction=0.01,
        write_fraction=0.5,
    )


def omnetpp(scale: float = 1.0) -> SyntheticSpec:
    """471.omnetpp: event-queue heavy, medium footprint, decent reuse."""
    return SyntheticSpec(
        benchmark="471.omnetpp",
        working_set_bytes=int((3 << 20) * scale),
        compute_cycles_per_batch=90,
        mlp=2,
        locality=0.65,
        hot_fraction=0.2,
        write_fraction=0.3,
    )
