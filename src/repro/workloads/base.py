"""The workload protocol and combinators.

A workload is an object with an ``ops()`` generator producing the op
tuples understood by :class:`repro.cpu.core.CpuCore`. Workloads address
*LDom-physical* memory: their addresses start at 0 and the memory control
plane relocates them, which is exactly how a guest OS runs unmodified
inside an LDom.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.sim.rng import DeterministicRng

LINE = 64


class Workload:
    """Base class; subclasses implement :meth:`ops`."""

    name = "workload"

    def __init__(self, rng: DeterministicRng | None = None):
        self.rng = rng or DeterministicRng(1, name=self.name)
        self.core = None

    def bind(self, core) -> None:
        """Called by the core when the workload is assigned."""
        self.core = core
        self.on_bind()

    def on_bind(self) -> None:
        """Subclass hook run at assignment time."""

    def ops(self) -> Iterator[tuple]:
        raise NotImplementedError


class Sequence(Workload):
    """Run workloads one after another (e.g. boot phase, then app)."""

    name = "sequence"

    def __init__(self, stages: Iterable[Workload]):
        super().__init__()
        self.stages = list(stages)
        if not self.stages:
            raise ValueError("a Sequence needs at least one stage")

    def bind(self, core) -> None:
        super().bind(core)
        for stage in self.stages:
            stage.bind(core)

    def ops(self) -> Iterator[tuple]:
        for stage in self.stages:
            yield from stage.ops()


class Boot(Workload):
    """A coarse OS-boot model: touch memory sequentially while computing.

    Fig. 7's timeline shows each LDom booting Linux (visible as a burst
    of memory traffic) before its application starts; this reproduces
    that phase's traffic without simulating a kernel.
    """

    name = "boot"

    def __init__(
        self,
        footprint_bytes: int = 1 << 20,
        compute_cycles_per_line: int = 40,
        mlp: int = 4,
        store_every: int = 4,
    ):
        super().__init__()
        if footprint_bytes < LINE:
            raise ValueError("boot footprint smaller than one cache line")
        self.footprint_bytes = footprint_bytes
        self.compute_cycles_per_line = compute_cycles_per_line
        self.mlp = mlp
        self.store_every = store_every

    def ops(self) -> Iterator[tuple]:
        lines = self.footprint_bytes // LINE
        batch: list[int] = []
        for i in range(lines):
            addr = i * LINE
            if self.store_every and i % self.store_every == 0:
                if batch:
                    yield ("loads", batch)
                    batch = []
                yield ("store", addr)
            else:
                batch.append(addr)
                if len(batch) >= self.mlp:
                    yield ("loads", batch)
                    batch = []
            yield ("compute", self.compute_cycles_per_line)
        if batch:
            yield ("loads", batch)
