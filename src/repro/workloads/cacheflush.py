"""The CacheFlush microbenchmark (Fig. 7, LDom2).

Walks a region larger than the whole LLC, line by line, evicting
everything else. The paper uses it to demonstrate that an unpartitioned
neighbour can destroy a co-runner's cache occupancy -- and that a way
mask stops it.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import LINE, Workload


class CacheFlush(Workload):
    """Repeatedly touch ``flush_bytes`` of distinct lines."""

    name = "cacheflush"

    def __init__(
        self,
        flush_bytes: int = 8 << 20,
        mlp: int = 8,
        compute_cycles_per_batch: int = 8,
        passes: int = 0,  # 0 = run forever
    ):
        super().__init__()
        if flush_bytes < LINE * mlp:
            raise ValueError("flush region too small")
        self.flush_bytes = flush_bytes
        self.mlp = mlp
        self.compute_cycles_per_batch = compute_cycles_per_batch
        self.passes = passes
        self.passes_completed = 0

    def ops(self) -> Iterator[tuple]:
        lines = self.flush_bytes // LINE
        while self.passes == 0 or self.passes_completed < self.passes:
            for start in range(0, lines, self.mlp):
                batch = [
                    (start + i) * LINE for i in range(self.mlp) if start + i < lines
                ]
                yield ("loads", batch)
                if self.compute_cycles_per_batch:
                    yield ("compute", self.compute_cycles_per_batch)
            self.passes_completed += 1
