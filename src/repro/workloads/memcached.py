"""The open-loop memcached model.

The paper's §7.1.2 setup: memcached serves an open-loop request stream
(client and server co-located in the LDom); the metric is the
95th-percentile response time versus offered load (Fig. 8) and the LLC
miss-rate timeline (Fig. 9).

The model: requests arrive as a Poisson process at ``rps``; each request
touches a Zipf-popular object in a fixed working set (hash-table reads
dominate memcached's memory behaviour) interleaved with protocol/compute
cycles. Response time = queueing delay in the arrival queue + service
time, where service time is governed by the memory system -- so LLC
contention and memory queueing feed straight into the tail, which is the
paper's causal chain.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.sim.engine import Engine, PS_PER_MS
from repro.sim.rng import DeterministicRng
from repro.sim.stats import LatencyRecorder
from repro.workloads.base import LINE, Workload


class MemcachedServer(Workload):
    """A single-core memcached worker with its own open-loop client."""

    name = "memcached"

    def __init__(
        self,
        engine: Engine,
        rps: float,
        working_set_bytes: int = 2 << 20,
        object_lines: int = 4,
        loads_per_request: int = 160,
        mlp: int = 2,
        compute_cycles_per_batch: int = 24,
        zipf_alpha: float = 0.9,
        warmup_ps: int = PS_PER_MS,
        arrivals_until_ps: Optional[int] = None,
        max_queue: int = 4096,
        rng: DeterministicRng | None = None,
        telemetry=None,
        ds_id: int = 0,
    ):
        super().__init__(rng=rng or DeterministicRng(23, name="memcached"))
        if rps <= 0:
            raise ValueError("rps must be positive")
        if working_set_bytes < LINE * object_lines:
            raise ValueError("working set too small")
        self.engine = engine
        self.rps = rps
        self.working_set_bytes = working_set_bytes
        self.object_lines = object_lines
        self.loads_per_request = loads_per_request
        self.mlp = mlp
        self.compute_cycles_per_batch = compute_cycles_per_batch
        self.zipf_alpha = zipf_alpha
        self.warmup_ps = warmup_ps
        self.arrivals_until_ps = arrivals_until_ps
        self.max_queue = max_queue
        self.latencies = LatencyRecorder("memcached.response_ms")
        self.queue: deque[int] = deque()
        self.requests_arrived = 0
        self.requests_served = 0
        self.requests_dropped = 0
        self._arrivals_started = False
        self._interarrival_ps = PS_PER_MS * 1000.0 / rps  # mean, in ps
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        self._latency_hist = None
        if self.telemetry is not None:
            prefix = f"workload.memcached.ds{ds_id}"
            reg = self.telemetry.registry
            reg.gauge_fn(f"{prefix}.arrived", lambda: self.requests_arrived)
            reg.gauge_fn(f"{prefix}.served", lambda: self.requests_served)
            reg.gauge_fn(f"{prefix}.dropped", lambda: self.requests_dropped)
            reg.gauge_fn(f"{prefix}.queue_depth", lambda: len(self.queue))
            # Response time in ms: 1 us .. ~16 ms in log-spaced buckets.
            self._latency_hist = reg.histogram(
                f"{prefix}.response_ms", start=0.001, growth=2.0, count=15
            )

    # -- client (arrival process) ---------------------------------------------

    def on_bind(self) -> None:
        if not self._arrivals_started:
            self._arrivals_started = True
            self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        gap = self.rng.exponential(self._interarrival_ps)
        self.engine.post(max(1, int(gap)), self._arrive)

    def _arrive(self) -> None:
        now = self.engine.now
        if self.arrivals_until_ps is not None and now >= self.arrivals_until_ps:
            return
        self.requests_arrived += 1
        if len(self.queue) >= self.max_queue:
            self.requests_dropped += 1
        else:
            self.queue.append(now)
            if self.core is not None:
                self.core.wake()
        self._schedule_next_arrival()

    # -- server loop --------------------------------------------------------------

    def ops(self) -> Iterator[tuple]:
        num_objects = self.working_set_bytes // (self.object_lines * LINE)
        batches = max(1, self.loads_per_request // self.mlp)
        while True:
            if not self.queue:
                yield ("block",)
                continue
            arrived_at = self.queue.popleft()
            for _batch in range(batches):
                yield ("compute", self.compute_cycles_per_batch)
                obj = self.rng.zipf_index(num_objects, self.zipf_alpha)
                base_line = obj * self.object_lines
                batch = [
                    (base_line + self.rng.randint(0, self.object_lines - 1)) * LINE
                    for _ in range(self.mlp)
                ]
                yield ("loads", batch)
            yield ("call", self._make_completion(arrived_at))

    def _make_completion(self, arrived_at: int):
        def complete() -> None:
            self.requests_served += 1
            if arrived_at >= self.warmup_ps:
                latency_ms = (self.engine.now - arrived_at) / PS_PER_MS
                self.latencies.record(latency_ms)
                if self._latency_hist is not None:
                    self._latency_hist.record(latency_ms)
        return complete

    # -- results ---------------------------------------------------------------------

    def p95_ms(self) -> float:
        return self.latencies.p95()

    def mean_ms(self) -> float:
        return self.latencies.mean

    def throughput_rps(self, duration_ps: int) -> float:
        if duration_ps <= 0:
            return 0.0
        return self.requests_served / (duration_ps / (PS_PER_MS * 1000.0))
