"""Disk I/O workloads.

``DiskCopy`` models the paper's Fig. 10 experiment:
``dd if=/dev/zero of=/dev/sdb bs=32M count=16`` -- a loop of synchronous
block writes. Each iteration issues one PIO block-write command to the
IDE controller (through the I/O bridge when one is configured as the
core's I/O port) and blocks until the transfer completes, so the achieved
bandwidth is whatever the IDE control plane's quota grants the LDom.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.packet import IoOp, IoPacket
from repro.workloads.base import Workload


class DiskCopy(Workload):
    """A dd-style synchronous block writer."""

    name = "diskcopy"

    def __init__(
        self,
        block_bytes: int = 32 << 20,
        count: int = 16,
        device: str = "ide0",
        compute_cycles_between: int = 2_000,
        read: bool = False,
    ):
        super().__init__()
        if block_bytes <= 0:
            raise ValueError("block size must be positive")
        if count < 0:
            raise ValueError("count must be non-negative (0 = forever)")
        self.block_bytes = block_bytes
        self.count = count
        self.device = device
        self.compute_cycles_between = compute_cycles_between
        self.read = read
        self.blocks_written = 0

    def ops(self) -> Iterator[tuple]:
        op = IoOp.PIO_READ if self.read else IoOp.PIO_WRITE
        written = 0
        while self.count == 0 or written < self.count:
            packet = IoPacket(device=self.device, op=op, value=self.block_bytes)
            yield ("io", packet)
            written += 1
            self.blocks_written = written
            if self.compute_cycles_between:
                yield ("compute", self.compute_cycles_between)

    @property
    def bytes_written(self) -> int:
        return self.blocks_written * self.block_bytes
