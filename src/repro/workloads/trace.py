"""Trace-driven workloads.

Lets users replay recorded access traces through the tagged memory
hierarchy -- the standard way to drive an architectural simulator with
real application behaviour when the application itself cannot run
inside it.

Trace records are ``(kind, value)`` tuples or text lines:

====== ======================= =================================
kind   value                   text form
====== ======================= =================================
R      address                 ``R 0x1a40``
W      address                 ``W 6720``
C      cycles of compute       ``C 120``
====== ======================= =================================

Addresses are LDom-physical, like every other workload.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.workloads.base import Workload


class TraceError(ValueError):
    """A malformed trace record."""


def parse_trace_line(line: str, line_number: int = 0) -> tuple[str, int]:
    """Parse one text trace line into a ``(kind, value)`` record."""
    text = line.split("#", 1)[0].strip()
    if not text:
        raise TraceError(f"line {line_number}: empty record")
    parts = text.split()
    if len(parts) != 2:
        raise TraceError(f"line {line_number}: expected 'KIND VALUE', got {line!r}")
    kind = parts[0].upper()
    if kind not in ("R", "W", "C"):
        raise TraceError(f"line {line_number}: unknown kind {kind!r}")
    try:
        value = int(parts[1], 0)
    except ValueError:
        raise TraceError(f"line {line_number}: bad value {parts[1]!r}")
    if value < 0:
        raise TraceError(f"line {line_number}: negative value")
    return kind, value


def parse_trace(lines: Iterable[str]) -> list[tuple[str, int]]:
    """Parse a text trace, skipping blank and comment-only lines."""
    records = []
    for number, line in enumerate(lines, start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        records.append(parse_trace_line(line, number))
    return records


class TraceReplay(Workload):
    """Replay a list of trace records, optionally in a loop."""

    name = "trace"

    def __init__(
        self,
        records: Iterable[tuple[str, int]],
        repeat: int = 1,
        mlp: int = 1,
    ):
        super().__init__()
        self.records = list(records)
        if not self.records:
            raise TraceError("empty trace")
        if repeat < 0:
            raise ValueError("repeat must be non-negative (0 = forever)")
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        self.repeat = repeat
        self.mlp = mlp
        self.replays_completed = 0
        for record in self.records:
            if record[0] not in ("R", "W", "C"):
                raise TraceError(f"unknown record kind {record[0]!r}")

    @classmethod
    def from_text(cls, text: str, **kwargs) -> "TraceReplay":
        return cls(parse_trace(text.splitlines()), **kwargs)

    def ops(self) -> Iterator[tuple]:
        while self.repeat == 0 or self.replays_completed < self.repeat:
            batch: list[int] = []
            for kind, value in self.records:
                if kind == "R":
                    batch.append(value)
                    if len(batch) >= self.mlp:
                        yield ("loads", batch)
                        batch = []
                    continue
                if batch:
                    yield ("loads", batch)
                    batch = []
                if kind == "W":
                    yield ("store", value)
                else:
                    yield ("compute", value)
            if batch:
                yield ("loads", batch)
            self.replays_completed += 1
