"""The STREAM bandwidth microbenchmark.

Streams over arrays much larger than the LLC with high memory-level
parallelism and little compute per element -- the canonical cache/memory
bandwidth antagonist the paper co-locates with memcached in §7.1.2.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import LINE, Workload


class Stream(Workload):
    """Sequential sweeps over a large array, forever (until sim end)."""

    name = "stream"

    def __init__(
        self,
        array_bytes: int = 4 << 20,
        mlp: int = 4,
        compute_cycles_per_batch: int = 40,
        write_fraction: float = 0.25,
        start_delay_cycles: int = 0,
    ):
        super().__init__()
        if array_bytes < LINE * mlp:
            raise ValueError("array too small for the configured MLP")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.array_bytes = array_bytes
        self.mlp = mlp
        self.compute_cycles_per_batch = compute_cycles_per_batch
        self.write_fraction = write_fraction
        self.start_delay_cycles = start_delay_cycles
        self.sweeps_completed = 0

    def ops(self) -> Iterator[tuple]:
        if self.start_delay_cycles:
            yield ("compute", self.start_delay_cycles)
        lines = self.array_bytes // LINE
        write_period = int(1 / self.write_fraction) if self.write_fraction else 0
        index = 0
        while True:  # runs until the simulation window closes
            batch = []
            for _ in range(self.mlp):
                batch.append((index % lines) * LINE)
                index += 1
            yield ("loads", batch)
            if write_period and (index // self.mlp) % write_period == 0:
                yield ("store", ((index - 1) % lines) * LINE)
            yield ("compute", self.compute_cycles_per_batch)
            if index >= lines:
                index = 0
                self.sweeps_completed += 1
