"""The tagged interrupt controller.

PARD §4.1 augments the APIC by *duplicating the interrupt route table per
DS-id*: when a device raises an interrupt it attaches its DS-id, and the
APIC uses that DS-id to pick the route table, forwarding the interrupt to
the owning LDom's cores. Without this, a disk completion for LDom1 could
wake a core belonging to LDom2 -- interrupts are one of the ICN packet
types that must be virtualized for fully hardware-supported
virtualization.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.packet import InterruptPacket
from repro.sim.trace import NULL_TRACER, Tracer

InterruptHandler = Callable[[InterruptPacket], None]

DELIVERY_LATENCY_PS = 500  # one CPU cycle of delivery latency


class RouteError(KeyError):
    """No route exists for an interrupt's (DS-id, vector)."""


class Apic(Component):
    """An interrupt controller with per-DS-id route tables."""

    def __init__(
        self,
        engine: Engine,
        name: str = "apic",
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        super().__init__(engine, name)
        self.tracer = tracer
        # route_tables[ds_id][vector] -> core_id
        self._route_tables: dict[int, dict[int, int]] = {}
        self._core_handlers: dict[int, InterruptHandler] = {}
        self.delivered = 0
        self.dropped = 0
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        if self.telemetry is not None:
            reg = self.telemetry.registry
            reg.gauge_fn(f"io.{name}.delivered", lambda: self.delivered)
            reg.gauge_fn(f"io.{name}.dropped", lambda: self.dropped)

    # -- configuration (programmed by the PRM / firmware) ------------------

    def register_core(self, core_id: int, handler: InterruptHandler) -> None:
        """Attach the per-core interrupt pin."""
        self._core_handlers[core_id] = handler

    def set_route(self, ds_id: int, vector: int, core_id: int) -> None:
        """Route ``(ds_id, vector)`` interrupts to ``core_id``."""
        if core_id not in self._core_handlers:
            raise RouteError(f"core {core_id} is not registered with {self.name}")
        self._route_tables.setdefault(ds_id, {})[vector] = core_id

    def clear_routes(self, ds_id: int) -> None:
        self._route_tables.pop(ds_id, None)

    def route_of(self, ds_id: int, vector: int) -> Optional[int]:
        table = self._route_tables.get(ds_id)
        if table is None:
            return None
        return table.get(vector)

    # -- delivery -------------------------------------------------------------

    def raise_interrupt(self, packet: InterruptPacket) -> None:
        """Deliver a tagged interrupt through the DS-id's route table.

        Interrupts with no route are dropped and counted -- the hardware
        equivalent of an unassigned vector, and a condition tests assert
        never happens for a correctly configured LDom.
        """
        core_id = self.route_of(packet.ds_id, packet.vector)
        if core_id is None:
            self.dropped += 1
            self.tracer.emit(
                self.now, self.name, "interrupt_dropped",
                f"dsid={packet.ds_id} vector={packet.vector}",
            )
            return
        handler = self._core_handlers[core_id]
        self.tracer.emit(
            self.now, self.name, "interrupt_routed",
            f"dsid={packet.ds_id} vector={packet.vector} core={core_id}",
        )
        self.post(DELIVERY_LATENCY_PS, lambda: self._deliver(handler, packet))

    def _deliver(self, handler: InterruptHandler, packet: InterruptPacket) -> None:
        self.delivered += 1
        handler(packet)
