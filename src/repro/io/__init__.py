"""I/O substrate with PARD control planes.

- :mod:`repro.io.apic` -- interrupt controller with per-DS-id duplicated
  route tables (§4.1)
- :mod:`repro.io.dma` -- DMA engines whose tag registers are loaded from
  the descriptor write and stamped onto every transfer (§4.1)
- :mod:`repro.io.disk` -- the IDE controller with a bandwidth-quota
  control plane (Fig. 10)
- :mod:`repro.io.nic` -- the multi-queue NIC virtualized into v-NICs with
  per-v-NIC tag registers and MAC-based demux (§4.1)
- :mod:`repro.io.bridge` -- the I/O bridge control plane (device access
  masks per DS-id, PIO accounting)
"""

from repro.io.apic import Apic
from repro.io.bridge import IoBridge, IoBridgeControlPlane, IoAccessError
from repro.io.disk import IdeControlPlane, IdeController
from repro.io.dma import DmaEngine
from repro.io.nic import MultiQueueNic, NicControlPlane

__all__ = [
    "Apic",
    "DmaEngine",
    "IdeControlPlane",
    "IdeController",
    "IoAccessError",
    "IoBridge",
    "IoBridgeControlPlane",
    "MultiQueueNic",
    "NicControlPlane",
]
