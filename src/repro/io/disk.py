"""The IDE/disk controller and its control plane (Fig. 10).

Table 3 gives the IDE control plane a single ``bandwidth`` parameter (a
percentage quota per DS-id) and per-DS-id bandwidth statistics. The
controller shares the physical disk's bandwidth between LDoms with
deficit-weighted round robin over fixed-size service chunks: an LDom with
an explicit quota receives that percentage of the disk; LDoms without a
quota share the remainder equally. Reprogramming the quota through the
CPA protocol takes effect at the next chunk boundary, which is what
Fig. 10's mid-run ``echo 80 > .../bandwidth`` exercises.

Disk writes are "dd"-style synchronous block writes: the guest issues a
PIO command carrying the byte count; the controller's DMA engine streams
the data out of memory (tagged with the requester's DS-id), and the
response -- plus a tagged completion interrupt -- arrives when the last
chunk is on the platter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.core.control_plane import ControlPlane
from repro.io.dma import DmaEngine
from repro.sim.component import Component, ResponseCallback
from repro.sim.engine import Engine, PS_PER_S
from repro.sim.packet import IoOp, IoPacket
from repro.sim.trace import NULL_TRACER, Tracer


class IdeControlPlane(ControlPlane):
    """Control plane for the IDE controller."""

    IDENT = "IDE_CP"
    TYPE_CODE = "I"
    PARAMETER_COLUMNS = (("bandwidth", 0),)  # percent quota; 0 = fair share
    STATISTICS_COLUMNS = (("bandwidth", 0), ("io_cnt", 0), ("bytes_total", 0))

    def __init__(self, engine: Engine, name: str = "cpa_ide", **kwargs):
        super().__init__(engine, name, **kwargs)
        self._window_bytes: dict[int, int] = {}
        self._window_ios: dict[int, int] = {}

    def quota(self, ds_id: int) -> int:
        return self.parameters.get_default(ds_id, "bandwidth", 0)

    def weight(self, ds_id: int) -> float:
        """Scheduling weight: explicit quota, or an equal share of what
        the explicit quotas leave over."""
        quota = self.quota(ds_id)
        if quota > 0:
            return float(quota)
        explicit_total = sum(
            self.parameters.get(d, "bandwidth")
            for d in self.parameters.ds_ids
            if self.parameters.get(d, "bandwidth") > 0
        )
        default_count = sum(
            1 for d in self.parameters.ds_ids
            if self.parameters.get(d, "bandwidth") == 0
        ) or 1
        return max(1.0, (100.0 - explicit_total) / default_count)

    def record_io(self, ds_id: int, nbytes: int) -> None:
        self._window_bytes[ds_id] = self._window_bytes.get(ds_id, 0) + nbytes
        self._window_ios[ds_id] = self._window_ios.get(ds_id, 0) + 1

    def on_window(self) -> None:
        for ds_id in self.statistics.ds_ids:
            window_bytes = self._window_bytes.pop(ds_id, 0)
            self.statistics.set(ds_id, "bandwidth", window_bytes)
            self.statistics.add(ds_id, "bytes_total", window_bytes)
            self.statistics.add(ds_id, "io_cnt", self._window_ios.pop(ds_id, 0))

    def last_window_bandwidth_bytes(self, ds_id: int) -> int:
        if not self.statistics.has(ds_id):
            return 0
        return self.statistics.get(ds_id, "bandwidth")


@dataclass
class _Transfer:
    ds_id: int
    total_bytes: int
    remaining_bytes: int
    to_device: bool
    on_response: ResponseCallback
    packet: IoPacket
    started_at_ps: int = 0


class IdeController(Component):
    """A bandwidth-shared disk controller with a PARD control plane."""

    def __init__(
        self,
        engine: Engine,
        control: Optional[IdeControlPlane] = None,
        memory: Optional[Component] = None,
        apic=None,
        total_bandwidth_bytes_per_s: int = 100 * 1024 * 1024,
        chunk_bytes: int = 64 * 1024,
        pio_latency_ps: int = 2_000,
        name: str = "ide0",
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        super().__init__(engine, name)
        if total_bandwidth_bytes_per_s <= 0 or chunk_bytes <= 0:
            raise ValueError("bandwidth and chunk size must be positive")
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        if self.telemetry is not None:
            self.telemetry.registry.gauge_fn(
                f"io.{name}.completed_transfers", lambda: self.completed_transfers
            )
        self.control = control
        self.total_bandwidth_bytes_per_s = total_bandwidth_bytes_per_s
        self.chunk_bytes = chunk_bytes
        self.pio_latency_ps = pio_latency_ps
        self.tracer = tracer
        self.dma = DmaEngine(engine, f"{name}.dma", memory, apic=apic, chunk_bytes=chunk_bytes)
        self._queues: dict[int, deque[_Transfer]] = {}
        self._deficit: dict[int, float] = {}
        self._rotation: list[int] = []
        self._current: Optional[int] = None
        self._busy = False
        self.completed_transfers = 0

    # -- PIO entry (the guest's "dd" command) -------------------------------

    def handle_request(self, packet: IoPacket, on_response: ResponseCallback) -> None:
        """Accept a block-transfer command.

        ``packet.value`` carries the byte count; PIO_WRITE writes to disk
        (memory -> device), PIO_READ reads from it.
        """
        if packet.value <= 0:
            raise ValueError(f"{self.name}: transfer size must be positive")
        # The descriptor write latches the requester's DS-id (§4.1 step 1).
        self.dma.program(packet.ds_id)
        transfer = _Transfer(
            ds_id=packet.ds_id,
            total_bytes=packet.value,
            remaining_bytes=packet.value,
            to_device=packet.op is IoOp.PIO_WRITE,
            on_response=on_response,
            packet=packet,
            started_at_ps=self.now,
        )
        self.post(self.pio_latency_ps, lambda: self._enqueue(transfer))

    def _enqueue(self, transfer: _Transfer) -> None:
        queue = self._queues.get(transfer.ds_id)
        if queue is None:
            queue = deque()
            self._queues[transfer.ds_id] = queue
            self._deficit.setdefault(transfer.ds_id, 0.0)
            self._rotation.append(transfer.ds_id)
        queue.append(transfer)
        self._pump()

    # -- deficit-weighted round robin over chunks --------------------------------

    def _pump(self) -> None:
        if self._busy:
            return
        ds_id = self._select_dsid()
        if ds_id is None:
            return
        transfer = self._queues[ds_id][0]
        chunk = min(self.chunk_bytes, transfer.remaining_bytes)
        self._deficit[ds_id] -= chunk
        self._busy = True
        service_ps = int(chunk * PS_PER_S / self.total_bandwidth_bytes_per_s)
        self.post(service_ps, lambda: self._chunk_done(transfer, chunk))

    def _select_dsid(self) -> Optional[int]:
        """Deficit round robin: each turn adds a weight-proportional
        quantum; a DS-id keeps the disk while its deficit covers chunks.
        """
        active = [d for d in self._rotation if self._queues.get(d)]
        if not active:
            self._current = None
            return None
        if self._current is not None:
            queue = self._queues.get(self._current)
            if queue and self._deficit[self._current] >= self._head_chunk(self._current):
                return self._current
            self._current = None
        for _ in range(len(self._rotation) * 64):
            ds_id = self._rotation[0]
            self._rotation.append(self._rotation.pop(0))
            if not self._queues.get(ds_id):
                self._deficit[ds_id] = 0.0  # idle queues carry no credit
                continue
            quantum = self._weight(ds_id) / 100.0 * self.chunk_bytes * len(active)
            self._deficit[ds_id] += max(quantum, 1.0)
            if self._deficit[ds_id] >= self._head_chunk(ds_id):
                self._current = ds_id
                return ds_id
        return None

    def _head_chunk(self, ds_id: int) -> int:
        """Size of the next chunk the head transfer will need."""
        transfer = self._queues[ds_id][0]
        return min(self.chunk_bytes, transfer.remaining_bytes)

    def _weight(self, ds_id: int) -> float:
        if self.control is None:
            return 1.0
        return self.control.weight(ds_id)

    def _chunk_done(self, transfer: _Transfer, chunk: int) -> None:
        transfer.remaining_bytes -= chunk
        finished = transfer.remaining_bytes <= 0
        # Stream the chunk through memory, tagged with the owner's DS-id;
        # only the final chunk raises the completion interrupt.
        self.dma.transfer(
            chunk,
            to_device=transfer.to_device,
            raise_interrupt=finished,
            ds_id=transfer.ds_id,
        )
        if self.control is not None:
            self.control.record_io(transfer.ds_id, chunk)
        if finished:
            queue = self._queues[transfer.ds_id]
            queue.popleft()
            self.completed_transfers += 1
            self.tracer.emit(
                self.now, self.name, "transfer_done",
                f"dsid={transfer.ds_id} bytes={transfer.total_bytes}",
            )
            transfer.on_response(transfer.packet)
        self._busy = False
        self._pump()

    # -- introspection -----------------------------------------------------------------

    def queued_bytes(self, ds_id: int) -> int:
        queue = self._queues.get(ds_id)
        if not queue:
            return 0
        return sum(t.remaining_bytes for t in queue)
