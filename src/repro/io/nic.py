"""The multi-queue NIC virtualized into v-NICs (PARD §4.1).

For the from-device DMA direction the source of an incoming packet is
unknown, so tagging needs help: the physical NIC is split into v-NICs,
each with its own MAC address and tag register holding the owning LDom's
DS-id. The MAC demux picks the v-NIC, and that v-NIC's tag register
stamps the receive DMA and the completion interrupt. Frames for unknown
MACs are dropped (counted), exactly like a real NIC without promiscuous
mode.

Transmit is simpler -- the send request already carries the core's DS-id
-- and shares a single bandwidth-limited FIFO for the wire.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.control_plane import ControlPlane
from repro.core.tagging import TagRegister
from repro.io.dma import DmaEngine
from repro.sim.component import Component
from repro.sim.engine import Engine, PS_PER_S
from repro.sim.trace import NULL_TRACER, Tracer


class NicControlPlane(ControlPlane):
    """Control plane for the NIC: v-NIC tag registers + traffic stats."""

    IDENT = "NIC_CP"
    TYPE_CODE = "N"
    PARAMETER_COLUMNS = (("vnic_enabled", 1),)
    STATISTICS_COLUMNS = (("rx_bytes", 0), ("tx_bytes", 0), ("rx_dropped", 0))

    def __init__(self, engine: Engine, name: str = "cpa_nic", **kwargs):
        super().__init__(engine, name, **kwargs)
        self._window: dict[tuple[int, str], int] = {}

    def record_traffic(self, ds_id: int, column: str, amount: int) -> None:
        key = (ds_id, column)
        self._window[key] = self._window.get(key, 0) + amount

    def on_window(self) -> None:
        for ds_id in self.statistics.ds_ids:
            for column in ("rx_bytes", "tx_bytes", "rx_dropped"):
                self.statistics.set(
                    ds_id, column, self._window.pop((ds_id, column), 0)
                )


@dataclass
class VNic:
    """One virtual NIC: a MAC address plus a DS-id tag register."""

    mac: str
    tag: TagRegister
    rx_frames: int = 0


class MultiQueueNic(Component):
    """An Intel 82599-style multi-queue NIC with per-v-NIC tagging."""

    def __init__(
        self,
        engine: Engine,
        memory: Optional[Component] = None,
        apic=None,
        control: Optional[NicControlPlane] = None,
        wire_bandwidth_bytes_per_s: int = 10 * 1024 * 1024 * 1024 // 8,  # 10 GbE
        interrupt_vector: int = 11,
        name: str = "nic0",
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        super().__init__(engine, name)
        self.control = control
        self.wire_bandwidth_bytes_per_s = wire_bandwidth_bytes_per_s
        self.tracer = tracer
        self.dma = DmaEngine(
            engine, f"{name}.dma", memory, apic=apic, interrupt_vector=interrupt_vector
        )
        self._vnics: dict[str, VNic] = {}
        self._tx_queue: deque[tuple[int, int, Optional[Callable[[], None]]]] = deque()
        self._tx_busy = False
        self.rx_dropped = 0
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        if self.telemetry is not None:
            reg = self.telemetry.registry
            reg.gauge_fn(f"io.{name}.rx_dropped", lambda: self.rx_dropped)
            reg.gauge_fn(f"io.{name}.vnics", lambda: len(self._vnics))

    # -- v-NIC management (programmed by the firmware) -------------------------

    def add_vnic(self, mac: str, ds_id: int) -> VNic:
        if mac in self._vnics:
            raise ValueError(f"MAC {mac} already assigned")
        vnic = VNic(mac=mac, tag=TagRegister(f"{self.name}.{mac}", ds_id=ds_id))
        self._vnics[mac] = vnic
        return vnic

    def remove_vnic(self, mac: str) -> None:
        del self._vnics[mac]

    def vnic_for(self, mac: str) -> Optional[VNic]:
        return self._vnics.get(mac)

    # -- receive path (from-device DMA) --------------------------------------------

    def receive_frame(self, dest_mac: str, nbytes: int) -> bool:
        """An incoming wire frame; returns True if accepted.

        The MAC demux selects the v-NIC whose tag register stamps the
        receive DMA into the owning LDom's memory and the completion
        interrupt.
        """
        vnic = self._vnics.get(dest_mac)
        if vnic is None:
            self.rx_dropped += 1
            if self.control is not None:
                self.control.record_traffic(0, "rx_dropped", 1)
            self.tracer.emit(self.now, self.name, "rx_dropped", f"mac={dest_mac}")
            return False
        vnic.rx_frames += 1
        if self.control is not None:
            self.control.record_traffic(vnic.tag.ds_id, "rx_bytes", nbytes)
        self.dma.transfer(nbytes, to_device=False, ds_id=vnic.tag.ds_id)
        return True

    # -- transmit path ------------------------------------------------------------------

    def send(self, ds_id: int, nbytes: int, on_sent: Optional[Callable[[], None]] = None) -> None:
        if nbytes <= 0:
            raise ValueError("frame size must be positive")
        self._tx_queue.append((ds_id, nbytes, on_sent))
        self._pump_tx()

    def _pump_tx(self) -> None:
        if self._tx_busy or not self._tx_queue:
            return
        ds_id, nbytes, on_sent = self._tx_queue.popleft()
        self._tx_busy = True
        if self.control is not None:
            self.control.record_traffic(ds_id, "tx_bytes", nbytes)
        # Fetch the payload from the LDom's memory, then hold the wire.
        self.dma.transfer(nbytes, to_device=True, raise_interrupt=False, ds_id=ds_id)
        wire_ps = int(nbytes * PS_PER_S / self.wire_bandwidth_bytes_per_s)
        self.post(max(1, wire_ps), lambda: self._tx_done(on_sent))

    def _tx_done(self, on_sent: Optional[Callable[[], None]]) -> None:
        self._tx_busy = False
        if on_sent is not None:
            on_sent()
        self._pump_tx()
