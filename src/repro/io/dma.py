"""Tagged DMA engines.

PARD §4.1 tags DMA in three steps, all reproduced here:

1. *Initialize the tag register*: when a driver writes the descriptor
   into the engine, the DS-id carried by that (PIO) write is latched into
   the engine's tag register.
2. *Tag data transfers*: every memory request the engine issues carries
   the latched DS-id, so DMA traffic is charged to the right LDom by the
   memory control plane.
3. *Tag interrupt signals*: the completion interrupt carries the DS-id,
   letting the APIC route it through the owning LDom's route table.

Memory traffic is issued in ``chunk_bytes`` units (4 KB by default)
rather than per cache line, which preserves bandwidth accounting and
memory-controller contention at 1/64th of the event cost; the chunk size
is a visible parameter for experiments that care.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.tagging import TagRegister
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.packet import InterruptPacket, MemOp, MemoryPacket
from repro.sim.trace import NULL_TRACER, Tracer


class DmaEngine(Component):
    """One device's DMA engine."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        memory: Optional[Component],
        apic=None,
        interrupt_vector: int = 14,
        chunk_bytes: int = 4096,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(engine, name)
        self.memory = memory
        self.apic = apic
        self.interrupt_vector = interrupt_vector
        self.chunk_bytes = chunk_bytes
        self.tracer = tracer
        self.tag = TagRegister(f"{name}.dma")
        self.transfers_completed = 0
        self.bytes_transferred = 0

    # -- step 1: descriptor write latches the DS-id --------------------------

    def program(self, descriptor_write_ds_id: int) -> None:
        """Latch the DS-id carried by the driver's descriptor write."""
        self.tag.write(descriptor_write_ds_id)
        self.tracer.emit(
            self.now, self.name, "dma_programmed", f"dsid={descriptor_write_ds_id}"
        )

    # -- steps 2 and 3: tagged transfer + tagged completion interrupt ---------

    def transfer(
        self,
        nbytes: int,
        to_device: bool,
        on_complete: Optional[Callable[[], None]] = None,
        raise_interrupt: bool = True,
        ds_id: Optional[int] = None,
    ) -> None:
        """Move ``nbytes`` between memory and the device.

        ``to_device`` reads from memory (e.g. a disk write); the reverse
        writes to memory (e.g. a network receive). ``ds_id`` overrides
        the latched tag for engines with multiple tag registers (the
        v-NIC case); normally the latched register is used.
        """
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        tag = self.tag.ds_id if ds_id is None else ds_id
        remaining = nbytes
        offset = 0
        pending = {"chunks": 0, "started_all": False}

        def chunk_done(_resp=None) -> None:
            pending["chunks"] -= 1
            if pending["chunks"] == 0 and pending["started_all"]:
                self._complete(nbytes, tag, on_complete, raise_interrupt)

        while remaining > 0:
            size = min(self.chunk_bytes, remaining)
            if self.memory is not None:
                packet = MemoryPacket(
                    ds_id=tag,
                    addr=offset,
                    size=size,
                    op=MemOp.READ if to_device else MemOp.WRITE,
                    birth_ps=self.now,
                )
                pending["chunks"] += 1
                self.memory.handle_request(packet, chunk_done)
            remaining -= size
            offset += size
        pending["started_all"] = True
        if self.memory is None or pending["chunks"] == 0:
            self._complete(nbytes, tag, on_complete, raise_interrupt)

    def _complete(
        self,
        nbytes: int,
        tag: int,
        on_complete: Optional[Callable[[], None]],
        raise_interrupt: bool,
    ) -> None:
        self.transfers_completed += 1
        self.bytes_transferred += nbytes
        self.tracer.emit(
            self.now, self.name, "dma_complete", f"dsid={tag} bytes={nbytes}"
        )
        if raise_interrupt and self.apic is not None:
            self.apic.raise_interrupt(
                InterruptPacket(
                    ds_id=tag,
                    vector=self.interrupt_vector,
                    device=self.name,
                    birth_ps=self.now,
                )
            )
        if on_complete is not None:
            on_complete()
