"""The I/O bridge and its control plane.

The bridge routes programmed-I/O packets from cores to devices. Its
control plane (type 'B' in the device tree) gives each DS-id a *device
access mask*: an LDom can only reach the devices the firmware assigned to
it, which is the I/O half of fully hardware-supported virtualization --
no hypervisor mediates, the bridge itself refuses cross-LDom device
access. It also keeps per-DS-id PIO statistics.
"""

from __future__ import annotations

from typing import Optional

from repro.core.control_plane import ControlPlane
from repro.sim.component import Component, ResponseCallback
from repro.sim.engine import Engine
from repro.sim.packet import IoPacket
from repro.sim.trace import NULL_TRACER, Tracer

ALL_DEVICES_MASK = (1 << 62) - 1


class IoAccessError(PermissionError):
    """An LDom touched a device outside its access mask."""


class IoBridgeControlPlane(ControlPlane):
    """Control plane for the I/O bridge."""

    IDENT = "IOBRIDGE_CP"
    TYPE_CODE = "B"
    PARAMETER_COLUMNS = (("devmask", ALL_DEVICES_MASK),)
    STATISTICS_COLUMNS = (("pio_cnt", 0), ("denied_cnt", 0))

    def __init__(self, engine: Engine, name: str = "cpa_bridge", **kwargs):
        super().__init__(engine, name, **kwargs)
        self._window_pio: dict[int, int] = {}
        self._window_denied: dict[int, int] = {}

    def devmask(self, ds_id: int) -> int:
        return self.parameters.get_default(ds_id, "devmask", ALL_DEVICES_MASK)

    def record_pio(self, ds_id: int, denied: bool) -> None:
        table = self._window_denied if denied else self._window_pio
        table[ds_id] = table.get(ds_id, 0) + 1

    def on_window(self) -> None:
        for ds_id in self.statistics.ds_ids:
            self.statistics.add(ds_id, "pio_cnt", self._window_pio.pop(ds_id, 0))
            self.statistics.add(ds_id, "denied_cnt", self._window_denied.pop(ds_id, 0))


class IoBridge(Component):
    """Routes PIO packets to registered devices, enforcing access masks."""

    def __init__(
        self,
        engine: Engine,
        control: Optional[IoBridgeControlPlane] = None,
        forward_latency_ps: int = 1_000,
        name: str = "iobridge",
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        super().__init__(engine, name)
        self.control = control
        self.forward_latency_ps = forward_latency_ps
        self.tracer = tracer
        self._devices: dict[str, tuple[int, Component]] = {}
        self.forwarded_pio = 0
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        if self.telemetry is not None:
            self.telemetry.registry.gauge_fn(
                f"io.{name}.forwarded_pio", lambda: self.forwarded_pio
            )

    def attach_device(self, name: str, device: Component) -> int:
        """Register a device; returns its bit index in the access masks."""
        if name in self._devices:
            raise ValueError(f"device {name!r} already attached")
        index = len(self._devices)
        self._devices[name] = (index, device)
        return index

    def device_index(self, name: str) -> int:
        return self._devices[name][0]

    def handle_request(self, packet: IoPacket, on_response: ResponseCallback) -> None:
        entry = self._devices.get(packet.device)
        if entry is None:
            raise KeyError(f"{self.name}: no device {packet.device!r}")
        index, device = entry
        if self.control is not None:
            allowed = bool(self.control.devmask(packet.ds_id) & (1 << index))
            self.control.record_pio(packet.ds_id, denied=not allowed)
            if not allowed:
                self.tracer.emit(
                    self.now, self.name, "pio_denied",
                    f"dsid={packet.ds_id} device={packet.device}",
                )
                raise IoAccessError(
                    f"DS-id {packet.ds_id} denied access to {packet.device}"
                )
        self.forwarded_pio += 1
        self.post(
            self.forward_latency_ps, lambda: device.handle_request(packet, on_response)
        )
