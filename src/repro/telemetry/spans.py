"""Packet-lifecycle spans: per-hop timestamps on sampled tagged requests.

A span follows one packet through the machine -- core issue, L1/L2
lookup, crossbar forward, DRAM enqueue/issue/complete, response -- and
records a ``(hop_name, time_ps)`` pair at each stage. Spans carry the
packet's DS-id, so finished spans can be queried per DS-id to attribute
tail latency to a stage ("ds1's p99 is queue delay at the memory
controller, not LLC misses").

Sampling is deterministic and counter-based (every Nth eligible packet
starts a span); it never consults an RNG and never changes event
scheduling, so enabling spans cannot perturb the simulated timeline --
the golden determinism test stays byte-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class Span:
    """Per-hop timestamp trail for one sampled packet."""

    __slots__ = ("ds_id", "packet_id", "kind", "hops")

    def __init__(self, ds_id: int, packet_id: int, kind: str = "mem"):
        self.ds_id = ds_id
        self.packet_id = packet_id
        self.kind = kind
        self.hops: list[tuple[str, int]] = []

    def hop(self, name: str, t_ps: int) -> None:
        self.hops.append((name, t_ps))

    @property
    def start_ps(self) -> Optional[int]:
        return self.hops[0][1] if self.hops else None

    @property
    def end_ps(self) -> Optional[int]:
        return self.hops[-1][1] if self.hops else None

    @property
    def duration_ps(self) -> int:
        if len(self.hops) < 2:
            return 0
        return self.hops[-1][1] - self.hops[0][1]

    def hop_durations(self) -> list[tuple[str, int]]:
        """``(segment_name, duration_ps)`` between consecutive hops.

        The segment ending at hop ``b`` reached from hop ``a`` is named
        ``"a->b"``.
        """
        out = []
        for (a_name, a_t), (b_name, b_t) in zip(self.hops, self.hops[1:]):
            out.append((f"{a_name}->{b_name}", b_t - a_t))
        return out

    def to_dict(self) -> dict:
        return {
            "ds_id": self.ds_id,
            "packet_id": self.packet_id,
            "kind": self.kind,
            "hops": [[name, t] for name, t in self.hops],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["ds_id"], data["packet_id"], data.get("kind", "mem"))
        span.hops = [(name, t) for name, t in data["hops"]]
        return span

    def __repr__(self) -> str:
        return (
            f"Span(ds{self.ds_id} pkt={self.packet_id} "
            f"hops={len(self.hops)} dur={self.duration_ps}ps)"
        )


class SpanRecorder:
    """Starts spans on a deterministic 1-in-N sample and stores finished ones.

    Storage is bounded (ring semantics: oldest finished spans are evicted
    first) with an explicit ``dropped`` count, matching the Tracer's
    contract.
    """

    __slots__ = ("sample_every", "capacity", "finished", "dropped", "_seen", "_started")

    def __init__(self, sample_every: int = 100, capacity: int = 10_000):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_every = sample_every
        self.capacity = capacity
        self.finished: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self._seen = 0      # eligible packets observed
        self._started = 0   # spans actually started

    def maybe_start(self, ds_id: int, packet_id: int, kind: str = "mem") -> Optional[Span]:
        """Return a new span for every Nth call, else None."""
        self._seen += 1
        if (self._seen - 1) % self.sample_every != 0:
            return None
        self._started += 1
        return Span(ds_id, packet_id, kind)

    def finish(self, span: Span) -> None:
        if len(self.finished) == self.capacity:
            self.dropped += 1
        self.finished.append(span)

    # -- serialization & merge (the sweep runner's transport) ---------------

    def dump(self) -> dict:
        """Picklable state: finished spans plus the sampling counters."""
        return {
            "finished": [span.to_dict() for span in self.finished],
            "seen": self._seen,
            "started": self._started,
            "dropped": self.dropped,
        }

    def absorb(self, dump: dict, id_offset: int = 0) -> int:
        """Merge one :meth:`dump`, rebasing packet ids by ``id_offset``.

        Each sweep point restarts its engine's packet ids at zero, so a
        merged recorder rebases every absorbed span by a caller-tracked
        offset to keep per-point id ranges disjoint. Returns the next
        free id (``id_offset`` advanced past this dump's highest id);
        absorbing dumps in point-index order keeps the mapping -- and
        any capacity eviction -- deterministic.
        """
        top = id_offset
        for data in dump["finished"]:
            span = Span.from_dict(data)
            span.packet_id = data["packet_id"] + id_offset
            top = max(top, span.packet_id + 1)
            self.finish(span)
        self._seen += dump["seen"]
        self._started += dump["started"]
        self.dropped += dump["dropped"]
        return top

    # -- queries ------------------------------------------------------------

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def started(self) -> int:
        return self._started

    def for_dsid(self, ds_id: int) -> list[Span]:
        return [s for s in self.finished if s.ds_id == ds_id]

    def hop_stats(self, ds_id: Optional[int] = None) -> dict[str, dict[str, float]]:
        """Aggregate per-segment durations across finished spans.

        Returns ``{segment: {count, mean_ps, max_ps}}``; restrict to one
        DS-id by passing ``ds_id``. This is the tail-latency-attribution
        query: which hop dominates for which DS-id.
        """
        agg: dict[str, list[int]] = {}
        for span in self.finished:
            if ds_id is not None and span.ds_id != ds_id:
                continue
            for segment, dur in span.hop_durations():
                agg.setdefault(segment, []).append(dur)
        return {
            segment: {
                "count": len(durs),
                "mean_ps": sum(durs) / len(durs),
                "max_ps": max(durs),
            }
            for segment, durs in sorted(agg.items())
        }

    def __len__(self) -> int:
        return len(self.finished)
