"""Typed metric instruments and the hierarchical metrics registry.

PARD's control planes already keep per-DS-id *statistics tables* (Fig. 2);
this module generalizes that idea to the whole simulated machine. Every
component registers typed instruments -- :class:`Counter`, :class:`Gauge`
(direct or callback-backed) and :class:`Histogram` with fixed log-spaced
buckets -- under hierarchical dotted names such as ``llc.ds1.misses`` or
``dram.qdelay_cycles``. The registry is the single source the exporters
(JSONL, Prometheus text) and the firmware's ``/sys/telemetry`` subtree
read from, so operators, scripts and the PRM all observe the same values.

Registration is get-or-create: asking twice for the same name returns the
same instrument (a type mismatch raises). Hooks fire on registration and
removal so the firmware can mirror the registry into sysfs live.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Iterable, Optional

_NAME_BAD_CHARS = set("/ \t\n")


def _check_name(name: str) -> str:
    if not name or name.startswith(".") or name.endswith(".") or ".." in name:
        raise ValueError(f"bad metric name {name!r}")
    if any(c in _NAME_BAD_CHARS for c in name):
        raise ValueError(f"metric name {name!r} contains reserved characters")
    return name


class Instrument:
    """Base class: a named, typed metric."""

    kind = "instrument"
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = _check_name(name)

    def value(self):
        raise NotImplementedError

    def render(self) -> str:
        """Single-line text form (used by the sysfs read handlers)."""
        return str(self.value())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}={self.render()})"


class Counter(Instrument):
    """A monotonically increasing integer counter."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str):
        super().__init__(name)
        self._value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only increase (got {amount})")
        self._value += amount

    def value(self) -> int:
        return self._value


class Gauge(Instrument):
    """A point-in-time value, set directly or read through a callback.

    Callback gauges are the near-zero-cost bridge to counters components
    already maintain (``cache.total_hits``, ``engine.executed_total``):
    nothing happens on the hot path, the value is read at snapshot time.
    """

    kind = "gauge"
    __slots__ = ("_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        super().__init__(name)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed and cannot be set")
        self._value = value

    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram(Instrument):
    """A histogram over fixed log-spaced buckets.

    Bucket upper bounds are ``start * growth**i`` for ``i`` in
    ``range(count)`` plus a final +inf overflow bucket, mirroring
    Prometheus exponential buckets. Alongside the bucket counts it keeps
    the exact running count/sum/min/max (the same incremental shape as
    :class:`repro.sim.stats.LatencyRecorder`, which it absorbs for
    metrics that do not need exact percentiles).
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self, name: str, start: float = 1.0, growth: float = 2.0, count: int = 24
    ):
        super().__init__(name)
        if start <= 0 or growth <= 1.0 or count < 1:
            raise ValueError(f"{name}: need start>0, growth>1, count>=1")
        self.bounds = [start * growth ** i for i in range(count)]
        self.counts = [0] * (count + 1)  # +1 = overflow bucket (le=+inf)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> Optional[float]:
        return self._min if self._count else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self._count else None

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper-bound based)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self._max
        return self._max

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, Prometheus-style."""
        out = []
        cumulative = 0
        for bound, c in zip(self.bounds, self.counts):
            cumulative += c
            out.append((bound, cumulative))
        out.append((math.inf, self._count))
        return out

    def value(self) -> dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "buckets": [[b, c] for b, c in self.buckets() if b != math.inf],
        }

    def render(self) -> str:
        return (
            f"count={self._count} sum={self._sum:.6g} "
            f"mean={self.mean:.6g} p95={self.quantile(0.95):.6g}"
        )


class MetricsRegistry:
    """Get-or-create registry of instruments under hierarchical names."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._register_hooks: list[Callable[[Instrument], None]] = []
        self._remove_hooks: list[Callable[[Instrument], None]] = []

    # -- registration -------------------------------------------------------

    def _get_or_create(self, name: str, factory, cls) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise TypeError(
                    f"{name} already registered as {instrument.kind}, "
                    f"requested {cls.kind}"
                )
            return instrument
        instrument = factory()
        self._instruments[name] = instrument
        for hook in self._register_hooks:
            hook(instrument)
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> Gauge:
        """A callback-backed gauge (re-binding an existing name re-points it)."""
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, Gauge):
                raise TypeError(f"{name} already registered as {instrument.kind}")
            instrument._fn = fn
            return instrument
        return self._get_or_create(name, lambda: Gauge(name, fn=fn), Gauge)

    def histogram(
        self, name: str, start: float = 1.0, growth: float = 2.0, count: int = 24
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, start, growth, count), Histogram
        )

    def remove(self, name: str) -> bool:
        """Remove an instrument (e.g. when its LDom is destroyed)."""
        instrument = self._instruments.pop(name, None)
        if instrument is None:
            return False
        for hook in self._remove_hooks:
            hook(instrument)
        return True

    # -- hooks (used by the firmware's /sys/telemetry mirror) ---------------

    def on_register(self, hook: Callable[[Instrument], None]) -> None:
        """Call ``hook`` for every existing and future instrument."""
        self._register_hooks.append(hook)
        for instrument in list(self._instruments.values()):
            hook(instrument)

    def on_remove(self, hook: Callable[[Instrument], None]) -> None:
        self._remove_hooks.append(hook)

    # -- queries ------------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def find(self, prefix: str) -> list[Instrument]:
        """Instruments under a hierarchical prefix (``llc`` matches
        ``llc.ds1.misses`` but not ``llcx.foo``)."""
        dotted = prefix + "."
        return [
            inst for name, inst in sorted(self._instruments.items())
            if name == prefix or name.startswith(dotted)
        ]

    def snapshot(self) -> dict[str, object]:
        """Current value of every instrument, by name."""
        return {name: inst.value() for name, inst in sorted(self._instruments.items())}

    # -- serialization & merge (the sweep runner's transport) ---------------

    def dump(self) -> dict[str, dict]:
        """Full picklable state of every instrument, by name.

        Callback gauges are evaluated at dump time and become plain
        values: a dump is a frozen observation, not a live view.
        """
        out: dict[str, dict] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out[name] = {"kind": "counter", "value": inst.value()}
            elif isinstance(inst, Histogram):
                out[name] = {
                    "kind": "histogram",
                    "bounds": list(inst.bounds),
                    "counts": list(inst.counts),
                    "count": inst.count,
                    "sum": inst.total,
                    "min": inst.min,
                    "max": inst.max,
                }
            elif isinstance(inst, Gauge):
                out[name] = {"kind": "gauge", "value": inst.value()}
        return out

    def merge_dump(self, dump: dict[str, dict]) -> None:
        """Merge one :meth:`dump` into this registry.

        Merge semantics per kind: counters **sum**, gauges **last write
        wins** (so merging worker dumps in ascending point-index order
        keeps the highest-index point's value), histogram buckets and
        count/sum **add** (min/max combine); bucket bounds must match.
        Merging a gauge onto a callback-backed gauge of the same name
        raises -- a live view cannot absorb a frozen one.
        """
        for name in sorted(dump):
            state = dump[name]
            kind = state["kind"]
            if kind == "counter":
                self.counter(name).add(state["value"])
            elif kind == "gauge":
                self.gauge(name).set(state["value"])
            elif kind == "histogram":
                histogram = self._get_or_create(
                    name, lambda: _empty_histogram(name, state["bounds"]), Histogram
                )
                if list(histogram.bounds) != list(state["bounds"]):
                    raise ValueError(
                        f"{name}: histogram bucket bounds differ between "
                        f"merged registries"
                    )
                for i, c in enumerate(state["counts"]):
                    histogram.counts[i] += c
                histogram._count += state["count"]
                histogram._sum += state["sum"]
                if state["count"]:
                    histogram._min = min(histogram._min, state["min"])
                    histogram._max = max(histogram._max, state["max"])
            else:
                raise ValueError(f"{name}: unknown instrument kind {kind!r}")

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterable[Instrument]:
        return iter([self._instruments[k] for k in sorted(self._instruments)])


def _empty_histogram(name: str, bounds: list[float]) -> Histogram:
    """A zeroed histogram with explicit (already-computed) bucket bounds."""
    histogram = Histogram(name)
    histogram.bounds = list(bounds)
    histogram.counts = [0] * (len(bounds) + 1)
    return histogram


def merge_registry_dumps(dumps: Iterable[dict]) -> MetricsRegistry:
    """Fold an ordered sequence of registry dumps into one fresh registry.

    The order is the determinism contract: callers pass dumps in point
    *index* order so gauge last-write-wins resolves identically no
    matter how the sweep was scheduled.
    """
    registry = MetricsRegistry()
    for dump in dumps:
        registry.merge_dump(dump)
    return registry
