"""Exporters: JSONL time-series, Chrome trace-event spans, Prometheus text.

Three machine-readable views of the same telemetry:

* :func:`write_jsonl` / :func:`read_jsonl` -- generic newline-delimited
  JSON helpers, shared by metric snapshots and PRM probe-series export.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` -- finished
  spans as Chrome trace-event "complete" (``ph: "X"``) records that load
  in Perfetto / ``chrome://tracing``. One process row per DS-id, one
  slice per hop segment, timestamps converted ps -> microseconds.
* :func:`prometheus_text` -- the registry rendered in the Prometheus
  exposition format (dots become underscores, histograms emit cumulative
  ``_bucket{le="..."}`` series).
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, Union

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span

PathOrFile = Union[str, IO[str]]


# -- JSONL ------------------------------------------------------------------

def write_jsonl(rows: Iterable[dict], dest: PathOrFile) -> int:
    """Write dict rows as newline-delimited JSON; returns the row count."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as fh:
            return write_jsonl(rows, fh)
    n = 0
    for row in rows:
        dest.write(json.dumps(row, sort_keys=True))
        dest.write("\n")
        n += 1
    return n


def read_jsonl(source: PathOrFile) -> list[dict]:
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return read_jsonl(fh)
    return [json.loads(line) for line in source if line.strip()]


def metrics_rows(snapshots: Iterable[dict]) -> Iterable[dict]:
    """Flatten snapshot dicts into one JSONL row per (snapshot, metric).

    Each input snapshot is ``{"t_ps": ..., "run": ..., "metrics": {...}}``
    (as produced by ``Telemetry.snapshot``); each output row carries the
    time, run label, metric name and value -- trivially loadable into
    pandas or jq.
    """
    for snap in snapshots:
        base = {k: v for k, v in snap.items() if k != "metrics"}
        for name, value in snap.get("metrics", {}).items():
            row = dict(base)
            row["metric"] = name
            row["value"] = value
            yield row


# -- Chrome trace-event format ---------------------------------------------

def chrome_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Convert finished spans to Chrome trace-event ``ph:"X"`` records.

    pid groups slices by DS-id; tid carries the packet id so concurrent
    requests from one DS-id land on separate rows. A parent slice covers
    the whole span and child slices cover each hop segment. Timestamps
    are microseconds (trace-event convention), converted from integer
    picoseconds.
    """
    events: list[dict] = []
    seen_pids: set[int] = set()
    for span in spans:
        if len(span.hops) < 2:
            continue
        pid = span.ds_id
        tid = span.packet_id
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": f"ds{pid}"},
                }
            )
        start_us = span.hops[0][1] / 1e6
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": f"{span.kind}.pkt{span.packet_id}",
                "cat": span.kind,
                "ts": start_us,
                "dur": span.duration_ps / 1e6,
                "args": {
                    "ds_id": span.ds_id,
                    "packet_id": span.packet_id,
                    "hops_ps": [[name, t] for name, t in span.hops],
                },
            }
        )
        for segment, dur in span.hop_durations():
            seg_start_us = None
            for (a_name, a_t) in span.hops:
                if segment.startswith(a_name + "->"):
                    seg_start_us = a_t / 1e6
                    break
            if seg_start_us is None:
                seg_start_us = start_us
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "name": segment,
                    "cat": span.kind,
                    "ts": seg_start_us,
                    "dur": dur / 1e6,
                    "args": {"ds_id": span.ds_id, "packet_id": span.packet_id},
                }
            )
    return events


def write_chrome_trace(spans: Iterable[Span], dest: PathOrFile) -> int:
    """Write spans as a Chrome trace JSON object; returns the event count."""
    events = chrome_trace_events(spans)
    doc = {"traceEvents": events, "displayTimeUnit": "ns"}
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, dest)
    return len(events)


# -- Prometheus exposition format ------------------------------------------

def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    return repr(float(v)) if isinstance(v, float) else str(v)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for inst in registry:
        pname = _prom_name(inst.name)
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {inst.value()}")
        elif isinstance(inst, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            for le, cumulative in inst.buckets():
                le_str = "+Inf" if le == math.inf else _prom_value(le)
                lines.append(f'{pname}_bucket{{le="{le_str}"}} {cumulative}')
            lines.append(f"{pname}_sum {_prom_value(inst.total)}")
            lines.append(f"{pname}_count {inst.count}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(inst.value())}")
    return "\n".join(lines) + ("\n" if lines else "")
