"""repro.telemetry: metrics registry, packet-lifecycle spans, exporters,
and engine self-profiling for the simulated PARD machine.

See DESIGN.md ("Observability") for the instrument naming scheme,
sampling rules, and the overhead budget this layer is held to.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    merge_registry_dumps,
)
from .spans import Span, SpanRecorder
from .exporters import (
    chrome_trace_events,
    metrics_rows,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .hub import Telemetry, effective
from .profiler import ProfiledEngine

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "ProfiledEngine",
    "chrome_trace_events",
    "merge_registry_dumps",
    "metrics_rows",
    "prometheus_text",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "effective",
]
