"""Engine self-profiling: where does the simulator's wall-clock time go.

:class:`ProfiledEngine` subclasses the calendar-queue :class:`Engine`
and duplicates its run loop with ``time.perf_counter_ns()`` sampling
around every callback. Costs are attributed to the callback's owner --
a bound method's ``__self__`` (preferring its ``.name`` attribute, which
all simulated components carry) falling back to ``__qualname__`` -- so
the report reads "62% of wall time is Cache._lookup on llc".

It also tracks bucket occupancy (events per distinct timestamp), the
statistic the calendar queue's speedup over the heap reference depends
on: if occupancy drops toward 1, the calendar queue degenerates.

Profiling changes only wall-clock accounting, never simulated ordering:
the dispatch order is identical to :class:`Engine`, so golden
determinism digests are unaffected. The subclass registers itself as
engine kind ``"profiled"`` (telemetry imports sim, never the reverse,
so this avoids an import cycle).
"""

from __future__ import annotations

import heapq  # simlint: disable=EVT003 -- mirrors Engine.run's own queue
import time
from typing import Optional

from repro.sim.engine import ENGINE_KINDS, Engine, SimulationError
from repro.sim.engine import _Event  # dispatch-loop type check, as in Engine.run


def _owner_of(callback) -> str:
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            return name
        return type(owner).__name__
    return getattr(callback, "__qualname__", repr(callback))


class ProfiledEngine(Engine):
    """Calendar-queue engine with per-callback wall-clock attribution."""

    kind = "profiled"

    def __init__(self) -> None:
        super().__init__()
        # owner -> [calls, total_ns]
        self.callback_ns: dict[str, list[int]] = {}
        self.buckets_drained = 0
        self.bucket_events = 0
        self.max_bucket = 0
        self.wall_ns = 0

    def run(self, until_ps: Optional[int] = None) -> int:
        # Mirrors Engine.run exactly, adding perf_counter_ns sampling
        # around each callback. Keep the two loops in sync.
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        times = self._times
        buckets = self._buckets
        event_class = _Event
        # simlint: disable=DET001 -- wall-clock attribution is this
        # engine's entire purpose; it never influences simulated time.
        perf = time.perf_counter_ns
        stats = self.callback_ns
        run_start = perf()
        try:
            while times and not self._stopped:
                time_ps = times[0]
                if until_ps is not None and time_ps > until_ps:
                    break
                bucket = buckets[time_ps]
                if self._pos:
                    bucket = bucket[self._pos:]
                    buckets[time_ps] = bucket
                    self._pos = 0
                self._now = time_ps
                i = 0
                for entry in bucket:
                    i += 1
                    self._queued -= 1
                    if entry.__class__ is event_class:
                        if entry.cancelled:
                            self._cancelled_pending -= 1
                            continue
                        entry.done = True
                        entry = entry.callback
                    owner = _owner_of(entry)
                    t0 = perf()
                    entry()
                    dt = perf() - t0
                    cell = stats.get(owner)
                    if cell is None:
                        stats[owner] = [1, dt]
                    else:
                        cell[0] += 1
                        cell[1] += dt
                    executed += 1
                    if self._stopped:
                        break
                if i < len(bucket):
                    self._pos = i
                    break
                self.buckets_drained += 1
                self.bucket_events += i
                if i > self.max_bucket:
                    self.max_bucket = i
                del buckets[time_ps]
                heapq.heappop(times)
        finally:
            self._running = False
            self.executed_total += executed
            self.wall_ns += perf() - run_start
        if until_ps is not None and self._now < until_ps and not self._stopped:
            self._now = until_ps
        return executed

    # -- report --------------------------------------------------------------

    @property
    def mean_bucket_occupancy(self) -> float:
        if not self.buckets_drained:
            return 0.0
        return self.bucket_events / self.buckets_drained

    def report(self, top: int = 12) -> dict:
        """Profile summary: totals, bucket occupancy, top owners by time."""
        ranked = sorted(
            self.callback_ns.items(), key=lambda kv: kv[1][1], reverse=True
        )
        callback_total_ns = sum(cell[1] for _, cell in ranked)
        owners = [
            {
                "owner": owner,
                "calls": calls,
                "total_ns": total_ns,
                "mean_ns": total_ns / calls if calls else 0.0,
                "share": (total_ns / callback_total_ns) if callback_total_ns else 0.0,
            }
            for owner, (calls, total_ns) in ranked[:top]
        ]
        events_per_sec = (
            self.executed_total / (self.wall_ns / 1e9) if self.wall_ns else 0.0
        )
        return {
            "events_executed": self.executed_total,
            "wall_s": self.wall_ns / 1e9,
            "events_per_sec": events_per_sec,
            "callback_ns_total": callback_total_ns,
            "dispatch_overhead_ns": max(0, self.wall_ns - callback_total_ns),
            "buckets_drained": self.buckets_drained,
            "mean_bucket_occupancy": self.mean_bucket_occupancy,
            "max_bucket_occupancy": self.max_bucket,
            "owners": owners,
        }

    def format_report(self, top: int = 12) -> str:
        rep = self.report(top=top)
        lines = [
            f"events={rep['events_executed']} wall={rep['wall_s']:.3f}s "
            f"({rep['events_per_sec']:,.0f} ev/s)",
            f"bucket occupancy mean={rep['mean_bucket_occupancy']:.2f} "
            f"max={rep['max_bucket_occupancy']} "
            f"(buckets drained={rep['buckets_drained']})",
            f"dispatch overhead={rep['dispatch_overhead_ns'] / 1e6:.1f}ms of "
            f"{rep['wall_s'] * 1e3:.1f}ms",
        ]
        for row in rep["owners"]:
            lines.append(
                f"  {row['share']:6.1%}  {row['owner']:<28s} "
                f"calls={row['calls']:<9d} mean={row['mean_ns']:.0f}ns"
            )
        return "\n".join(lines)


ENGINE_KINDS.setdefault("profiled", ProfiledEngine)
