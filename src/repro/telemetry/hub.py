"""The Telemetry hub: one object bundling registry, spans and snapshots.

Components receive the hub (or ``None``) at construction and normalize::

    self.telemetry = telemetry if (telemetry is not None and telemetry.enabled) else None

so every hot-path guard is a single ``is None`` check and a disabled hub
costs exactly as much as no hub at all. The hub owns:

* ``registry`` -- the :class:`MetricsRegistry` all components share,
* ``spans`` -- the :class:`SpanRecorder` (deterministic 1-in-N sampling),
* periodic metric snapshots (scheduled on the sim engine, labelled with
  the current run so multi-point sweeps like fig8 stay distinguishable),
* export helpers for the CLI (``--metrics-out`` / ``--trace-out``).
"""

from __future__ import annotations

from typing import Optional

from .exporters import (
    metrics_rows,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
)
from .registry import MetricsRegistry
from .spans import SpanRecorder

DEFAULT_SPAN_SAMPLE = 100  # 1-in-100 eligible packets
DEFAULT_SPAN_CAPACITY = 10_000


class Telemetry:
    """Shared telemetry context for one simulated machine (or sweep)."""

    def __init__(
        self,
        enabled: bool = True,
        span_sample: int = DEFAULT_SPAN_SAMPLE,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        snapshot_period_ms: float = 1.0,
        profile_engine: bool = False,
    ):
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(sample_every=span_sample, capacity=span_capacity)
        self.snapshot_period_ms = snapshot_period_ms
        self.profile_engine = profile_engine
        self.snapshots: list[dict] = []
        self.run_label = ""
        self._span_id_base = 0  # next free packet id for merged worker spans

    # -- run labelling -------------------------------------------------------

    def begin_run(self, label: str) -> None:
        """Label subsequent snapshots (one sweep point = one label)."""
        self.run_label = label

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, t_ps: int) -> dict:
        """Record the current value of every instrument at sim time t_ps."""
        snap = {
            "t_ps": t_ps,
            "t_ms": t_ps / 1e9,
            "run": self.run_label,
            "metrics": self.registry.snapshot(),
        }
        self.snapshots.append(snap)
        return snap

    def start_periodic_snapshots(self, engine) -> None:
        """Schedule recurring snapshots on ``engine`` until it stops running.

        Uses the allocation-free ``post`` path; the chain ends naturally
        when the bounded run finishes (a trailing event past ``until_ps``
        stays queued and is simply never dispatched in this process).
        """
        if not self.enabled or self.snapshot_period_ms <= 0:
            return
        period_ps = int(self.snapshot_period_ms * 1e9)

        def tick() -> None:
            self.snapshot(engine.now)
            engine.post(period_ps, tick)

        engine.post(period_ps, tick)

    # -- sweep worker transport ---------------------------------------------

    def dump_payload(self) -> dict:
        """The hub's full picklable state, for shipping out of a worker.

        Contains the registry dump (callback gauges frozen to values),
        every snapshot taken so far, and the span recorder's finished
        spans + sampling counters.
        """
        return {
            "registry": self.registry.dump(),
            "snapshots": list(self.snapshots),
            "spans": self.spans.dump(),
        }

    def merge_payload(self, payload: dict) -> None:
        """Merge one worker hub's :meth:`dump_payload` into this hub.

        Callers MUST merge payloads in ascending sweep-point index
        order -- that order is what makes gauge last-write-wins, span id
        rebasing and snapshot concatenation deterministic regardless of
        how many workers ran the sweep. Span packet ids are rebased so
        each merged point keeps a disjoint id range.
        """
        self.registry.merge_dump(payload["registry"])
        self.snapshots.extend(payload["snapshots"])
        self._span_id_base = self.spans.absorb(
            payload["spans"], id_offset=self._span_id_base
        )

    # -- exports -------------------------------------------------------------

    def final_snapshot(self, engine=None) -> dict:
        return self.snapshot(engine.now if engine is not None else 0)

    def export_metrics_jsonl(self, path: str) -> int:
        """Write all snapshots as flat JSONL rows; returns the row count."""
        return write_jsonl(metrics_rows(self.snapshots), path)

    def export_chrome_trace(self, path: str) -> int:
        """Write finished spans as a Chrome trace; returns the event count."""
        return write_chrome_trace(self.spans.finished, path)

    def prometheus_text(self) -> str:
        return prometheus_text(self.registry)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Telemetry({state}, {len(self.registry)} instruments, "
            f"{len(self.spans)} spans, {len(self.snapshots)} snapshots)"
        )


def effective(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalize a telemetry argument: disabled hubs become None.

    Components call this once in their constructor so their hot paths
    only ever test ``self.telemetry is None``.
    """
    if telemetry is not None and telemetry.enabled:
        return telemetry
    return None
