"""SDN flow-id integration for the NIC (§4.1's alternative design).

"An alternative is to integrate PARD with SDN network (e.g., OpenFlow)
to allow a DS-id to travel across servers, by correlating a DS-id with
network packet's flowid." A :class:`FlowTable` holds that correlation;
attached to a :class:`~repro.io.nic.MultiQueueNic` it classifies
incoming frames by flow-id instead of (or in addition to) destination
MAC, so a datacenter fabric that labels flows can deliver traffic
straight into the right LDom.
"""

from __future__ import annotations

from typing import Optional

from repro.io.nic import MultiQueueNic
from repro.sim.packet import MAX_DSID


class FlowTable:
    """flow-id -> DS-id classification for tagged receive DMA."""

    def __init__(self, nic: MultiQueueNic, max_flows: int = 1024):
        if max_flows <= 0:
            raise ValueError("max_flows must be positive")
        self.nic = nic
        self.max_flows = max_flows
        self._flows: dict[int, int] = {}
        self.unmatched = 0

    @property
    def flow_count(self) -> int:
        return len(self._flows)

    def map_flow(self, flow_id: int, ds_id: int) -> None:
        """Install (or update) one flow rule."""
        if not 0 <= ds_id <= MAX_DSID:
            raise ValueError(f"DS-id {ds_id} outside tag space")
        if flow_id not in self._flows and len(self._flows) >= self.max_flows:
            raise OverflowError(f"flow table full ({self.max_flows} rules)")
        self._flows[flow_id] = ds_id

    def unmap_flow(self, flow_id: int) -> None:
        self._flows.pop(flow_id, None)

    def ds_id_of(self, flow_id: int) -> Optional[int]:
        return self._flows.get(flow_id)

    def receive(self, flow_id: int, nbytes: int) -> bool:
        """Classify an incoming labeled frame and DMA it into the owning
        LDom's memory with the correlated DS-id. Returns True on match.
        """
        ds_id = self._flows.get(flow_id)
        if ds_id is None:
            self.unmatched += 1
            return False
        if self.nic.control is not None:
            self.nic.control.record_traffic(ds_id, "rx_bytes", nbytes)
        self.nic.dma.transfer(nbytes, to_device=False, ds_id=ds_id)
        return True
