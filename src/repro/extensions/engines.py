"""Per-DS-id differentiated processing engines (§8).

The paper: "if a PARD server includes an MXT engine, the engine can be
programmed to compress memory-access packets for only designated DS-id
sets" -- the same idea covers encryption and security checks. An engine
sits on the memory path, consults its own control plane per DS-id, and
transforms packets selectively: compression shrinks the transferred size
(saving DRAM bandwidth) at a latency cost; encryption adds pure latency.

Packets for DS-ids with the feature disabled pass through untouched and
undelayed -- differentiation is the point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.control_plane import ControlPlane
from repro.sim.component import Component, ResponseCallback
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket
from repro.sim.trace import NULL_TRACER, Tracer


class EngineControlPlane(ControlPlane):
    """Control plane shared by the differentiated engines.

    ``enabled`` switches the feature per DS-id; ``ratio_pct`` is the
    compressed size as a percentage of the original (compression only).
    """

    IDENT = "ENGINE_CP"
    TYPE_CODE = "E"
    PARAMETER_COLUMNS = (("enabled", 0), ("ratio_pct", 50))
    STATISTICS_COLUMNS = (("bytes_in", 0), ("bytes_out", 0), ("ops", 0))

    def __init__(self, engine: Engine, name: str = "cpa_engine", **kwargs):
        super().__init__(engine, name, **kwargs)
        self._window: dict[tuple[int, str], int] = {}

    def enabled(self, ds_id: int) -> bool:
        return bool(self.parameters.get_default(ds_id, "enabled", 0))

    def ratio(self, ds_id: int) -> float:
        pct = self.parameters.get_default(ds_id, "ratio_pct", 50)
        return max(1, min(pct, 100)) / 100.0

    def record(self, ds_id: int, bytes_in: int, bytes_out: int) -> None:
        for column, amount in (("bytes_in", bytes_in), ("bytes_out", bytes_out), ("ops", 1)):
            key = (ds_id, column)
            self._window[key] = self._window.get(key, 0) + amount

    def on_window(self) -> None:
        for ds_id in self.statistics.ds_ids:
            for column in ("bytes_in", "bytes_out", "ops"):
                self.statistics.add(ds_id, column, self._window.pop((ds_id, column), 0))


class _SelectiveEngine(Component):
    """Base: forward packets, transforming tagged ones."""

    def __init__(
        self,
        engine: Engine,
        downstream: Component,
        control: EngineControlPlane,
        latency_cycles: int,
        cycle_ps: int = 500,
        name: str = "engine",
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(engine, name)
        if latency_cycles < 0:
            raise ValueError("latency must be non-negative")
        self.downstream = downstream
        self.control = control
        self.latency_ps = latency_cycles * cycle_ps
        self.tracer = tracer
        self.transformed = 0
        self.passed_through = 0

    def handle_request(self, packet: MemoryPacket, on_response: ResponseCallback) -> None:
        ds_id = packet.effective_ds_id
        if not self.control.enabled(ds_id):
            self.passed_through += 1
            self.downstream.handle_request(packet, on_response)
            return
        self.transformed += 1
        transformed = self._transform(packet)
        self.control.record(ds_id, packet.size, transformed.size)
        self.tracer.emit(
            self.now, self.name, "transform",
            f"dsid={ds_id} {packet.size}B -> {transformed.size}B",
        )
        # The engine pays its latency, then forwards; the response path
        # pays it again (decompress / decrypt on the way back).
        self.post(
            self.latency_ps,
            lambda: self.downstream.handle_request(
                transformed,
                lambda _resp: self.post(self.latency_ps, lambda: on_response(packet)),
            ),
        )

    def _transform(self, packet: MemoryPacket) -> MemoryPacket:
        raise NotImplementedError


class CompressionEngine(_SelectiveEngine):
    """An MXT-style memory compression engine.

    Shrinks the DRAM-side transfer size for designated DS-ids (saving
    bandwidth and row-buffer space) at a fixed compression latency each
    way.
    """

    def __init__(self, engine, downstream, control, latency_cycles: int = 12, **kwargs):
        super().__init__(engine, downstream, control, latency_cycles,
                         name=kwargs.pop("name", "mxt0"), **kwargs)

    def _transform(self, packet: MemoryPacket) -> MemoryPacket:
        ratio = self.control.ratio(packet.effective_ds_id)
        new_size = max(1, int(packet.size * ratio))
        return replace(packet, size=new_size)


class EncryptionEngine(_SelectiveEngine):
    """A memory encryption engine: latency, no size change."""

    def __init__(self, engine, downstream, control, latency_cycles: int = 20, **kwargs):
        super().__init__(engine, downstream, control, latency_cycles,
                         name=kwargs.pop("name", "aes0"), **kwargs)

    def _transform(self, packet: MemoryPacket) -> MemoryPacket:
        return replace(packet, packet_id=packet.packet_id)
