"""Functionality extensions from the paper's Discussion (§8).

PARD's tag + control-plane structure supports differentiated services
beyond QoS. §8 sketches per-DS-id compression (IBM MXT integrated into
the memory controller), encryption and security checking; §4.1 sketches
integrating PARD with SDN so DS-ids propagate across servers via
network flow-ids. These modules implement those sketches:

- :mod:`repro.extensions.engines` -- programmable per-DS-id processing
  engines (compression, encryption) on the memory path
- :mod:`repro.extensions.flow` -- flow-id -> DS-id mapping for the NIC
"""

from repro.extensions.engines import (
    CompressionEngine,
    EncryptionEngine,
    EngineControlPlane,
)
from repro.extensions.flow import FlowTable

__all__ = [
    "CompressionEngine",
    "EncryptionEngine",
    "EngineControlPlane",
    "FlowTable",
]
