"""The intra-computer network (ICN) fabric.

PARD's founding observation (Fig. 1) is that a computer *is* a network:
cores, caches, memory and devices exchange packets over NoC/crossbar
links whose controllers behave like routers. This package models that
fabric explicitly:

- :mod:`repro.icn.crossbar` -- a bandwidth-limited, tagged crossbar with
  per-DS-id accounting (and an optional control plane for link shares)
"""

from repro.icn.crossbar import Crossbar, CrossbarControlPlane

__all__ = ["Crossbar", "CrossbarControlPlane"]
