"""A tagged crossbar for the intra-computer network.

Models the NoC/crossbar hop between private caches and the shared LLC
(the OpenSPARC T1, the paper's RTL substrate, uses exactly such a
crossbar). The model: a fixed traversal latency plus a shared
bandwidth-limited link that serializes flits, with an optional control
plane giving each DS-id a link-share weight -- the same DRR machinery as
the disk, because on the ICN too, "routers" can differentiate.

The crossbar is optional in the assembled server (a zero-latency,
infinite-bandwidth fabric is the default, matching the calibration used
by the experiments); it exists so ICN-level contention and
differentiation can be studied in isolation.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.control_plane import ControlPlane
from repro.sim.component import Component, ResponseCallback
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket
from repro.sim.trace import NULL_TRACER, Tracer


class CrossbarControlPlane(ControlPlane):
    """Per-DS-id link shares and traffic statistics for the crossbar."""

    IDENT = "XBAR_CP"
    TYPE_CODE = "X"
    PARAMETER_COLUMNS = (("share", 0),)  # weight; 0 = fair share
    STATISTICS_COLUMNS = (("flits", 0), ("bytes", 0))

    def __init__(self, engine: Engine, name: str = "cpa_xbar", **kwargs):
        super().__init__(engine, name, **kwargs)
        self._window: dict[tuple[int, str], int] = {}

    def weight(self, ds_id: int) -> float:
        share = self.parameters.get_default(ds_id, "share", 0)
        return float(share) if share > 0 else 1.0

    def record(self, ds_id: int, nbytes: int) -> None:
        for column, amount in (("flits", 1), ("bytes", nbytes)):
            key = (ds_id, column)
            self._window[key] = self._window.get(key, 0) + amount

    def on_window(self) -> None:
        for ds_id in self.statistics.ds_ids:
            for column in ("flits", "bytes"):
                self.statistics.add(ds_id, column, self._window.pop((ds_id, column), 0))


class Crossbar(Component):
    """A latency + bandwidth hop in front of a downstream component."""

    def __init__(
        self,
        engine: Engine,
        downstream: Component,
        traversal_ps: int = 2_000,            # ~4 CPU cycles
        bytes_per_ps: float = 0.064,           # 64 GB/s link
        flit_bytes: int = 16,
        control: Optional[CrossbarControlPlane] = None,
        name: str = "xbar",
        tracer: Tracer = NULL_TRACER,
        telemetry=None,
    ):
        super().__init__(engine, name)
        if traversal_ps < 0 or bytes_per_ps <= 0 or flit_bytes <= 0:
            raise ValueError("invalid crossbar parameters")
        self.downstream = downstream
        self.traversal_ps = traversal_ps
        self.bytes_per_ps = bytes_per_ps
        self.flit_bytes = flit_bytes
        self.control = control
        self.tracer = tracer
        self.telemetry = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )
        if self.telemetry is not None:
            self.telemetry.registry.gauge_fn(
                f"icn.{name}.forwarded", lambda: self.forwarded
            )
        self._queues: dict[int, deque] = {}
        self._deficit: dict[int, float] = {}
        self._rotation: list[int] = []
        self._current: Optional[int] = None
        self._busy = False
        self.forwarded = 0

    def handle_request(self, packet: MemoryPacket, on_response: ResponseCallback) -> None:
        ds_id = packet.effective_ds_id
        queue = self._queues.get(ds_id)
        if queue is None:
            queue = deque()
            self._queues[ds_id] = queue
            self._deficit.setdefault(ds_id, 0.0)
            self._rotation.append(ds_id)
        queue.append((packet, on_response))
        self._pump()

    def _pump(self) -> None:
        if self._busy:
            return
        ds_id = self._select()
        if ds_id is None:
            return
        packet, on_response = self._queues[ds_id].popleft()
        size = max(packet.size, self.flit_bytes)
        self._deficit[ds_id] -= size
        self._busy = True
        serialization_ps = int(size / self.bytes_per_ps)
        total_ps = self.traversal_ps + serialization_ps
        if self.control is not None:
            self.control.record(ds_id, size)
        self.post(total_ps, lambda: self._forward(packet, on_response))

    def _select(self) -> Optional[int]:
        """Deficit round robin over DS-ids, weighted by link shares.

        A DS-id keeps the link while its deficit covers its head packet
        (same structure as the IDE controller's scheduler).
        """
        active = [d for d in self._rotation if self._queues.get(d)]
        if not active:
            self._current = None
            return None
        if self._current is not None:
            queue = self._queues.get(self._current)
            if queue and self._deficit[self._current] >= self._head_size(self._current):
                return self._current
            self._current = None
        total_weight = sum(self._weight(d) for d in active) or 1.0
        for _ in range(len(self._rotation) * 64):
            ds_id = self._rotation[0]
            self._rotation.append(self._rotation.pop(0))
            if not self._queues.get(ds_id):
                self._deficit[ds_id] = 0.0
                continue
            quantum = self._weight(ds_id) / total_weight * self.flit_bytes * len(active)
            self._deficit[ds_id] += max(1.0, quantum)
            if self._deficit[ds_id] >= self._head_size(ds_id):
                self._current = ds_id
                return ds_id
        return None

    def _weight(self, ds_id: int) -> float:
        return self.control.weight(ds_id) if self.control else 1.0

    def _head_size(self, ds_id: int) -> int:
        return max(self._queues[ds_id][0][0].size, self.flit_bytes)

    def _forward(self, packet: MemoryPacket, on_response: ResponseCallback) -> None:
        self._busy = False
        self.forwarded += 1
        if packet.span is not None:
            packet.span.hop(f"{self.name}.forward", self.now)
        self.tracer.emit(
            self.now, self.name, "forward", f"dsid={packet.effective_ds_id}"
        )
        self.downstream.handle_request(packet, on_response)
        self._pump()
