"""Unit tests for the §8 extensions: differentiated engines and flow-id
tagging."""

import pytest

from tests.helpers import FakeMemory
from repro.extensions.engines import (
    CompressionEngine,
    EncryptionEngine,
    EngineControlPlane,
)
from repro.extensions.flow import FlowTable
from repro.io.nic import MultiQueueNic, NicControlPlane
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket


def make_compression(latency=12, ratio=50):
    engine = Engine()
    memory = FakeMemory(engine, latency_ps=10_000)
    control = EngineControlPlane(engine)
    control.allocate_ldom(1, enabled=1, ratio_pct=ratio)
    control.allocate_ldom(2)  # disabled
    mxt = CompressionEngine(engine, memory, control, latency_cycles=latency)
    return engine, memory, control, mxt


class TestCompressionEngine:
    def test_designated_dsid_compressed(self):
        engine, memory, _, mxt = make_compression()
        done = []
        mxt.handle_request(MemoryPacket(ds_id=1, addr=0, size=64), done.append)
        engine.run()
        assert memory.requests[0].size == 32  # 50% ratio
        assert done[0].size == 64  # caller sees the original packet
        assert mxt.transformed == 1

    def test_other_dsids_pass_through(self):
        engine, memory, _, mxt = make_compression()
        done = []
        mxt.handle_request(MemoryPacket(ds_id=2, addr=0, size=64), done.append)
        engine.run()
        assert memory.requests[0].size == 64
        assert mxt.passed_through == 1

    def test_latency_paid_both_ways(self):
        engine, memory, _, mxt = make_compression(latency=12)
        times = {}
        mxt.handle_request(MemoryPacket(ds_id=1, addr=0), lambda p: times.update(on=engine.now))
        engine.run()
        # 12 cycles in + memory 10000ps + 12 cycles out.
        assert times["on"] == 12 * 500 + 10_000 + 12 * 500

    def test_pass_through_has_no_latency(self):
        engine, memory, _, mxt = make_compression()
        times = {}
        mxt.handle_request(MemoryPacket(ds_id=2, addr=0), lambda p: times.update(on=engine.now))
        engine.run()
        assert times["on"] == 10_000

    def test_statistics_recorded(self):
        engine, memory, control, mxt = make_compression()
        mxt.handle_request(MemoryPacket(ds_id=1, addr=0, size=64), lambda p: None)
        engine.run()
        control.roll_window()
        assert control.statistics.get(1, "bytes_in") == 64
        assert control.statistics.get(1, "bytes_out") == 32
        assert control.statistics.get(1, "ops") == 1

    def test_ratio_reprogrammable(self):
        engine, memory, control, mxt = make_compression(ratio=25)
        mxt.handle_request(MemoryPacket(ds_id=1, addr=0, size=64), lambda p: None)
        engine.run()
        assert memory.requests[0].size == 16

    def test_negative_latency_rejected(self):
        engine = Engine()
        control = EngineControlPlane(engine)
        with pytest.raises(ValueError):
            CompressionEngine(engine, FakeMemory(engine), control, latency_cycles=-1)


class TestEncryptionEngine:
    def test_size_unchanged_latency_added(self):
        engine = Engine()
        memory = FakeMemory(engine, latency_ps=5_000)
        control = EngineControlPlane(engine)
        control.allocate_ldom(3, enabled=1)
        aes = EncryptionEngine(engine, memory, control, latency_cycles=20)
        times = {}
        aes.handle_request(MemoryPacket(ds_id=3, addr=0, size=64), lambda p: times.update(on=engine.now))
        engine.run()
        assert memory.requests[0].size == 64
        assert times["on"] == 20 * 500 + 5_000 + 20 * 500


class TestFlowTable:
    def make_flow_nic(self):
        engine = Engine()
        memory = FakeMemory(engine, latency_ps=100)
        control = NicControlPlane(engine)
        control.allocate_ldom(1)
        control.allocate_ldom(2)
        nic = MultiQueueNic(engine, memory=memory, control=control)
        return engine, memory, FlowTable(nic)

    def test_flow_classification_tags_dma(self):
        engine, memory, flows = self.make_flow_nic()
        flows.map_flow(0xABCD, ds_id=2)
        assert flows.receive(0xABCD, 1500) is True
        engine.run()
        assert memory.requests[0].ds_id == 2

    def test_unmatched_flow_dropped(self):
        engine, memory, flows = self.make_flow_nic()
        assert flows.receive(0x1234, 1500) is False
        assert flows.unmatched == 1
        engine.run()
        assert memory.requests == []

    def test_flow_update_and_unmap(self):
        _, _, flows = self.make_flow_nic()
        flows.map_flow(1, 1)
        flows.map_flow(1, 2)  # update, not new entry
        assert flows.flow_count == 1
        assert flows.ds_id_of(1) == 2
        flows.unmap_flow(1)
        assert flows.ds_id_of(1) is None

    def test_capacity(self):
        engine = Engine()
        nic = MultiQueueNic(engine)
        flows = FlowTable(nic, max_flows=1)
        flows.map_flow(1, 1)
        with pytest.raises(OverflowError):
            flows.map_flow(2, 1)

    def test_dsid_range(self):
        _, _, flows = self.make_flow_nic()
        with pytest.raises(ValueError):
            flows.map_flow(1, 1 << 16)
