"""Property-based invariants of the DRAM substrate."""

from hypothesis import given, settings, strategies as st

from repro.dram.control_plane import MemoryControlPlane
from repro.dram.controller import MemoryController
from repro.dram.timing import DramGeometry, decompose_address
from repro.sim.clock import ClockDomain, DRAM_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemOp, MemoryPacket

REQUEST = st.tuples(
    st.integers(min_value=1, max_value=2),        # ds_id (1 low, 2 high)
    st.integers(min_value=0, max_value=1 << 22),  # address
    st.booleans(),                                # is_write
    st.integers(min_value=0, max_value=2000),     # arrival gap (cycles)
)


def run_requests(requests, with_control=True):
    engine = Engine()
    clock = ClockDomain(engine, DRAM_CLOCK_PS)
    control = None
    if with_control:
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1, priority=0)
        control.allocate_ldom(2, priority=1)
    controller = MemoryController(engine, clock, control=control)
    done = []
    time_ps = 0
    for ds_id, addr, is_write, gap in requests:
        time_ps += gap * DRAM_CLOCK_PS
        pkt = MemoryPacket(
            ds_id=ds_id, addr=addr,
            op=MemOp.WRITE if is_write else MemOp.READ,
        )
        engine.schedule_at(
            time_ps, lambda p=pkt: controller.handle_request(p, done.append)
        )
    engine.run()
    return controller, done


@settings(max_examples=30, deadline=None)
@given(st.lists(REQUEST, min_size=1, max_size=80))
def test_every_request_completes(requests):
    controller, done = run_requests(requests)
    assert len(done) == len(requests)
    assert controller.served_requests == len(requests)


@settings(max_examples=30, deadline=None)
@given(st.lists(REQUEST, min_size=1, max_size=80))
def test_queue_delays_are_non_negative_and_recorded(requests):
    controller, _ = run_requests(requests)
    recorded = sum(r.count for r in controller.queue_delay)
    assert recorded == len(requests)
    for recorder in controller.queue_delay:
        assert all(sample >= 0 for sample in recorder.samples)


@settings(max_examples=30, deadline=None)
@given(st.lists(REQUEST, min_size=1, max_size=80))
def test_bandwidth_accounting_conserved(requests):
    controller, _ = run_requests(requests)
    assert controller.served_bytes == 64 * len(requests)


@settings(max_examples=20, deadline=None)
@given(st.lists(REQUEST, min_size=2, max_size=60))
def test_fifo_order_within_priority_class(requests):
    """Within one priority class, issue order follows arrival order
    (strict FIFO queues; the control plane only reorders *across*
    classes)."""
    controller, _ = run_requests(requests)
    # Reconstruct per-priority issue order from the recorders: samples
    # are appended at issue time, so their count is monotone; instead we
    # check the scheduler is empty and nothing was dropped.
    assert controller.scheduler.occupancy == 0


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 33))
def test_address_decomposition_total(addr):
    geometry = DramGeometry()
    bank, row, col = decompose_address(addr, geometry)
    assert 0 <= bank < geometry.total_banks
    assert 0 <= col < geometry.row_bytes
    assert row >= 0


@settings(max_examples=20, deadline=None)
@given(st.lists(REQUEST, min_size=1, max_size=60))
def test_stats_window_totals_match_service(requests):
    controller, _ = run_requests(requests)
    control = controller.control
    control.roll_window()
    total_bytes = sum(
        control.statistics.get(d, "bandwidth") for d in (1, 2)
    )
    assert total_bytes == 64 * len(requests)
    total_served = sum(
        control.statistics.get(d, "serv_cnt") for d in (1, 2)
    )
    assert total_served == len(requests)
