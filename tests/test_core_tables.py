"""Unit and property tests for DS-id indexed tables."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tables import DsidTable, TableError, TableSchema, make_table


def waymask_schema():
    return TableSchema([("waymask", 0xFFFF), ("priority", 0)])


class TestTableSchema:
    def test_column_order_defines_offsets(self):
        schema = waymask_schema()
        assert schema.offset_of("waymask") == 0
        assert schema.offset_of("priority") == 1
        assert schema.column_at(0) == "waymask"
        assert schema.column_at(1) == "priority"

    def test_unknown_column_raises(self):
        with pytest.raises(TableError):
            waymask_schema().offset_of("nope")

    def test_offset_out_of_range_raises(self):
        with pytest.raises(TableError):
            waymask_schema().column_at(2)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema([("a", 0), ("a", 1)])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            TableSchema([])

    def test_defaults_are_fresh_copies(self):
        schema = waymask_schema()
        d1 = schema.defaults
        d1["waymask"] = 0
        assert schema.defaults["waymask"] == 0xFFFF


class TestDsidTable:
    def test_allocate_uses_defaults(self):
        table = make_table("t", [("waymask", 0xFFFF)])
        row = table.allocate(1)
        assert row == {"waymask": 0xFFFF}

    def test_allocate_with_overrides(self):
        table = make_table("t", [("waymask", 0xFFFF), ("priority", 0)])
        table.allocate(2, priority=1)
        assert table.get(2, "priority") == 1
        assert table.get(2, "waymask") == 0xFFFF

    def test_allocate_unknown_override_rejected(self):
        table = make_table("t", [("a", 0)])
        with pytest.raises(TableError):
            table.allocate(1, b=2)

    def test_double_allocate_rejected(self):
        table = make_table("t", [("a", 0)])
        table.allocate(1)
        with pytest.raises(TableError):
            table.allocate(1)

    def test_capacity_enforced(self):
        # Fig. 12 sizes the hardware tables; overflowing must fail loudly.
        table = make_table("t", [("a", 0)], max_entries=2)
        table.allocate(0)
        table.allocate(1)
        with pytest.raises(TableError):
            table.allocate(2)

    def test_free_releases_capacity(self):
        table = make_table("t", [("a", 0)], max_entries=1)
        table.allocate(0)
        table.free(0)
        table.allocate(1)
        assert table.ds_ids == [1]

    def test_free_unallocated_raises(self):
        with pytest.raises(TableError):
            make_table("t", [("a", 0)]).free(5)

    def test_get_set(self):
        table = make_table("t", [("a", 0)])
        table.allocate(3)
        table.set(3, "a", 42)
        assert table.get(3, "a") == 42

    def test_get_unallocated_raises(self):
        with pytest.raises(TableError):
            make_table("t", [("a", 0)]).get(9, "a")

    def test_get_default_for_missing_row(self):
        table = make_table("t", [("a", 7)])
        assert table.get_default(9, "a", 123) == 123
        table.allocate(9)
        assert table.get_default(9, "a", 123) == 7

    def test_add_increments(self):
        table = make_table("t", [("hits", 0)])
        table.allocate(1)
        table.add(1, "hits", 3)
        assert table.add(1, "hits", 2) == 5

    def test_values_coerced_to_int(self):
        table = make_table("t", [("a", 0)])
        table.allocate(1)
        table.set(1, "a", 7.0)
        assert table.get(1, "a") == 7
        assert isinstance(table.get(1, "a"), int)

    def test_row_returns_copy(self):
        table = make_table("t", [("a", 1)])
        table.allocate(1)
        row = table.row(1)
        row["a"] = 99
        assert table.get(1, "a") == 1

    def test_rows_iteration_sorted(self):
        table = make_table("t", [("a", 0)])
        for ds_id in (3, 1, 2):
            table.allocate(ds_id)
        assert [d for d, _ in table.rows()] == [1, 2, 3]

    def test_cell_access_by_offset(self):
        table = make_table("t", [("a", 0), ("b", 5)])
        table.allocate(1)
        table.write_cell(1, 1, 77)
        assert table.read_cell(1, 1) == 77
        assert table.get(1, "b") == 77

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            DsidTable("t", waymask_schema(), max_entries=0)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=2**63 - 1)),
        min_size=1,
        max_size=60,
    )
)
def test_property_read_after_write_by_offset(writes):
    """Any sequence of writes is observable: last write per cell wins."""
    table = make_table("t", [("c0", 0), ("c1", 0)], max_entries=64)
    expected = {}
    for ds_id, value in writes:
        if not table.has(ds_id):
            table.allocate(ds_id)
        offset = value % 2
        table.write_cell(ds_id, offset, value)
        expected[(ds_id, offset)] = value
    for (ds_id, offset), value in expected.items():
        assert table.read_cell(ds_id, offset) == value


@given(st.sets(st.integers(min_value=0, max_value=1000), min_size=1, max_size=64))
def test_property_allocation_capacity_invariant(ds_ids):
    table = make_table("t", [("a", 0)], max_entries=32)
    allocated = 0
    for ds_id in sorted(ds_ids):
        if allocated < 32:
            table.allocate(ds_id)
            allocated += 1
        else:
            with pytest.raises(TableError):
                table.allocate(ds_id)
    assert table.entry_count == min(len(ds_ids), 32)
