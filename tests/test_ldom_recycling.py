"""LDom destruction must flush caches and recycle memory windows."""

import pytest

from tests.helpers import FakeMemory
from repro.cache.cache import Cache, CacheConfig
from repro.cache.control_plane import LlcControlPlane
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemOp, MemoryPacket
from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.stream import Stream


class TestCacheFlushDsid:
    def make_cache(self):
        engine = Engine()
        control = LlcControlPlane(engine, num_ways=4)
        control.allocate_ldom(1)
        control.allocate_ldom(2)
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine, latency_ps=1000)
        config = CacheConfig("c", size_bytes=8 * 4 * 64, ways=4)
        cache = Cache(engine, clock, config, memory, control=control)
        return engine, cache, control, memory

    def fill(self, engine, cache, ds_id, lines, write=False):
        for i in range(lines):
            pkt = MemoryPacket(
                ds_id=ds_id, addr=i * 64,
                op=MemOp.WRITE if write else MemOp.READ,
            )
            cache.handle_request(pkt, lambda p: None)
            engine.run()

    def test_flush_removes_only_target_dsid(self):
        engine, cache, control, _ = self.make_cache()
        self.fill(engine, cache, 1, 8)
        self.fill(engine, cache, 2, 8)
        flushed = cache.flush_dsid(1)
        assert flushed == 8
        assert cache.occupancy_blocks(1) == 0
        assert cache.occupancy_blocks(2) == 8
        assert control.occupancy_bytes(1) == 0

    def test_flush_writes_back_dirty_lines(self):
        engine, cache, control, memory = self.make_cache()
        self.fill(engine, cache, 1, 4, write=True)
        cache.flush_dsid(1)
        writebacks = memory.requests_of(op=MemOp.WRITEBACK)
        assert len(writebacks) == 4
        assert all(p.owner_ds_id == 1 for p in writebacks)

    def test_flush_clean_lines_no_writeback(self):
        engine, cache, control, memory = self.make_cache()
        self.fill(engine, cache, 1, 4, write=False)
        cache.flush_dsid(1)
        assert memory.requests_of(op=MemOp.WRITEBACK) == []

    def test_flushed_lines_miss_afterwards(self):
        engine, cache, _, _ = self.make_cache()
        self.fill(engine, cache, 1, 4)
        cache.flush_dsid(1)
        misses_before = cache.total_misses
        self.fill(engine, cache, 1, 4)
        assert cache.total_misses == misses_before + 4


class TestLDomRecycling:
    def test_destroy_then_create_reuses_memory_window(self):
        server = PardServer(TABLE2.scaled(32))
        fw = server.firmware
        first = fw.create_ldom("a", (0,), 4 << 20)
        first_base = first.memory.base
        fw.destroy_ldom("a")
        second = fw.create_ldom("b", (0,), 4 << 20)
        assert second.memory.base == first_base
        assert second.ds_id != first.ds_id  # DS-ids are never recycled

    def test_destroy_flushes_llc_footprint(self):
        server = PardServer(TABLE2.scaled(32))
        fw = server.firmware
        ldom = fw.create_ldom("a", (0,), 4 << 20)
        server.start()
        fw.launch_ldom("a", {0: Stream(array_bytes=32 << 10, write_fraction=0.5)})
        server.run_ms(0.5)
        assert server.llc.occupancy_blocks(ldom.ds_id) > 0
        # Stop the core's workload by destroying while it runs is not
        # allowed for RUNNING cores in this model; stop first.
        ldom.stop()
        ldom.launch()  # exercise relaunch path, then stop for real
        ldom.stop()
        fw.destroy_ldom("a")
        assert server.llc.occupancy_blocks(ldom.ds_id) == 0

    def test_out_of_memory_recovers_after_destroy(self):
        server = PardServer(TABLE2.scaled(32))
        fw = server.firmware
        capacity = server.config.dram_geometry.capacity_bytes
        fw.create_ldom("big", (0,), capacity // 2)
        with pytest.raises(Exception):
            fw.create_ldom("too-big", (1,), capacity)
        fw.destroy_ldom("big")
        fw.create_ldom("big2", (1,), capacity // 2)
