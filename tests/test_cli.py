"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for name in ("table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "all"):
            args = parser.parse_args([name])
            assert callable(args.fn)

    def test_fig8_load_parsing(self):
        args = build_parser().parse_args(["fig8", "--loads", "100,200", "--measure-ms", "1.5"])
        assert args.loads == "100,200"
        assert args.measure_ms == 1.5


class TestCommands:
    def test_table2_prints_configuration(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "CPU" in out and "4MB" in out and "DDR3-1600" in out

    def test_fig12_prints_anchors(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "1526" in out and "10.1%" in out
        assert "2359" in out and "3.1%" in out

    def test_fig11_runs(self, capsys):
        assert main(["fig11", "--requests", "1200"]) == 0
        out = capsys.readouterr().out
        assert "high priority" in out
        assert "x faster" in out

    @pytest.mark.slow
    def test_fig9_runs_small(self, capsys):
        assert main(["fig9", "--rps", "150000", "--total-ms", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "final waymask" in out
        assert "trigger" in out
