"""Unit tests for the priority FR-FCFS scheduler."""

import pytest

from repro.dram.bank import BankState
from repro.dram.scheduler import PendingRequest, PriorityFrFcfsScheduler
from repro.dram.timing import DramTiming
from repro.sim.packet import MemoryPacket


def make_request(bank=0, row=0, priority=0, enq=0, ds_id=0):
    return PendingRequest(
        packet=MemoryPacket(ds_id=ds_id, addr=0),
        bank_index=bank,
        row=row,
        priority=priority,
        enqueued_at_ps=enq,
        on_response=lambda p: None,
    )


def make_banks(n=4):
    return [BankState(i) for i in range(n)]


class TestPriorityQueues:
    def test_high_priority_first(self):
        sched = PriorityFrFcfsScheduler(priority_levels=2)
        sched.enqueue(make_request(priority=0, enq=0, ds_id=1))
        sched.enqueue(make_request(priority=1, enq=100, ds_id=2))
        banks = make_banks()
        chosen = sched.select(banks, now_ps=200)
        assert chosen.packet.ds_id == 2  # newer but higher priority

    def test_priority_out_of_range_rejected(self):
        sched = PriorityFrFcfsScheduler(priority_levels=2)
        with pytest.raises(ValueError):
            sched.enqueue(make_request(priority=2))

    def test_single_level_fifo_baseline(self):
        sched = PriorityFrFcfsScheduler(priority_levels=1)
        sched.enqueue(make_request(enq=10, ds_id=1))
        sched.enqueue(make_request(enq=5, ds_id=2))
        chosen = sched.select(make_banks(), now_ps=100)
        assert chosen.packet.ds_id == 2  # oldest first

    def test_occupancy_tracks_enqueue_and_select(self):
        sched = PriorityFrFcfsScheduler(2)
        sched.enqueue(make_request())
        sched.enqueue(make_request(priority=1))
        assert sched.occupancy == 2
        sched.select(make_banks(), 0)
        assert sched.occupancy == 1

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            PriorityFrFcfsScheduler(0)


class TestFrFcfs:
    def test_row_hit_preferred_over_older_miss(self):
        sched = PriorityFrFcfsScheduler(1)
        banks = make_banks()
        timing = DramTiming()
        banks[0].record_access(7, 0, 0, timing, 1250, False)  # row 7 open
        sched.enqueue(make_request(bank=0, row=3, enq=0, ds_id=1))   # older, miss
        sched.enqueue(make_request(bank=0, row=7, enq=50, ds_id=2))  # newer, hit
        chosen = sched.select(banks, now_ps=100)
        assert chosen.packet.ds_id == 2

    def test_oldest_hit_wins_among_hits(self):
        sched = PriorityFrFcfsScheduler(1)
        banks = make_banks()
        timing = DramTiming()
        banks[0].record_access(7, 0, 0, timing, 1250, False)
        sched.enqueue(make_request(bank=0, row=7, enq=50, ds_id=1))
        sched.enqueue(make_request(bank=0, row=7, enq=10, ds_id=2))
        chosen = sched.select(banks, now_ps=100)
        assert chosen.packet.ds_id == 2

    def test_busy_bank_requests_skipped(self):
        sched = PriorityFrFcfsScheduler(1)
        banks = make_banks()
        banks[0].ready_at_ps = 1_000_000
        sched.enqueue(make_request(bank=0, enq=0, ds_id=1))
        sched.enqueue(make_request(bank=1, enq=50, ds_id=2))
        chosen = sched.select(banks, now_ps=100)
        assert chosen.packet.ds_id == 2

    def test_returns_none_when_no_bank_ready(self):
        sched = PriorityFrFcfsScheduler(1)
        banks = make_banks()
        banks[0].ready_at_ps = 1_000_000
        sched.enqueue(make_request(bank=0))
        assert sched.select(banks, now_ps=100) is None
        assert sched.occupancy == 1  # not consumed

    def test_low_priority_served_when_high_bank_busy(self):
        sched = PriorityFrFcfsScheduler(2)
        banks = make_banks()
        banks[0].ready_at_ps = 1_000_000
        sched.enqueue(make_request(bank=0, priority=1, ds_id=1))
        sched.enqueue(make_request(bank=1, priority=0, ds_id=2))
        chosen = sched.select(banks, now_ps=100)
        assert chosen.packet.ds_id == 2


class TestNextBankReady:
    def test_empty_queue_returns_none(self):
        sched = PriorityFrFcfsScheduler(1)
        assert sched.next_bank_ready_ps(make_banks(), 0) is None

    def test_earliest_ready_time(self):
        sched = PriorityFrFcfsScheduler(1)
        banks = make_banks()
        banks[0].ready_at_ps = 500
        banks[1].ready_at_ps = 300
        sched.enqueue(make_request(bank=0))
        sched.enqueue(make_request(bank=1))
        assert sched.next_bank_ready_ps(banks, now_ps=0) == 300

    def test_ready_now_clamps_to_now(self):
        sched = PriorityFrFcfsScheduler(1)
        banks = make_banks()
        sched.enqueue(make_request(bank=0))
        assert sched.next_bank_ready_ps(banks, now_ps=700) == 700
