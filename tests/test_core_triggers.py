"""Unit tests for trigger operators and rules."""

import pytest
from hypothesis import given, strategies as st

from repro.core.triggers import TriggerOp, TriggerRule


class TestTriggerOp:
    @pytest.mark.parametrize(
        "op,observed,threshold,expected",
        [
            (TriggerOp.GT, 31, 30, True),
            (TriggerOp.GT, 30, 30, False),
            (TriggerOp.LT, 29, 30, True),
            (TriggerOp.LT, 30, 30, False),
            (TriggerOp.GE, 30, 30, True),
            (TriggerOp.LE, 30, 30, True),
            (TriggerOp.EQ, 30, 30, True),
            (TriggerOp.EQ, 31, 30, False),
            (TriggerOp.NE, 31, 30, True),
            (TriggerOp.NE, 30, 30, False),
        ],
    )
    def test_apply(self, op, observed, threshold, expected):
        assert op.apply(observed, threshold) is expected

    @pytest.mark.parametrize(
        "symbol,op",
        [
            ("gt", TriggerOp.GT), (">", TriggerOp.GT),
            ("lt", TriggerOp.LT), ("<", TriggerOp.LT),
            ("GE", TriggerOp.GE), (">=", TriggerOp.GE),
            ("le", TriggerOp.LE), ("<=", TriggerOp.LE),
            ("eq", TriggerOp.EQ), ("==", TriggerOp.EQ),
            ("ne", TriggerOp.NE), ("!=", TriggerOp.NE),
        ],
    )
    def test_from_symbol(self, symbol, op):
        assert TriggerOp.from_symbol(symbol) is op

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValueError):
            TriggerOp.from_symbol("~=")

    def test_symbol_roundtrip(self):
        for op in TriggerOp:
            assert TriggerOp.from_symbol(op.symbol) is op


class TestTriggerRule:
    def make_rule(self, threshold=3000):
        # The paper's running example: MissRate > 30% (basis points).
        return TriggerRule(ds_id=2, stat_column="miss_rate", op=TriggerOp.GT, threshold=threshold)

    def test_fires_on_condition(self):
        rule = self.make_rule()
        assert rule.evaluate(3500) is True
        assert rule.fire_count == 1

    def test_does_not_fire_below_threshold(self):
        rule = self.make_rule()
        assert rule.evaluate(2999) is False
        assert rule.fire_count == 0

    def test_edge_armed_no_refire_while_standing(self):
        rule = self.make_rule()
        assert rule.evaluate(3500) is True
        assert rule.evaluate(3600) is False  # still true, but not re-armed
        assert rule.fire_count == 1

    def test_rearms_after_condition_clears(self):
        rule = self.make_rule()
        assert rule.evaluate(3500) is True
        assert rule.evaluate(1000) is False  # condition false -> re-arm
        assert rule.evaluate(4000) is True
        assert rule.fire_count == 2

    def test_disabled_rule_never_fires(self):
        rule = self.make_rule()
        rule.enabled = False
        assert rule.evaluate(9999) is False

    def test_describe_is_readable(self):
        text = self.make_rule().describe()
        assert "miss_rate" in text
        assert ">" in text
        assert "3000" in text

    @given(st.lists(st.integers(min_value=0, max_value=10000), min_size=1, max_size=100))
    def test_property_fire_count_bounded_by_transitions(self, observations):
        """fire_count equals the number of false->true transitions."""
        rule = self.make_rule()
        previous_true = False
        expected = 0
        for value in observations:
            now_true = value > 3000
            if now_true and not previous_true:
                expected += 1
            rule.evaluate(value)
            previous_true = now_true
        assert rule.fire_count == expected
