"""Unit tests for DDR3 timing, address decomposition and bank state."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.bank import BankState
from repro.dram.timing import DramGeometry, DramTiming, decompose_address


class TestDramTiming:
    def test_table2_defaults(self):
        timing = DramTiming()
        # 13.75 ns at tCK = 1.25 ns -> 11 cycles; 35 ns -> 28 cycles.
        assert timing.t_rcd == 11
        assert timing.t_cl == 11
        assert timing.t_rp == 11
        assert timing.t_ras == 28
        assert timing.t_burst == 4  # BL8 on a DDR bus

    def test_latency_composition(self):
        timing = DramTiming()
        assert timing.row_hit_latency == 15
        assert timing.row_closed_latency == 26
        assert timing.row_conflict_latency == 37
        assert timing.row_hit_latency < timing.row_closed_latency < timing.row_conflict_latency

    def test_validation(self):
        with pytest.raises(ValueError):
            DramTiming(t_cl=0)


class TestDramGeometry:
    def test_table2_defaults(self):
        geometry = DramGeometry()
        assert geometry.total_banks == 16  # 2 ranks x 8 banks
        assert geometry.row_bytes == 1024
        assert geometry.rows_per_bank == 8 * 1024 ** 3 // (16 * 1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramGeometry(row_bytes=1000)  # not a power of two
        with pytest.raises(ValueError):
            DramGeometry(ranks=0)


class TestAddressDecomposition:
    def test_sequential_addresses_interleave_banks(self):
        geometry = DramGeometry()
        banks = [decompose_address(i * 1024, geometry)[0] for i in range(16)]
        assert banks == list(range(16))

    def test_same_row_same_bank_for_row_bytes(self):
        geometry = DramGeometry()
        bank0, row0, col0 = decompose_address(0, geometry)
        bank1, row1, col1 = decompose_address(1023, geometry)
        assert (bank0, row0) == (bank1, row1)
        assert (col0, col1) == (0, 1023)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            decompose_address(-1, DramGeometry())

    @given(st.integers(min_value=0, max_value=2**33))
    def test_property_decomposition_is_bijective(self, addr):
        geometry = DramGeometry()
        bank, row, col = decompose_address(addr, geometry)
        assert 0 <= bank < geometry.total_banks
        assert 0 <= col < geometry.row_bytes
        rebuilt = (row * geometry.total_banks + bank) * geometry.row_bytes + col
        assert rebuilt == addr


class TestBankState:
    def test_initially_closed(self):
        bank = BankState(0)
        assert bank.row_state(5) == "closed"

    def test_hit_after_access(self):
        bank = BankState(0)
        timing = DramTiming()
        bank.record_access(5, 0, 1000, timing, 1250, high_priority=False)
        assert bank.row_state(5) == "hit"
        assert bank.row_state(6) == "conflict"

    def test_access_latency_by_state(self):
        bank = BankState(0)
        timing = DramTiming()
        assert bank.access_latency_cycles(5, timing, False) == timing.row_closed_latency
        bank.record_access(5, 0, 1000, timing, 1250, high_priority=False)
        assert bank.access_latency_cycles(5, timing, False) == timing.row_hit_latency
        assert bank.access_latency_cycles(6, timing, False) == timing.row_conflict_latency

    def test_tras_extends_conflict_completion(self):
        bank = BankState(0)
        timing = DramTiming()
        cycle_ps = 1250
        bank.record_access(5, 0, 1000, timing, cycle_ps, high_priority=False)
        # Conflicting access issued immediately: the old row was activated
        # at 0 and cannot precharge before tRAS.
        done = bank.record_access(6, 1000, 2000, timing, cycle_ps, high_priority=False)
        assert done > 2000
        assert done - 1000 >= (timing.t_ras * cycle_ps - 1000)

    def test_hp_row_buffer_avoids_conflict(self):
        # PARD §4.2: the extra per-bank row buffer lets a high-priority
        # request activate without closing the low-priority row.
        bank = BankState(0, hp_row_buffer=True)
        timing = DramTiming()
        bank.record_access(5, 0, 1000, timing, 1250, high_priority=False)
        assert bank.access_latency_cycles(6, timing, True) == timing.row_closed_latency
        bank.record_access(6, 2000, 3000, timing, 1250, high_priority=True)
        # Both rows are now hot.
        assert bank.row_state(5) == "hit"
        assert bank.row_state(6) == "hit"

    def test_without_hp_buffer_high_priority_conflicts(self):
        bank = BankState(0, hp_row_buffer=False)
        timing = DramTiming()
        bank.record_access(5, 0, 1000, timing, 1250, high_priority=False)
        assert bank.access_latency_cycles(6, timing, True) == timing.row_conflict_latency

    def test_close_precharges_both_buffers(self):
        bank = BankState(0, hp_row_buffer=True)
        timing = DramTiming()
        bank.record_access(5, 0, 1000, timing, 1250, high_priority=False)
        bank.record_access(6, 2000, 3000, timing, 1250, high_priority=True)
        bank.close()
        assert bank.row_state(5) == "closed"
        assert bank.row_state(6) == "closed"
