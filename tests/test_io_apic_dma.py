"""Unit tests for the tagged APIC and DMA engines."""

import pytest

from tests.helpers import FakeMemory
from repro.io.apic import Apic, RouteError
from repro.io.dma import DmaEngine
from repro.sim.engine import Engine
from repro.sim.packet import InterruptPacket, MemOp


class TestApic:
    def make_apic(self):
        engine = Engine()
        apic = Apic(engine)
        received = {0: [], 1: []}
        apic.register_core(0, lambda pkt: received[0].append(pkt))
        apic.register_core(1, lambda pkt: received[1].append(pkt))
        return engine, apic, received

    def test_route_per_dsid(self):
        # The same vector goes to different cores depending on DS-id --
        # the duplicated route tables of PARD §4.1.
        engine, apic, received = self.make_apic()
        apic.set_route(ds_id=1, vector=14, core_id=0)
        apic.set_route(ds_id=2, vector=14, core_id=1)
        apic.raise_interrupt(InterruptPacket(ds_id=1, vector=14))
        apic.raise_interrupt(InterruptPacket(ds_id=2, vector=14))
        engine.run()
        assert len(received[0]) == 1 and received[0][0].ds_id == 1
        assert len(received[1]) == 1 and received[1][0].ds_id == 2

    def test_unrouted_interrupt_dropped(self):
        engine, apic, received = self.make_apic()
        apic.raise_interrupt(InterruptPacket(ds_id=9, vector=14))
        engine.run()
        assert apic.dropped == 1
        assert not received[0] and not received[1]

    def test_route_to_unregistered_core_rejected(self):
        _, apic, _ = self.make_apic()
        with pytest.raises(RouteError):
            apic.set_route(1, 14, core_id=7)

    def test_clear_routes(self):
        engine, apic, received = self.make_apic()
        apic.set_route(1, 14, 0)
        apic.clear_routes(1)
        apic.raise_interrupt(InterruptPacket(ds_id=1, vector=14))
        engine.run()
        assert apic.dropped == 1

    def test_delivery_is_asynchronous(self):
        engine, apic, received = self.make_apic()
        apic.set_route(1, 14, 0)
        apic.raise_interrupt(InterruptPacket(ds_id=1, vector=14))
        assert received[0] == []  # not yet delivered
        engine.run()
        assert len(received[0]) == 1


class TestDmaEngine:
    def make_dma(self, chunk=4096):
        engine = Engine()
        memory = FakeMemory(engine, latency_ps=1000)
        apic = Apic(engine)
        delivered = []
        apic.register_core(0, delivered.append)
        dma = DmaEngine(engine, "disk.dma", memory, apic=apic, chunk_bytes=chunk)
        return engine, memory, apic, dma, delivered

    def test_descriptor_write_latches_dsid(self):
        _, _, _, dma, _ = self.make_dma()
        dma.program(descriptor_write_ds_id=3)
        assert dma.tag.ds_id == 3

    def test_transfers_carry_latched_dsid(self):
        engine, memory, apic, dma, _ = self.make_dma()
        dma.program(5)
        dma.transfer(8192, to_device=True, raise_interrupt=False)
        engine.run()
        assert len(memory.requests) == 2  # two 4KB chunks
        assert all(p.ds_id == 5 for p in memory.requests)
        assert all(p.op is MemOp.READ for p in memory.requests)

    def test_from_device_issues_memory_writes(self):
        engine, memory, _, dma, _ = self.make_dma()
        dma.program(2)
        dma.transfer(4096, to_device=False, raise_interrupt=False)
        engine.run()
        assert memory.requests[0].op is MemOp.WRITE

    def test_completion_interrupt_tagged(self):
        engine, memory, apic, dma, delivered = self.make_dma()
        apic.set_route(4, dma.interrupt_vector, 0)
        dma.program(4)
        dma.transfer(4096, to_device=True)
        engine.run()
        assert len(delivered) == 1
        assert delivered[0].ds_id == 4

    def test_completion_after_all_chunks(self):
        engine, memory, _, dma, _ = self.make_dma(chunk=1024)
        done_at = []
        dma.transfer(4096, to_device=True, raise_interrupt=False,
                     on_complete=lambda: done_at.append(engine.now))
        engine.run()
        assert len(memory.requests) == 4
        assert done_at and done_at[0] >= 1000  # after memory responses

    def test_dsid_override_for_vnics(self):
        engine, memory, _, dma, _ = self.make_dma()
        dma.program(1)
        dma.transfer(4096, to_device=False, raise_interrupt=False, ds_id=7)
        engine.run()
        assert memory.requests[0].ds_id == 7

    def test_transfer_without_memory_still_completes(self):
        engine = Engine()
        dma = DmaEngine(engine, "x.dma", memory=None)
        done = []
        dma.transfer(4096, to_device=True, raise_interrupt=False,
                     on_complete=lambda: done.append(True))
        assert done == [True]

    def test_invalid_size(self):
        _, _, _, dma, _ = self.make_dma()
        with pytest.raises(ValueError):
            dma.transfer(0, to_device=True)

    def test_byte_accounting(self):
        engine, _, _, dma, _ = self.make_dma()
        dma.transfer(10_000, to_device=True, raise_interrupt=False)
        engine.run()
        assert dma.bytes_transferred == 10_000
        assert dma.transfers_completed == 1
