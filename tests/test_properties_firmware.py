"""Property-based invariants of firmware LDom management."""

from hypothesis import given, settings, strategies as st

from tests.helpers import FakeMemory
from repro.cache.control_plane import LlcControlPlane
from repro.cpu.core import CpuCore
from repro.dram.control_plane import MemoryControlPlane
from repro.prm.firmware import Firmware, FirmwareError, HardwareInventory
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine

# An action sequence: create (core set, size index) or destroy (index of
# live LDom modulo the live count).
ACTION = st.one_of(
    st.tuples(st.just("create"),
              st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=2),
              st.integers(min_value=1, max_value=4)),
    st.tuples(st.just("destroy"), st.integers(min_value=0, max_value=10)),
)


def make_firmware():
    engine = Engine()
    clock = ClockDomain(engine, CPU_CLOCK_PS)
    memory = FakeMemory(engine)
    cores = [CpuCore(engine, clock, i, memory) for i in range(4)]
    planes = [LlcControlPlane(engine), MemoryControlPlane(engine)]
    inventory = HardwareInventory(
        control_planes=planes, cores=cores,
        memory_capacity_bytes=64 << 20,
    )
    return Firmware(engine, inventory), planes, cores


@settings(max_examples=40, deadline=None)
@given(st.lists(ACTION, min_size=1, max_size=25))
def test_ldom_management_invariants(actions):
    """Under any create/destroy sequence, the firmware keeps:

    - DS-ids unique among live LDoms;
    - every core owned by at most one live LDom;
    - live memory windows pairwise disjoint;
    - control-plane rows and sysfs subtrees exactly for live DS-ids.
    """
    firmware, planes, cores = make_firmware()
    counter = 0
    for action in actions:
        if action[0] == "create":
            _, core_set, size_mb = action
            counter += 1
            try:
                firmware.create_ldom(
                    f"ldom-{counter}", tuple(sorted(core_set)), size_mb << 20
                )
            except FirmwareError:
                pass  # core conflict or out of memory: both legal refusals
        else:
            _, index = action
            names = sorted(firmware.ldoms)
            if names:
                firmware.destroy_ldom(names[index % len(names)])

    live = list(firmware.ldoms.values())
    ds_ids = [ldom.ds_id for ldom in live]
    assert len(ds_ids) == len(set(ds_ids))

    owned_cores = [c for ldom in live for c in ldom.core_ids]
    assert len(owned_cores) == len(set(owned_cores))

    for i, first in enumerate(live):
        for second in live[i + 1:]:
            assert not first.memory.overlaps(second.memory)

    for plane in planes:
        assert sorted(plane.parameters.ds_ids) == sorted(ds_ids)
    for adaptor_name in firmware.ls("/sys/cpa"):
        nodes = firmware.ls(f"/sys/cpa/{adaptor_name}/ldoms")
        assert sorted(nodes) == sorted(f"ldom{d}" for d in ds_ids)

    # Cores of destroyed LDoms were retagged to the default domain.
    for core in cores:
        if core.core_id not in owned_cores:
            assert core.tag.ds_id == 0
