"""Unit tests for deterministic RNG streams and the tracer."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import DeterministicRng
from repro.sim.trace import NULL_TRACER, Tracer


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(1)
        b = DeterministicRng(1)
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.uniform() for _ in range(10)] != [b.uniform() for _ in range(10)]

    def test_child_streams_are_stable(self):
        x = DeterministicRng(9).child("mem").uniform()
        y = DeterministicRng(9).child("mem").uniform()
        assert x == y

    def test_child_streams_are_independent(self):
        root = DeterministicRng(9)
        a = root.child("a")
        b = root.child("b")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_exponential_positive_and_mean(self):
        rng = DeterministicRng(3)
        samples = [rng.exponential(10.0) for _ in range(5000)]
        assert all(s >= 0 for s in samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(10.0, rel=0.1)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            DeterministicRng().exponential(0)

    def test_zipf_in_range(self):
        rng = DeterministicRng(5)
        for _ in range(1000):
            assert 0 <= rng.zipf_index(100) < 100

    def test_zipf_skews_to_low_indices(self):
        rng = DeterministicRng(5)
        samples = [rng.zipf_index(1000, alpha=0.99) for _ in range(5000)]
        head = sum(1 for s in samples if s < 100)
        assert head > len(samples) * 0.5  # head of the distribution dominates

    def test_zipf_single_element(self):
        assert DeterministicRng().zipf_index(1) == 0

    def test_zipf_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            DeterministicRng().zipf_index(0)

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=2, max_value=500))
    def test_zipf_always_in_bounds(self, seed, n):
        rng = DeterministicRng(seed)
        for _ in range(20):
            assert 0 <= rng.zipf_index(n) < n

    def test_randint_inclusive(self):
        rng = DeterministicRng(1)
        values = {rng.randint(0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}


class TestTracer:
    def test_collects_records(self):
        tracer = Tracer()
        tracer.emit(10, "llc", "hit", "dsid=1")
        tracer.emit(20, "mem", "enqueue")
        assert len(tracer) == 2
        assert tracer.records[0].source == "llc"

    def test_filter_by_source_and_event(self):
        tracer = Tracer()
        tracer.emit(1, "llc", "hit")
        tracer.emit(2, "llc", "miss")
        tracer.emit(3, "mem", "hit")
        assert len(tracer.filter(source="llc")) == 2
        assert len(tracer.filter(event="hit")) == 2
        assert len(tracer.filter(source="llc", event="hit")) == 1

    def test_filter_with_predicate(self):
        tracer = Tracer()
        tracer.emit(1, "a", "x")
        tracer.emit(100, "a", "x")
        late = tracer.filter(predicate=lambda r: r.time_ps > 50)
        assert len(late) == 1

    def test_capacity_limit(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(i, "s", "e")
        assert len(tracer) == 2

    def test_capacity_keeps_most_recent_and_counts_drops(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(i, "s", "e")
        # Ring semantics: the newest records survive, evictions counted.
        assert [r.time_ps for r in tracer.records] == [3, 4]
        assert tracer.dropped == 3

    def test_unbounded_tracer_never_drops(self):
        tracer = Tracer()
        for i in range(10):
            tracer.emit(i, "s", "e")
        assert tracer.dropped == 0

    def test_clear_resets_dropped(self):
        tracer = Tracer(capacity=1)
        tracer.emit(1, "s", "e")
        tracer.emit(2, "s", "e")
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0
        assert len(tracer) == 0

    def test_disabled_tracer_drops(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1, "s", "e")
        assert len(tracer) == 0

    def test_null_tracer_drops_even_if_enabled_flag_toggled(self):
        NULL_TRACER.emit(1, "s", "e")
        assert len(NULL_TRACER) == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1, "s", "e")
        tracer.clear()
        assert len(tracer) == 0
