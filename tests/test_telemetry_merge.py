"""Telemetry merge semantics (the sweep runner's transport layer).

The contract under test: N registries populated independently and
merged in point-index order must equal one registry fed the union of
the observations -- counters sum, gauges resolve last-write-wins in
merge order, histogram buckets add elementwise -- and merged span
recorders keep per-point packet-id ranges disjoint.
"""

import pytest

from repro.telemetry import MetricsRegistry, Telemetry, merge_registry_dumps
from repro.telemetry.spans import SpanRecorder


def test_counters_sum_across_merged_registries():
    parts = []
    for amount in (3, 5, 9):
        registry = MetricsRegistry()
        registry.counter("reqs").add(amount)
        parts.append(registry.dump())
    merged = merge_registry_dumps(parts)
    assert merged.get("reqs").value() == 17


def test_gauges_are_last_write_by_merge_order():
    parts = []
    for value in (1.0, 7.0, 4.0):
        registry = MetricsRegistry()
        registry.gauge("depth").set(value)
        parts.append(registry.dump())
    assert merge_registry_dumps(parts).get("depth").value() == 4.0
    assert merge_registry_dumps(reversed(parts)).get("depth").value() == 1.0


def test_histogram_merge_equals_union_fed_registry():
    # Two halves of one observation stream, each into its own registry...
    lo, hi = [1, 2, 3, 5, 8], [13, 21, 34, 200]
    halves = []
    for values in (lo, hi):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", start=1.0, growth=2.0, count=6)
        for v in values:
            hist.record(v)
        halves.append(registry.dump())
    merged = merge_registry_dumps(halves)
    # ...must equal one registry fed the union.
    union = MetricsRegistry()
    hist = union.histogram("lat", start=1.0, growth=2.0, count=6)
    for v in lo + hi:
        hist.record(v)
    assert merged.dump() == union.dump()
    got = merged.get("lat")
    assert got.count == len(lo + hi)
    assert got.total == sum(lo + hi)
    assert (got.min, got.max) == (1, 200)


def test_histogram_bounds_mismatch_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("lat", start=1.0, growth=2.0, count=6).record(3)
    b.histogram("lat", start=1.0, growth=4.0, count=6).record(3)
    target = MetricsRegistry()
    target.merge_dump(a.dump())
    with pytest.raises(ValueError, match="bucket bounds differ"):
        target.merge_dump(b.dump())


def test_callback_gauge_cannot_absorb_frozen_value():
    source = MetricsRegistry()
    source.gauge("live").set(2.0)
    target = MetricsRegistry()
    target.gauge_fn("live", lambda: 99.0)
    with pytest.raises(ValueError, match="callback-backed"):
        target.merge_dump(source.dump())


def test_dump_freezes_callback_gauges():
    registry = MetricsRegistry()
    registry.gauge_fn("live", lambda: 42.0)
    assert registry.dump()["live"] == {"kind": "gauge", "value": 42.0}


def _spans_with_ids(ids, ds_id=0):
    recorder = SpanRecorder(sample_every=1)
    for packet_id in ids:
        span = recorder.maybe_start(ds_id=ds_id, packet_id=packet_id)
        span.hop("a", 0)
        span.hop("b", 100)
        recorder.finish(span)
    return recorder


def test_span_absorb_rebases_packet_ids():
    merged = SpanRecorder(sample_every=1)
    offset = merged.absorb(_spans_with_ids([0, 1, 2]).dump(), id_offset=0)
    assert offset == 3
    offset = merged.absorb(_spans_with_ids([0, 1]).dump(), id_offset=offset)
    assert offset == 5
    ids = [span.packet_id for span in merged.finished]
    assert ids == [0, 1, 2, 3, 4]
    assert merged.seen == 5 and merged.started == 5 and merged.dropped == 0


def test_span_absorb_accumulates_sampling_counters():
    source = SpanRecorder(sample_every=2)
    for packet_id in range(5):
        span = source.maybe_start(ds_id=1, packet_id=packet_id)
        if span is not None:
            recorder_finish = source.finish
            span.hop("only", 0)
            recorder_finish(span)
    merged = SpanRecorder(sample_every=1)
    merged.absorb(source.dump())
    assert merged.seen == 5       # all eligible packets counted
    assert merged.started == 3    # 1-in-2 sampling started 3 of them
    assert len(merged) == 3


def _point_payload(label, span_ids, counter_by):
    hub = Telemetry(span_sample=1)
    hub.begin_run(label)
    hub.registry.counter("pts").add(counter_by)
    for packet_id in span_ids:
        span = hub.spans.maybe_start(ds_id=0, packet_id=packet_id)
        span.hop("a", 0)
        hub.spans.finish(span)
    hub.snapshot(t_ps=0)
    return hub.dump_payload()


def test_merge_payload_disjoint_ids_and_snapshot_order():
    hub = Telemetry()
    hub.merge_payload(_point_payload("p0", [0, 1], counter_by=2))
    hub.merge_payload(_point_payload("p1", [0, 1, 2], counter_by=3))
    assert hub.registry.get("pts").value() == 5
    ids = [span.packet_id for span in hub.spans.finished]
    assert ids == [0, 1, 2, 3, 4]  # second point rebased past the first
    assert [snap["run"] for snap in hub.snapshots] == ["p0", "p1"]
