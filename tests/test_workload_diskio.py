"""Unit tests for the DiskCopy (dd) workload."""

import itertools

import pytest

from repro.sim.packet import IoOp
from repro.workloads.diskio import DiskCopy


class TestDiskCopy:
    def test_emits_io_ops_with_block_size(self):
        dd = DiskCopy(block_bytes=1 << 20, count=3, compute_cycles_between=0)
        ops = list(dd.ops())
        io_ops = [op for op in ops if op[0] == "io"]
        assert len(io_ops) == 3
        assert all(op[1].value == 1 << 20 for op in io_ops)
        assert all(op[1].op is IoOp.PIO_WRITE for op in io_ops)

    def test_read_mode(self):
        dd = DiskCopy(count=1, read=True)
        packet = next(op[1] for op in dd.ops() if op[0] == "io")
        assert packet.op is IoOp.PIO_READ

    def test_compute_between_blocks(self):
        dd = DiskCopy(count=2, compute_cycles_between=500)
        kinds = [op[0] for op in dd.ops()]
        assert kinds == ["io", "compute", "io", "compute"]

    def test_infinite_mode(self):
        dd = DiskCopy(count=0, compute_cycles_between=0)
        ops = list(itertools.islice(dd.ops(), 50))
        assert len(ops) == 50

    def test_progress_tracking(self):
        dd = DiskCopy(block_bytes=100, count=2, compute_cycles_between=0)
        list(dd.ops())
        assert dd.blocks_written == 2
        assert dd.bytes_written == 200

    def test_device_name(self):
        dd = DiskCopy(count=1, device="ide7")
        packet = next(op[1] for op in dd.ops() if op[0] == "io")
        assert packet.device == "ide7"

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskCopy(block_bytes=0)
        with pytest.raises(ValueError):
            DiskCopy(count=-1)
