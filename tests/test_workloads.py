"""Unit tests for workload models."""

import itertools

import pytest

from tests.helpers import FakeMemory
from repro.cpu.core import CoreState, CpuCore
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine, PS_PER_MS
from repro.workloads.base import Boot, LINE, Sequence, Workload
from repro.workloads.cacheflush import CacheFlush
from repro.workloads.memcached import MemcachedServer
from repro.workloads.spec import SyntheticSpec, lbm, leslie3d
from repro.workloads.stream import Stream


def collect_addrs(ops, limit=10_000):
    """Flatten load/store addresses from the first ``limit`` ops."""
    addrs = []
    for op in itertools.islice(ops, limit):
        if op[0] in ("load", "store"):
            addrs.append(op[1])
        elif op[0] == "loads":
            addrs.extend(op[1])
    return addrs


class TestBoot:
    def test_touches_whole_footprint(self):
        boot = Boot(footprint_bytes=64 * 100, mlp=4)
        addrs = collect_addrs(boot.ops())
        lines = {a // LINE for a in addrs}
        assert lines == set(range(100))

    def test_finite(self):
        boot = Boot(footprint_bytes=64 * 10)
        assert len(list(boot.ops())) > 0  # terminates

    def test_contains_stores(self):
        boot = Boot(footprint_bytes=64 * 32, store_every=4)
        kinds = {op[0] for op in boot.ops()}
        assert "store" in kinds

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Boot(footprint_bytes=32)


class TestSequence:
    def test_chains_stages(self):
        class Fixed(Workload):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def ops(self):
                yield ("compute", self.tag)

        seq = Sequence([Fixed(1), Fixed(2)])
        assert [op[1] for op in seq.ops()] == [1, 2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequence([])

    def test_bind_propagates(self):
        class Spy(Workload):
            def on_bind(self):
                self.bound = True

            def ops(self):
                return iter(())

        stages = [Spy(), Spy()]
        seq = Sequence(stages)
        seq.bind(core=object())
        assert all(s.bound for s in stages)


class TestStream:
    def test_addresses_sweep_sequentially(self):
        stream = Stream(array_bytes=64 * 64, mlp=4, write_fraction=0)
        addrs = collect_addrs(stream.ops(), limit=16)
        assert addrs[:8] == [i * LINE for i in range(8)]

    def test_wraps_around_array(self):
        stream = Stream(array_bytes=64 * 8, mlp=4, write_fraction=0)
        addrs = collect_addrs(stream.ops(), limit=100)
        assert max(addrs) < 64 * 8

    def test_write_fraction_produces_stores(self):
        stream = Stream(array_bytes=64 * 256, mlp=4, write_fraction=0.5)
        kinds = [op[0] for op in itertools.islice(stream.ops(), 200)]
        assert "store" in kinds

    def test_start_delay(self):
        stream = Stream(array_bytes=1 << 20, start_delay_cycles=500)
        first = next(iter(stream.ops()))
        assert first == ("compute", 500)

    def test_validation(self):
        with pytest.raises(ValueError):
            Stream(array_bytes=64, mlp=4)
        with pytest.raises(ValueError):
            Stream(write_fraction=1.5)


class TestCacheFlush:
    def test_covers_all_lines_each_pass(self):
        flush = CacheFlush(flush_bytes=64 * 40, mlp=8, passes=1)
        addrs = collect_addrs(flush.ops())
        assert {a // LINE for a in addrs} == set(range(40))

    def test_bounded_passes_terminate(self):
        flush = CacheFlush(flush_bytes=64 * 16, mlp=8, passes=2)
        list(flush.ops())
        assert flush.passes_completed == 2


class TestSyntheticSpec:
    def test_addresses_stay_in_working_set(self):
        spec = SyntheticSpec("x", working_set_bytes=64 * 128, compute_cycles_per_batch=10)
        addrs = collect_addrs(spec.ops(), limit=500)
        assert addrs and max(addrs) < 64 * 128

    def test_low_locality_sweeps_more_lines(self):
        streamy = SyntheticSpec("s", 64 * 4096, 10, locality=0.0)
        cachy = SyntheticSpec("c", 64 * 4096, 10, locality=0.95, hot_fraction=0.05)
        streamy_lines = {a // LINE for a in collect_addrs(streamy.ops(), 2000)}
        cachy_lines = {a // LINE for a in collect_addrs(cachy.ops(), 2000)}
        assert len(streamy_lines) > len(cachy_lines)

    def test_factories(self):
        assert leslie3d().name == "437.leslie3d"
        assert lbm().working_set_bytes > leslie3d().working_set_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec("x", 64, 10, mlp=4)
        with pytest.raises(ValueError):
            SyntheticSpec("x", 1 << 20, 10, locality=2.0)


class TestMemcached:
    def run_server(self, rps=50_000, duration_ms=4, mem_latency=1_000):
        engine = Engine()
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine, latency_ps=mem_latency)
        core = CpuCore(engine, clock, 0, memory)
        server = MemcachedServer(
            engine, rps=rps, loads_per_request=16, warmup_ps=0,
            working_set_bytes=64 * 1024,
        )
        core.assign(server)
        engine.run(until_ps=duration_ms * PS_PER_MS)
        return engine, core, server

    def test_serves_requests_and_records_latency(self):
        engine, core, server = self.run_server()
        assert server.requests_served > 0
        assert server.latencies.count > 0
        assert server.p95_ms() > 0

    def test_open_loop_arrivals_approximate_rate(self):
        _, _, server = self.run_server(rps=100_000, duration_ms=5)
        expected = 100_000 * 0.005
        assert server.requests_arrived == pytest.approx(expected, rel=0.25)

    def test_core_blocks_when_idle(self):
        engine, core, server = self.run_server(rps=1_000, duration_ms=2)
        # At 1 KRPS with tiny requests, the worker is parked most of the time.
        assert core.state is CoreState.BLOCKED

    def test_latency_grows_with_memory_latency(self):
        _, _, fast = self.run_server(mem_latency=1_000)
        _, _, slow = self.run_server(mem_latency=100_000)
        assert slow.mean_ms() > fast.mean_ms()

    def test_overload_builds_queue(self):
        # Offered load far beyond capacity: latencies must blow up.
        _, _, hot = self.run_server(rps=2_000_000, duration_ms=3, mem_latency=50_000)
        _, _, cool = self.run_server(rps=10_000, duration_ms=3, mem_latency=50_000)
        assert hot.p95_ms() > 10 * max(cool.p95_ms(), 1e-6)

    def test_warmup_excludes_early_requests(self):
        engine = Engine()
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine, latency_ps=100)
        core = CpuCore(engine, clock, 0, memory)
        server = MemcachedServer(
            engine, rps=100_000, loads_per_request=4,
            warmup_ps=2 * PS_PER_MS, working_set_bytes=64 * 64,
        )
        core.assign(server)
        engine.run(until_ps=1 * PS_PER_MS)
        assert server.requests_served > 0
        assert server.latencies.count == 0  # all within warmup

    def test_arrivals_stop_at_deadline(self):
        engine = Engine()
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine, latency_ps=100)
        core = CpuCore(engine, clock, 0, memory)
        server = MemcachedServer(
            engine, rps=100_000, loads_per_request=4,
            arrivals_until_ps=PS_PER_MS, working_set_bytes=64 * 64,
        )
        core.assign(server)
        engine.run(until_ps=3 * PS_PER_MS)
        arrived_at_deadline = server.requests_arrived
        engine.run(until_ps=5 * PS_PER_MS)
        assert server.requests_arrived == arrived_at_deadline

    def test_validation(self):
        with pytest.raises(ValueError):
            MemcachedServer(Engine(), rps=0)
