"""Randomized property tests for the event queue implementations.

A random scenario -- a self-expanding web of schedules, posts and
cancellations -- is replayed on the bucketed calendar queue and on the
heapq reference, and the two execution traces must be byte-identical:
same events, same timestamps, same tie-break order, same bounded-run
boundaries. Any divergence in ordering, cancellation handling or
``run(until_ps=...)`` semantics shows up as a trace mismatch.
"""

import pytest

from repro.sim.engine import ENGINE_KINDS, make_engine
from repro.sim.rng import DeterministicRng

SEEDS = [7, 23, 101, 2015]


class _Scenario:
    """A deterministic random workload driven entirely by engine callbacks.

    Every fired event appends ``(now, label)`` to the trace, then draws
    from the scenario RNG to decide what to do next: spawn follow-up
    events (via ``schedule`` or the uncancellable ``post`` path), cancel
    a pending handle, or go quiet. Because every draw happens inside a
    callback, the RNG stream itself verifies ordering: two engines only
    see the same draws if they fire events in exactly the same order.
    """

    def __init__(self, engine, seed: int, max_events: int = 400):
        self.engine = engine
        self.rng = DeterministicRng(seed, name="engine-prop")
        self.trace = []
        self.spawned = 0
        self.max_events = max_events
        self.handles = []

    def seed_events(self, count: int = 8) -> None:
        for _ in range(count):
            self._spawn()

    def _spawn(self) -> None:
        if self.spawned >= self.max_events:
            return
        label = self.spawned
        self.spawned += 1
        # Mix zero delays (same-timestamp ties) with spread-out ones.
        roll = self.rng.random()
        if roll < 0.3:
            delay = 0
        elif roll < 0.8:
            delay = self.rng.randint(1, 40) * 250
        else:
            delay = self.rng.randint(1, 5000)
        if self.rng.random() < 0.5:
            self.engine.post(delay, lambda: self._fire(label))
        else:
            handle = self.engine.schedule(delay, lambda: self._fire(label))
            self.handles.append(handle)

    def _fire(self, label: int) -> None:
        self.trace.append((self.engine.now, label))
        for _ in range(self.rng.randint(0, 2)):
            self._spawn()
        if self.handles and self.rng.random() < 0.25:
            victim = self.handles.pop(self.rng.randint(0, len(self.handles) - 1))
            victim.cancel()


def run_scenario(kind: str, seed: int, bounded: bool):
    engine = make_engine(kind)
    scenario = _Scenario(engine, seed)
    scenario.seed_events()
    boundaries = []
    if bounded:
        # Tile the timeline with random-sized bounded runs, exercising
        # the until_ps boundary (events exactly at the bound execute).
        slice_rng = DeterministicRng(seed, name="slices")
        while engine.pending_events:
            executed = engine.run_for(slice_rng.randint(1, 200_000))
            boundaries.append((engine.now, executed))
    else:
        engine.run()
    return scenario.trace, boundaries, engine.now


@pytest.mark.parametrize("seed", SEEDS)
def test_calendar_matches_heapq_free_run(seed):
    traces = {}
    for kind in sorted(ENGINE_KINDS):
        traces[kind] = run_scenario(kind, seed, bounded=False)
    assert traces["calendar"] == traces["heapq"]
    trace = traces["calendar"][0]
    assert len(trace) > 50  # the scenario actually did something
    times = [t for t, _ in trace]
    assert times == sorted(times)  # monotone timestamps


@pytest.mark.parametrize("seed", SEEDS)
def test_calendar_matches_heapq_bounded_runs(seed):
    traces = {}
    for kind in sorted(ENGINE_KINDS):
        traces[kind] = run_scenario(kind, seed, bounded=True)
    assert traces["calendar"] == traces["heapq"]


@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_is_reproducible(seed):
    """The same engine kind, run twice, is bit-identical with itself."""
    assert run_scenario("calendar", seed, bounded=False) == run_scenario(
        "calendar", seed, bounded=False
    )


@pytest.mark.parametrize("kind", sorted(ENGINE_KINDS))
def test_random_cancellations_never_fire(kind):
    """Cancelled events never execute, survivors all do, and the live
    counter tracks exactly, across random cancellation patterns."""
    rng = DeterministicRng(99, name="cancel")
    engine = make_engine(kind)
    fired = []
    handles = []
    for i in range(300):
        handles.append(engine.schedule(rng.randint(0, 10_000), lambda i=i: fired.append(i)))
    cancelled = set()
    for i, handle in enumerate(handles):
        if rng.random() < 0.4:
            handle.cancel()
            cancelled.add(i)
    assert engine.pending_events == 300 - len(cancelled)
    executed = engine.run()
    assert executed == 300 - len(cancelled)
    assert set(fired) == set(range(300)) - cancelled
    assert engine.pending_events == 0


@pytest.mark.parametrize("kind", sorted(ENGINE_KINDS))
def test_until_boundary_includes_events_at_bound(kind):
    engine = make_engine(kind)
    fired = []
    for t in (100, 200, 200, 300):
        engine.post_at(t, lambda t=t: fired.append(t))
    engine.run(until_ps=200)
    assert fired == [100, 200, 200]
    assert engine.now == 200
    engine.run()
    assert fired == [100, 200, 200, 300]
