"""Unit tests for configuration and server assembly."""

import pytest

from repro.sim.engine import PS_PER_MS
from repro.system.config import ServerConfig, TABLE2
from repro.system.server import PardServer
from repro.workloads.stream import Stream


class TestServerConfig:
    def test_table2_values(self):
        assert TABLE2.num_cores == 4
        assert TABLE2.l1_size_bytes == 64 * 1024
        assert TABLE2.l1_ways == 2
        assert TABLE2.llc_size_bytes == 4 * 1024 * 1024
        assert TABLE2.llc_ways == 16
        assert TABLE2.llc_hit_cycles == 20
        assert TABLE2.dram_geometry.ranks == 2
        assert TABLE2.dram_geometry.banks_per_rank == 8
        assert TABLE2.max_table_entries == 256
        assert TABLE2.max_triggers == 64

    def test_scaled_preserves_geometry(self):
        scaled = TABLE2.scaled(8)
        assert scaled.llc_size_bytes == TABLE2.llc_size_bytes // 8
        assert scaled.llc_ways == TABLE2.llc_ways
        assert scaled.llc_hit_cycles == TABLE2.llc_hit_cycles
        assert scaled.dram_timing == TABLE2.dram_timing

    def test_scale_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            TABLE2.scaled(3)
        with pytest.raises(ValueError):
            TABLE2.scaled(0)

    def test_describe_covers_table2_rows(self):
        rows = dict(TABLE2.describe())
        assert "CPU" in rows and "DRAM" in rows and "PRM" in rows
        assert "4MB" in rows["Shared LLC"]

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            ServerConfig(num_cores=0)


class TestPardServerAssembly:
    def test_structure_matches_config(self):
        server = PardServer(TABLE2.scaled(16))
        assert len(server.cores) == 4
        assert len(server.l1s) == 4
        assert server.llc.config.ways == 16
        assert len(server.control_planes) == 4
        # Firmware mounted one CPA per control plane.
        assert server.firmware.ls("/sys/cpa") == ["cpa0", "cpa1", "cpa2", "cpa3"]

    def test_core_tags_start_at_default(self):
        server = PardServer(TABLE2.scaled(16))
        assert all(core.tag.ds_id == 0 for core in server.cores)

    def test_cpu_utilization_counts_busy_cores(self):
        server = PardServer(TABLE2.scaled(16))
        assert server.cpu_utilization() == 0.0
        server.firmware.create_ldom("a", (0,), 1 << 20)
        server.firmware.launch_ldom("a", {0: Stream(array_bytes=1 << 20)})
        assert server.cpu_utilization() == 0.25

    def test_memory_path_wired_through_llc(self):
        server = PardServer(TABLE2.scaled(16))
        assert server.l1s[0].downstream is server.llc
        assert server.llc.downstream is server.memory_controller

    def test_start_launches_windows(self):
        server = PardServer(TABLE2.scaled(16))
        server.start()
        server.firmware.create_ldom("a", (0,), 1 << 20)
        server.run_ms(2.1)
        # After two windows, statistics exist (zeros are fine).
        value = server.firmware.cat("/sys/cpa/cpa0/ldoms/ldom1/statistics/miss_rate")
        assert value == "0"

    def test_run_ms_advances_time(self):
        server = PardServer(TABLE2.scaled(16))
        server.run_ms(1.5)
        assert server.engine.now == int(1.5 * PS_PER_MS)
