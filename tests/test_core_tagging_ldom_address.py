"""Unit tests for tag registers, LDoms and address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.address import AddressMapping, AddressTranslationError
from repro.core.ldom import LDom, LDomLifecycleError, LDomState
from repro.core.tagging import TagRegister
from repro.sim.packet import MemoryPacket


class TestTagRegister:
    def test_defaults_to_dsid_zero(self):
        assert TagRegister("core0").ds_id == 0

    def test_write_and_tag(self):
        reg = TagRegister("core0")
        reg.write(3)
        pkt = reg.tag(MemoryPacket(addr=0x100))
        assert pkt.ds_id == 3

    def test_range_checked(self):
        reg = TagRegister("core0")
        with pytest.raises(ValueError):
            reg.write(0x1_0000)
        with pytest.raises(ValueError):
            TagRegister("x", ds_id=-1)

    def test_on_change_callback(self):
        changes = []
        reg = TagRegister("core0", on_change=lambda old, new: changes.append((old, new)))
        reg.write(2)
        reg.write(2)  # no-op, no callback
        reg.write(5)
        assert changes == [(0, 2), (2, 5)]


class TestAddressMapping:
    def test_translate_basic(self):
        mapping = AddressMapping(base=0x1000, size=0x1000)
        assert mapping.translate(0) == 0x1000
        assert mapping.translate(0xFFF) == 0x1FFF

    def test_translate_out_of_bounds(self):
        mapping = AddressMapping(base=0x1000, size=0x1000)
        with pytest.raises(AddressTranslationError):
            mapping.translate(0x1000)
        with pytest.raises(AddressTranslationError):
            mapping.translate(-1)

    def test_reverse(self):
        mapping = AddressMapping(base=0x1000, size=0x1000)
        assert mapping.reverse(0x1800) == 0x800
        with pytest.raises(AddressTranslationError):
            mapping.reverse(0x2000)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AddressMapping(base=-1, size=10)
        with pytest.raises(ValueError):
            AddressMapping(base=0, size=0)

    def test_overlap_detection(self):
        a = AddressMapping(0, 100)
        b = AddressMapping(100, 100)
        c = AddressMapping(50, 100)
        assert not a.overlaps(b)
        assert a.overlaps(c)
        assert c.overlaps(b)

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=2**30))
    def test_property_translate_reverse_roundtrip(self, base, size):
        mapping = AddressMapping(base, size)
        for ldom_addr in (0, size // 2, size - 1):
            assert mapping.reverse(mapping.translate(ldom_addr)) == ldom_addr

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=1, max_value=2**20),
        st.integers(min_value=0, max_value=2**21),
    )
    def test_property_translation_stays_in_window(self, base, size, addr):
        mapping = AddressMapping(base, size)
        if addr < size:
            dram = mapping.translate(addr)
            assert mapping.base <= dram < mapping.limit
        else:
            with pytest.raises(AddressTranslationError):
                mapping.translate(addr)


def make_ldom(**kwargs):
    defaults = dict(
        ds_id=1,
        name="ldom1",
        core_ids=(0,),
        memory=AddressMapping(0, 1 << 20),
    )
    defaults.update(kwargs)
    return LDom(**defaults)


class TestLDom:
    def test_initial_state(self):
        assert make_ldom().state is LDomState.CREATED

    def test_launch_stop_relaunch(self):
        ldom = make_ldom()
        ldom.launch()
        assert ldom.is_running
        ldom.stop()
        assert ldom.state is LDomState.STOPPED
        ldom.launch()
        assert ldom.is_running

    def test_destroy_is_terminal(self):
        ldom = make_ldom()
        ldom.destroy()
        with pytest.raises(LDomLifecycleError):
            ldom.launch()

    def test_cannot_stop_before_launch(self):
        with pytest.raises(LDomLifecycleError):
            make_ldom().stop()

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            make_ldom(core_ids=())

    def test_disk_share_is_percentage(self):
        with pytest.raises(ValueError):
            make_ldom(disk_share=101)

    def test_negative_dsid_rejected(self):
        with pytest.raises(ValueError):
            make_ldom(ds_id=-1)
