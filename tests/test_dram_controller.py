"""Unit and integration tests for the memory controller."""

import pytest

from repro.core.address import AddressTranslationError
from repro.dram.control_plane import MemoryControlPlane
from repro.dram.controller import MemoryController
from repro.dram.timing import DramGeometry, DramTiming
from repro.sim.clock import ClockDomain, DRAM_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemOp, MemoryPacket


def make_controller(control=None, **kwargs):
    engine = Engine()
    clock = ClockDomain(engine, DRAM_CLOCK_PS)
    controller = MemoryController(engine, clock, control=control, **kwargs)
    return engine, controller


def read(engine, controller, addr, ds_id=0, op=MemOp.READ):
    done = []
    start = engine.now
    pkt = MemoryPacket(ds_id=ds_id, addr=addr, op=op, birth_ps=start)
    controller.handle_request(pkt, lambda p: done.append(engine.now - start))
    engine.run()
    assert done
    return done[0]


class TestBasicService:
    def test_closed_bank_latency(self):
        engine, controller = make_controller()
        latency = read(engine, controller, 0x0)
        timing = controller.timing
        assert latency == timing.row_closed_latency * DRAM_CLOCK_PS

    def test_row_hit_faster_than_first_access(self):
        engine, controller = make_controller()
        first = read(engine, controller, 0x0)
        second = read(engine, controller, 0x40)  # same 1KB row
        assert second == controller.timing.row_hit_latency * DRAM_CLOCK_PS
        assert second < first

    def test_row_conflict_slowest(self):
        engine, controller = make_controller()
        read(engine, controller, 0x0)
        # Same bank, different row: bank stride is total_banks * row_bytes.
        geometry = controller.geometry
        conflict_addr = geometry.total_banks * geometry.row_bytes
        latency = read(engine, controller, conflict_addr)
        assert latency >= controller.timing.row_conflict_latency * DRAM_CLOCK_PS

    def test_served_counters(self):
        engine, controller = make_controller()
        for i in range(5):
            read(engine, controller, i * 64)
        assert controller.served_requests == 5
        assert controller.served_bytes == 5 * 64

    def test_writeback_served(self):
        engine, controller = make_controller()
        latency = read(engine, controller, 0x0, op=MemOp.WRITEBACK)
        assert latency > 0

    def test_queue_delay_zero_when_idle(self):
        engine, controller = make_controller()
        read(engine, controller, 0x0)
        assert controller.queue_delay[0].samples == [0.0]

    def test_queue_delay_grows_under_load(self):
        engine, controller = make_controller()
        done = []
        # Same bank, alternating rows: serialized conflicts.
        stride = controller.geometry.total_banks * controller.geometry.row_bytes
        for i in range(8):
            pkt = MemoryPacket(addr=(i % 2) * stride + (i // 2) * 64)
            controller.handle_request(pkt, lambda p: done.append(p))
        engine.run()
        assert len(done) == 8
        assert controller.mean_queue_delay_cycles > 0


class TestBaselineVsControlPlane:
    def test_without_control_plane_single_queue(self):
        _, controller = make_controller()
        assert controller.scheduler.priority_levels == 1
        assert not controller.hp_row_buffer

    def test_with_control_plane_two_queues(self):
        engine = Engine()
        clock = ClockDomain(engine, DRAM_CLOCK_PS)
        control = MemoryControlPlane(engine)
        controller = MemoryController(engine, clock, control=control)
        assert controller.scheduler.priority_levels == 2

    def test_priority_requests_overtake(self):
        engine = Engine()
        clock = ClockDomain(engine, DRAM_CLOCK_PS)
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1, priority=0)
        control.allocate_ldom(2, priority=1)
        controller = MemoryController(engine, clock, control=control)
        order = []
        stride = controller.geometry.total_banks * controller.geometry.row_bytes
        # Saturate with low-priority conflicts, then inject one high-priority.
        for i in range(6):
            pkt = MemoryPacket(ds_id=1, addr=(i % 3) * stride)
            controller.handle_request(pkt, lambda p: order.append(p.ds_id))
        hp = MemoryPacket(ds_id=2, addr=64)
        engine.schedule(10_000, lambda: controller.handle_request(hp, lambda p: order.append(p.ds_id)))
        engine.run()
        assert order[-1] != 2, "high priority request finished last despite priority"
        assert 2 in order

    def test_high_priority_lower_mean_delay(self):
        engine = Engine()
        clock = ClockDomain(engine, DRAM_CLOCK_PS)
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1, priority=0)
        control.allocate_ldom(2, priority=1)
        controller = MemoryController(engine, clock, control=control)
        stride = controller.geometry.total_banks * controller.geometry.row_bytes
        interval = DRAM_CLOCK_PS * 10
        for i in range(60):
            low = MemoryPacket(ds_id=1, addr=(i % 4) * stride + (i % 16) * 64)
            high = MemoryPacket(ds_id=2, addr=(i % 4) * stride + 512 + (i % 16) * 64)
            engine.schedule(i * interval, lambda p=low: controller.handle_request(p, lambda _: None))
            engine.schedule(i * interval + 1, lambda p=high: controller.handle_request(p, lambda _: None))
        engine.run()
        low_delay = controller.queue_delay[0].mean
        high_delay = controller.queue_delay[1].mean
        assert high_delay < low_delay


class TestAddressTranslation:
    def make_mapped(self):
        engine = Engine()
        clock = ClockDomain(engine, DRAM_CLOCK_PS)
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1, addr_base=1 << 20, addr_size=1 << 20)
        control.allocate_ldom(2, addr_base=2 << 20, addr_size=1 << 20)
        controller = MemoryController(engine, clock, control=control)
        return engine, controller, control

    def test_ldom_zero_addresses_map_to_windows(self):
        engine, controller, control = self.make_mapped()
        assert control.translate(1, 0) == 1 << 20
        assert control.translate(2, 0) == 2 << 20

    def test_same_ldom_address_different_banks_possible(self):
        # Two LDoms issue address 0; after translation they land in
        # different rows, so both can be row hits concurrently.
        engine, controller, control = self.make_mapped()
        read(engine, controller, 0, ds_id=1)
        read(engine, controller, 0, ds_id=2)
        assert controller.served_requests == 2

    def test_out_of_window_access_raises(self):
        _, _, control = self.make_mapped()
        with pytest.raises(AddressTranslationError):
            control.translate(1, 1 << 20)

    def test_unmapped_dsid_is_identity(self):
        _, _, control = self.make_mapped()
        assert control.translate(99, 0x1234) == 0x1234

    def test_overlapping_windows_rejected_via_protocol(self):
        engine = Engine()
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1, addr_base=0, addr_size=1 << 20)
        control.allocate_ldom(2)
        base_offset = control.parameters.schema.offset_of("addr_base")
        size_offset = control.parameters.schema.offset_of("addr_size")
        from repro.core.programming import TABLE_PARAMETER
        control.register_file.write_cell(2, base_offset, TABLE_PARAMETER, 1 << 19)
        with pytest.raises(AddressTranslationError):
            control.register_file.write_cell(2, size_offset, TABLE_PARAMETER, 1 << 20)


class TestMemoryControlPlaneStats:
    def test_bandwidth_and_latency_published(self):
        engine = Engine()
        clock = ClockDomain(engine, DRAM_CLOCK_PS)
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1)
        controller = MemoryController(engine, clock, control=control)
        for i in range(4):
            read(engine, controller, i * 64, ds_id=1)
        control.roll_window()
        assert control.statistics.get(1, "bandwidth") == 4 * 64
        assert control.statistics.get(1, "serv_cnt") == 4
        assert control.last_window_bandwidth_bytes(1) == 256
        # Next window with no traffic: bandwidth drops to zero.
        control.roll_window()
        assert control.statistics.get(1, "bandwidth") == 0

    def test_avg_qlat_scaling(self):
        engine = Engine()
        control = MemoryControlPlane(engine)
        control.allocate_ldom(1)
        control.record_service(1, 64, queue_delay_cycles=2.7, total_cycles=20)
        control.roll_window()
        assert control.statistics.get(1, "avg_qlat") == 270
        assert control.last_window_avg_qlat_cycles(1) == pytest.approx(2.7)
