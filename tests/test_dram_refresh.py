"""Tests for optional DRAM refresh."""

import pytest

from repro.dram.controller import MemoryController
from repro.dram.timing import DramTiming
from repro.sim.clock import ClockDomain, DRAM_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket


def make(enable_refresh):
    engine = Engine()
    clock = ClockDomain(engine, DRAM_CLOCK_PS)
    controller = MemoryController(engine, clock, enable_refresh=enable_refresh)
    return engine, controller


class TestRefresh:
    def test_disabled_by_default(self):
        engine, controller = make(enable_refresh=False)
        engine.run(until_ps=20 * controller.timing.t_refi * DRAM_CLOCK_PS)
        assert controller.refreshes_performed == 0

    def test_periodic_refreshes(self):
        engine, controller = make(enable_refresh=True)
        engine.run(until_ps=5 * controller.timing.t_refi * DRAM_CLOCK_PS + 1)
        assert controller.refreshes_performed == 5

    def test_refresh_closes_row_buffers(self):
        engine, controller = make(enable_refresh=True)
        done = []
        controller.handle_request(MemoryPacket(addr=0), done.append)
        engine.run(until_ps=controller.timing.t_refi * DRAM_CLOCK_PS + 1)
        assert done
        assert all(bank.open_row is None for bank in controller.banks)

    def test_request_during_refresh_delayed(self):
        engine, controller = make(enable_refresh=True)
        timing = controller.timing
        refresh_at = timing.t_refi * DRAM_CLOCK_PS
        done = []
        # Arrive right at the refresh instant: must wait ~tRFC extra.
        engine.schedule_at(
            refresh_at + 1,
            lambda: controller.handle_request(MemoryPacket(addr=0), lambda p: done.append(engine.now)),
        )
        engine.run(until_ps=refresh_at + (timing.t_rfc + 100) * DRAM_CLOCK_PS)
        assert done
        latency_cycles = (done[0] - refresh_at - 1) / DRAM_CLOCK_PS
        assert latency_cycles >= timing.t_rfc

    def test_refresh_overhead_is_small(self):
        # tRFC / tREFI ~ 3%: throughput with refresh stays within ~5%.
        def throughput(enable):
            engine, controller = make(enable_refresh=enable)
            for i in range(1500):
                controller.handle_request(MemoryPacket(addr=i * 64), lambda p: None)
            horizon = 200 * controller.timing.t_refi * DRAM_CLOCK_PS
            engine.run(until_ps=horizon)
            assert controller.served_requests == 1500
            return controller.served_requests

        assert throughput(False) == throughput(True)

    def test_timing_constants(self):
        timing = DramTiming()
        assert timing.t_refi == 6240  # 7.8 us
        assert timing.t_rfc == 208    # 260 ns
        with pytest.raises(ValueError):
            DramTiming(t_refi=0)
