"""Unit tests for the firmware statistics monitor."""

import pytest

from repro.prm.monitor import StatisticsMonitor
from repro.sim.engine import PS_PER_MS
from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.stream import Stream


def make_monitored_server():
    server = PardServer(TABLE2.scaled(32))
    fw = server.firmware
    ldom = fw.create_ldom("a", (0,), 4 << 20)
    server.start()
    fw.launch_ldom("a", {0: Stream(array_bytes=128 << 10)})
    monitor = StatisticsMonitor(fw, period_ps=PS_PER_MS)
    return server, fw, ldom, monitor


@pytest.mark.slow
class TestStatisticsMonitor:
    def test_probe_validates_path_up_front(self):
        _, fw, ldom, monitor = make_monitored_server()
        with pytest.raises(Exception):
            monitor.add_probe("bad", "/sys/cpa/cpa0/ldoms/ldom9/statistics/miss_rate")

    def test_periodic_sampling(self):
        server, fw, ldom, monitor = make_monitored_server()
        series = monitor.add_probe(
            "missrate", f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/miss_rate"
        )
        monitor.start()
        server.run_ms(4.5)
        assert len(series.values) == 4  # ticks at 1,2,3,4 ms
        assert series.times_ps == [PS_PER_MS * i for i in (1, 2, 3, 4)]

    def test_values_track_hardware(self):
        server, fw, ldom, monitor = make_monitored_server()
        series = monitor.add_probe(
            "capacity", f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/capacity"
        )
        monitor.start()
        server.run_ms(3.5)
        assert series.latest() > 0
        assert series.latest() == server.llc_control.occupancy_bytes(ldom.ds_id)

    def test_stop_halts_sampling(self):
        server, fw, ldom, monitor = make_monitored_server()
        series = monitor.add_probe(
            "missrate", f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/miss_rate"
        )
        monitor.start()
        server.run_ms(2.5)
        monitor.stop()
        server.run_ms(3.0)
        assert len(series.values) == 2

    def test_destroyed_ldom_counts_read_errors(self):
        server, fw, ldom, monitor = make_monitored_server()
        monitor.add_probe(
            "missrate", f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/miss_rate"
        )
        monitor.start()
        server.run_ms(1.5)
        ldom.stop()
        fw.destroy_ldom("a")
        server.run_ms(2.0)
        assert monitor.read_errors >= 1

    def test_duplicate_probe_rejected(self):
        _, fw, ldom, monitor = make_monitored_server()
        path = f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/miss_rate"
        monitor.add_probe("x", path)
        with pytest.raises(ValueError):
            monitor.add_probe("x", path)

    def test_report_and_rows(self):
        server, fw, ldom, monitor = make_monitored_server()
        series = monitor.add_probe(
            "capacity", f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/capacity"
        )
        monitor.start()
        server.run_ms(2.5)
        report = monitor.report()
        assert "capacity" in report and "2 samples" in report
        rows = series.as_rows()
        assert rows[0][0] == pytest.approx(1.0)

    def test_invalid_period(self):
        _, fw, _, _ = make_monitored_server()
        with pytest.raises(ValueError):
            StatisticsMonitor(fw, period_ps=0)

    def test_remove_probe_unknown_name_is_descriptive(self):
        _, fw, ldom, monitor = make_monitored_server()
        monitor.add_probe(
            "missrate", f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/miss_rate"
        )
        with pytest.raises(ValueError, match=r"no probe named 'ghost'.*missrate"):
            monitor.remove_probe("ghost")
        monitor.remove_probe("missrate")
        assert monitor.probes == {}

    def test_fractional_readings_survive_as_floats(self):
        server, fw, ldom, monitor = make_monitored_server()
        fw.sysfs.add_file("/log/frac", read_handler=lambda: "2.75")
        series = monitor.add_probe("frac", "/log/frac")
        monitor.start()
        server.run_ms(1.5)
        assert series.values == [2.75]
        assert series.latest() == 2.75

    def test_export_jsonl_round_trips(self, tmp_path):
        from repro.telemetry.exporters import read_jsonl

        server, fw, ldom, monitor = make_monitored_server()
        path = f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics/capacity"
        series = monitor.add_probe("capacity", path)
        monitor.start()
        server.run_ms(2.5)
        out = str(tmp_path / "probes.jsonl")
        assert monitor.export_jsonl(out) == len(series.values) == 2
        rows = read_jsonl(out)
        assert rows[0]["probe"] == "capacity"
        assert rows[0]["path"] == path
        assert rows[0]["t_ms"] == pytest.approx(1.0)
        assert [r["value"] for r in rows] == series.values
