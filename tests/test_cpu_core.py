"""Unit tests for the CPU core op interpreter."""

import pytest

from tests.helpers import FakeMemory
from repro.cpu.core import CoreState, CpuCore
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine


class ListWorkload:
    """A workload from a literal op list."""

    def __init__(self, ops):
        self._ops = ops
        self.core = None

    def bind(self, core):
        self.core = core

    def ops(self):
        yield from self._ops


def make_core(mem_latency=50_000, flush=100):
    engine = Engine()
    clock = ClockDomain(engine, CPU_CLOCK_PS)
    memory = FakeMemory(engine, latency_ps=mem_latency)
    core = CpuCore(engine, clock, 0, memory, flush_threshold_cycles=flush)
    return engine, core, memory


class TestCompute:
    def test_compute_advances_time(self):
        engine, core, _ = make_core()
        core.assign(ListWorkload([("compute", 1000)]))
        engine.run()
        assert engine.now == 1000 * CPU_CLOCK_PS
        assert core.state is CoreState.DONE

    def test_small_computes_accumulate(self):
        engine, core, _ = make_core(flush=100)
        # 10 x 20 cycles: fewer engine events than ops, same total time.
        core.assign(ListWorkload([("compute", 20)] * 10))
        executed = engine.run()
        assert engine.now == 200 * CPU_CLOCK_PS
        assert executed < 10

    def test_busy_accounting(self):
        engine, core, _ = make_core()
        core.assign(ListWorkload([("compute", 300), ("compute", 400)]))
        engine.run()
        assert core.busy_ps == 700 * CPU_CLOCK_PS


class TestMemoryOps:
    def test_load_is_tagged_with_core_dsid(self):
        engine, core, memory = make_core()
        core.tag.write(5)
        core.assign(ListWorkload([("load", 0x1000)]))
        engine.run()
        assert len(memory.requests) == 1
        assert memory.requests[0].ds_id == 5

    def test_load_waits_for_response(self):
        engine, core, _ = make_core(mem_latency=80_000)
        core.assign(ListWorkload([("load", 0x0), ("compute", 100)]))
        engine.run()
        assert engine.now == 80_000 + 100 * CPU_CLOCK_PS
        assert core.state is CoreState.DONE

    def test_store_issues_write(self):
        engine, core, memory = make_core()
        core.assign(ListWorkload([("store", 0x40)]))
        engine.run()
        assert memory.requests[0].is_write

    def test_batch_waits_for_slowest(self):
        engine, core, memory = make_core(mem_latency=60_000)
        core.assign(ListWorkload([("loads", [0x0, 0x40, 0x80])]))
        engine.run()
        # All issued in parallel: total time = one memory latency.
        assert engine.now == 60_000
        assert len(memory.requests) == 3
        assert core.memory_accesses == 3

    def test_carry_preserves_compute_before_miss(self):
        engine, core, _ = make_core(mem_latency=50_000, flush=1000)
        core.assign(ListWorkload([("compute", 60), ("load", 0x0)]))
        engine.run()
        # 60 cycles accumulate, then carried across the wait.
        assert engine.now == 50_000 + 60 * CPU_CLOCK_PS


class TestSyncFastPath:
    class SyncMemory(FakeMemory):
        def access(self, packet, on_response):
            self.requests.append(packet)
            return 2 * CPU_CLOCK_PS  # synchronous hit

    def test_sync_hits_use_no_events(self):
        engine = Engine()
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = self.SyncMemory(engine)
        core = CpuCore(engine, clock, 0, memory, flush_threshold_cycles=10_000)
        core.assign(ListWorkload([("load", i * 64) for i in range(50)]))
        executed = engine.run()
        assert len(memory.requests) == 50
        assert executed <= 3  # start + at most a flush or two
        assert engine.now == 50 * 2 * CPU_CLOCK_PS


class TestBlockWake:
    def test_block_then_wake(self):
        engine, core, _ = make_core()
        core.assign(ListWorkload([("block",), ("compute", 100)]))
        engine.run()
        assert core.state is CoreState.BLOCKED
        engine.schedule(5000, core.wake)
        engine.run()
        assert core.state is CoreState.DONE
        assert engine.now == 5000 + 100 * CPU_CLOCK_PS

    def test_wake_before_block_is_remembered(self):
        engine, core, _ = make_core()
        core.wake()  # arrives "early"
        core.assign(ListWorkload([("block",), ("compute", 10)]))
        engine.run()
        assert core.state is CoreState.DONE

    def test_call_op_runs_at_sim_time(self):
        engine, core, _ = make_core()
        stamps = []
        core.assign(
            ListWorkload([("compute", 200), ("call", lambda: stamps.append(engine.now))])
        )
        engine.run()
        assert stamps == [200 * CPU_CLOCK_PS]


class TestAssignmentRules:
    def test_double_assign_rejected(self):
        engine, core, _ = make_core()
        core.assign(ListWorkload([("compute", 1000)]))
        with pytest.raises(RuntimeError):
            core.assign(ListWorkload([("compute", 1)]))

    def test_reassign_after_done(self):
        engine, core, _ = make_core()
        core.assign(ListWorkload([("compute", 10)]))
        engine.run()
        core.assign(ListWorkload([("compute", 10)]))
        engine.run()
        assert core.state is CoreState.DONE

    def test_unknown_op_raises(self):
        engine, core, _ = make_core()
        core.assign(ListWorkload([("warp", 9)]))
        with pytest.raises(ValueError):
            engine.run()

    def test_io_without_port_raises(self):
        engine, core, _ = make_core()
        core.assign(ListWorkload([("io", object())]))
        with pytest.raises(RuntimeError):
            engine.run()
