"""The sweep runner: deterministic merge, failure handling, retries.

The test builders below are registered at module import time; worker
processes inherit them through fork, so the pool paths exercise the
same registry the stock builders use. The colocation tests double as
the regression suite for the point-seed contract: a point's result
depends only on its spec (builder + params + seed), never on what ran
before it in the process.
"""

import multiprocessing
import pickle
import time

import pytest

from repro.runner import (
    SweepError,
    SweepPoint,
    SweepResult,
    register_builder,
    run_sweep,
)
from repro.system.experiments import ColocationSetup, run_colocation_point
from repro.telemetry import Telemetry


@register_builder("test_square")
def _build_square(point, telemetry):
    if telemetry is not None:
        telemetry.registry.counter("test.points").add(1)
        telemetry.registry.gauge("test.last_index").set(point.index)
        telemetry.registry.histogram(
            "test.x", start=1.0, growth=2.0, count=8
        ).record(point.params["x"])
        span = telemetry.spans.maybe_start(
            ds_id=0, packet_id=point.index, kind="test"
        )
        if span is not None:
            span.hop("begin", 0)
            span.hop("end", 10 * (point.index + 1))
            telemetry.spans.finish(span)
        telemetry.snapshot(t_ps=1_000 * point.index)
    return point.params["x"] ** 2 + point.seed


@register_builder("test_fail_odd")
def _build_fail_odd(point, telemetry):
    if point.index % 2 == 1:
        raise ValueError(f"boom at point {point.index}")
    return point.index


@register_builder("test_fail_in_worker")
def _build_fail_in_worker(point, telemetry):
    # Fails only inside a pool worker; a parent-process retry succeeds.
    if multiprocessing.parent_process() is not None:
        raise RuntimeError("worker-only failure")
    return "parent-ok"


@register_builder("test_sleep")
def _build_sleep(point, telemetry):
    time.sleep(point.params["s"])
    return "slept"


def square_points(n, seed=0):
    return [
        SweepPoint(index=i, builder="test_square", params={"x": i}, seed=seed)
        for i in range(n)
    ]


def test_sweep_point_pickle_round_trip():
    point = SweepPoint(
        index=3, builder="test_square", params={"x": 3, "nested": {"a": [1]}},
        seed=11, label="x=3",
    )
    clone = pickle.loads(pickle.dumps(point))
    assert clone == point
    assert clone.display_label() == "x=3"
    assert SweepPoint(0, "test_square", {}).display_label() == "test_square[0]"


def test_serial_and_parallel_agree():
    serial = run_sweep(square_points(9, seed=5), jobs=1)
    pooled = run_sweep(square_points(9, seed=5), jobs=2)
    assert serial.ok and pooled.ok
    assert serial.values() == pooled.values() == [i ** 2 + 5 for i in range(9)]
    assert [p.index for p in pooled.points] == list(range(9))


def test_collection_order_is_index_order():
    seen = []
    run_sweep(square_points(8), jobs=2, on_result=lambda pr: seen.append(pr.index))
    assert seen == list(range(8))


def test_failures_are_captured_and_survivors_merge():
    points = [
        SweepPoint(index=i, builder="test_fail_odd", params={}) for i in range(5)
    ]
    sweep = run_sweep(points, jobs=2, retries=0)
    assert not sweep.ok
    assert sweep.values() == [0, 2, 4]
    failed = sweep.failed
    assert [p.index for p in failed] == [1, 3]
    for pr in failed:
        assert "ValueError: boom at point" in pr.error
        assert "Traceback" in pr.error
        assert not pr.retried and pr.attempts == 1
    with pytest.raises(SweepError) as exc_info:
        sweep.raise_on_failure()
    assert "2/5 sweep points failed" in str(exc_info.value)
    assert exc_info.value.result is sweep


def test_failed_point_retried_once_in_parent():
    points = [
        SweepPoint(index=i, builder="test_fail_in_worker", params={})
        for i in range(2)
    ]
    sweep = run_sweep(points, jobs=2)
    assert sweep.ok
    for pr in sweep.points:
        assert pr.value == "parent-ok"
        assert pr.retried and pr.attempts == 2


def test_retry_failure_reports_both_attempts():
    points = [SweepPoint(index=0, builder="test_fail_odd", params={}),
              SweepPoint(index=1, builder="test_fail_odd", params={})]
    sweep = run_sweep(points, jobs=1, retries=1)
    pr = sweep.points[1]
    assert not pr.ok and pr.retried and pr.attempts == 2
    assert "(earlier attempt failed with)" in pr.error


def test_timeout_marks_point_and_skips_retry():
    points = [SweepPoint(index=0, builder="test_sleep", params={"s": 2.0})]
    started = time.perf_counter()
    sweep = run_sweep(points, jobs=2, chunk_size=1, timeout_s=0.3)
    assert time.perf_counter() - started < 1.5  # did not wait out the sleep
    pr = sweep.points[0]
    assert not pr.ok and pr.timed_out
    assert not pr.retried and pr.attempts == 1
    assert "timed out" in pr.error


def test_point_validation():
    dup = [SweepPoint(0, "test_square", {"x": 1}),
           SweepPoint(0, "test_square", {"x": 2})]
    with pytest.raises(ValueError, match="duplicate sweep point index"):
        run_sweep(dup, jobs=1)
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        run_sweep(square_points(2), jobs=0)
    empty = run_sweep([], jobs=4)
    assert isinstance(empty, SweepResult) and empty.points == []


def test_unknown_builder_fails_the_point_not_the_sweep():
    sweep = run_sweep([SweepPoint(0, "no_such_builder", {})], jobs=1, retries=0)
    assert not sweep.ok
    assert "no_such_builder" in sweep.points[0].error


def test_telemetry_merge_identical_serial_and_parallel():
    def merged_dump(jobs):
        hub = Telemetry(span_sample=1)
        sweep = run_sweep(square_points(6), jobs=jobs, telemetry=hub)
        assert sweep.ok
        return hub.registry.dump(), hub.spans.dump(), hub.snapshots

    serial_reg, serial_spans, serial_snaps = merged_dump(1)
    pooled_reg, pooled_spans, pooled_snaps = merged_dump(2)
    assert serial_reg == pooled_reg
    assert serial_spans == pooled_spans
    assert serial_snaps == pooled_snaps
    # The merge did what the contract says: counters summed across the
    # 6 points, the gauge kept the highest-index point's write.
    assert serial_reg["test.points"]["value"] == 6
    assert serial_reg["test.last_index"]["value"] == 5
    assert serial_reg["test.x"]["count"] == 6
    # One span per point, packet ids rebased into disjoint ranges.
    ids = [s["packet_id"] for s in serial_spans["finished"]]
    assert len(ids) == len(set(ids)) == 6


# -- the point-seed contract (order independence) ---------------------------

TINY = ColocationSetup(
    scale=32, mc_working_set_bytes=56 << 10, mc_loads_per_request=60,
    stream_array_bytes=256 << 10, warmup_ms=0.5,
)


def _tiny_point(mode="solo", rps=150_000, seed=None):
    return run_colocation_point(
        mode, rps, setup=TINY, measure_ms=0.3,
        seed=TINY.seed if seed is None else seed,
    )


def test_colocation_point_is_order_independent():
    """A point's result must not depend on what ran earlier in-process.

    Regression for the sweep-runner port: per-point seeds are explicit
    in the spec, so interleaving other work (here a different mode at a
    different load) cannot perturb a point's RNG streams.
    """
    first = _tiny_point()
    _tiny_point(mode="shared", rps=250_000)  # unrelated interleaved work
    again = _tiny_point()
    assert repr(first) == repr(again)


def test_colocation_point_honours_explicit_seed():
    base = _tiny_point()
    reseeded = _tiny_point(seed=TINY.seed + 1)
    assert repr(base) != repr(reseeded)
