"""The simulation-safety linter: rules, suppressions, baseline, reporters.

The per-rule fixtures are not hand-copied snippets: every rule's
docstring carries a ``Bad::``/``Good::`` pair and the tests here lint
exactly what the docstring shows, so documentation and enforcement
cannot drift apart.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    LintTarget,
    Severity,
    all_rules,
    check_tree,
    get_profile,
    lint_source,
    rule_examples,
    run_lint,
)
from repro.analysis.lint.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent

RULES = all_rules()
RULE_IDS = [rule.id for rule in RULES]


def rule_hits(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


# -- the rule pack: every docstring example, executed both ways --------------


def test_rule_pack_is_complete():
    assert RULE_IDS == sorted(RULE_IDS)
    families = {rid[:3] for rid in RULE_IDS}
    assert {"DET", "EVT", "TEL", "RUN", "EXC"} <= families
    assert len(RULE_IDS) == 12


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_bad_example_trips_the_rule(rule):
    examples = rule_examples(rule)
    assert "bad" in examples, f"{rule.id} docstring is missing a Bad:: block"
    findings = lint_source(examples["bad"], profile="sim")
    assert rule_hits(findings, rule.id), (
        f"{rule.id} did not fire on its own bad example:\n{examples['bad']}"
    )


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_good_example_is_clean(rule):
    examples = rule_examples(rule)
    assert "good" in examples, f"{rule.id} docstring is missing a Good:: block"
    findings = lint_source(examples["good"], profile="sim")
    assert not rule_hits(findings, rule.id), (
        f"{rule.id} fired on its own good example:\n{examples['good']}"
    )


def test_broad_except_with_reraise_is_clean():
    findings = lint_source(
        "try:\n"
        "    frob()\n"
        "except Exception:\n"
        "    cleanup()\n"
        "    raise\n"
    )
    assert not rule_hits(findings, "EXC001")


def test_import_aliases_are_resolved():
    findings = lint_source(
        "from time import perf_counter as pc\n"
        "def f():\n"
        "    return pc()\n"
    )
    assert rule_hits(findings, "DET001")


# -- suppressions ------------------------------------------------------------


def test_inline_suppression_quiets_the_finding():
    findings = lint_source(
        "import time\n"
        "def f():\n"
        "    return time.time()  # simlint: disable=DET001 -- test\n"
    )
    hits = rule_hits(findings, "DET001")
    assert hits and all(f.suppressed for f in hits)


def test_standalone_suppression_covers_next_code_line():
    findings = lint_source(
        "import time\n"
        "def f():\n"
        "    # simlint: disable=DET001 -- justification line one\n"
        "    # (which continues on a second comment line)\n"
        "    return time.time()\n"
    )
    hits = rule_hits(findings, "DET001")
    assert hits and all(f.suppressed for f in hits)


def test_suppression_is_rule_specific():
    findings = lint_source(
        "import time\n"
        "def f():\n"
        "    return time.time()  # simlint: disable=EVT003\n"
    )
    hits = rule_hits(findings, "DET001")
    assert hits and all(not f.suppressed for f in hits)


def test_bare_disable_suppresses_all_rules():
    findings = lint_source(
        "import time\n"
        "def f():\n"
        "    return time.time()  # simlint: disable\n"
    )
    assert all(f.suppressed for f in rule_hits(findings, "DET001"))


# -- baseline round-trip -----------------------------------------------------


BAD_MODULE = (
    "import time\n"
    "\n"
    "def sample():\n"
    "    return time.time()\n"
)


def test_baseline_round_trip(tmp_path):
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "mod.py").write_text(BAD_MODULE)
    targets = [LintTarget("pkg", "sim")]

    first = run_lint(targets, root=tmp_path)
    assert len(first.active) == 1

    baseline = Baseline.from_findings(first.findings)
    baseline_file = tmp_path / "lint-baseline.json"
    assert baseline.dump(baseline_file) == 1

    second = run_lint(targets, root=tmp_path,
                      baseline=Baseline.load(baseline_file))
    assert not second.active
    assert len(second.baselined) == 1

    # A *new* finding in the same file is not grandfathered.
    (src / "mod.py").write_text(BAD_MODULE + "\ndef again():\n"
                                "    return time.perf_counter()\n")
    third = run_lint(targets, root=tmp_path,
                     baseline=Baseline.load(baseline_file))
    assert len(third.active) == 1
    assert third.active[0].scope == "again"


def test_baseline_notes_survive_regeneration(tmp_path):
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "mod.py").write_text(BAD_MODULE)
    result = run_lint([LintTarget("pkg", "sim")], root=tmp_path)
    baseline = Baseline.from_findings(result.findings)
    key = next(iter(baseline.entries))
    baseline.notes[key] = "tracking: example"
    regenerated = Baseline.from_findings(result.findings, previous=baseline)
    assert regenerated.notes[key] == "tracking: example"


# -- reporters ---------------------------------------------------------------


def _repo_result():
    baseline = Baseline.load_or_empty(REPO_ROOT / "lint-baseline.json")
    targets = [
        LintTarget("src/repro", "sim"),
        LintTarget("tests", "tests"),
        LintTarget("benchmarks", "tests"),
    ]
    return run_lint(targets, root=REPO_ROOT, baseline=baseline)


def test_repo_lint_output_is_deterministic():
    first = _repo_result()
    second = _repo_result()
    assert render_text(first, verbose=True) == render_text(second, verbose=True)
    assert json.dumps(render_json(first, strict=True), sort_keys=True) == \
        json.dumps(render_json(second, strict=True), sort_keys=True)


def test_json_report_schema():
    report = render_json(_repo_result(), strict=True)
    assert report["version"] == 1
    assert set(report) == {
        "version", "profiles", "strict", "rules", "findings",
        "baselined", "suppressed", "summary", "failed",
    }
    assert report["profiles"] == ["sim", "tests"]
    for row in report["rules"]:
        assert set(row) == {"id", "severity", "title"}
        assert row["severity"] in ("info", "warning", "error")
    for finding in report["findings"] + report["baselined"] + report["suppressed"]:
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "scope", "message",
        }
        assert isinstance(finding["line"], int) and finding["line"] >= 1
    summary = report["summary"]
    assert set(summary) == {
        "files", "active", "errors", "warnings", "baselined", "suppressed",
    }
    # Findings arrive sorted by location.
    locations = [(f["path"], f["line"], f["col"]) for f in report["findings"]]
    assert locations == sorted(locations)


# -- the repo holds its own bar (self-check) ---------------------------------


def test_repo_is_lint_clean_strict():
    result = _repo_result()
    assert not result.active, "\n" + render_text(result)


def test_linter_own_source_is_clean_under_sim_profile():
    result = run_lint([LintTarget("src/repro/analysis", "sim")],
                      root=REPO_ROOT)
    assert not result.active, "\n" + render_text(result)


def test_tests_and_benchmarks_use_looser_profile():
    loose = get_profile("tests")
    strict = get_profile("sim")
    assert set(loose.rules) < set(strict.rules)
    # Wall-clock measurement is legitimate in benchmarks.
    assert "DET001" not in loose.rules
    # Event-model structure still holds everywhere.
    assert "EVT003" in loose.rules


def test_gate_is_clear_on_this_tree():
    assert check_tree(REPO_ROOT) == []


# -- severity / failure policy ----------------------------------------------


def test_strict_fails_on_warnings_default_does_not(tmp_path):
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "mod.py").write_text(
        "try:\n"
        "    frob()\n"
        "except Exception:\n"
        "    pass\n"
    )
    result = run_lint([LintTarget("pkg", "sim")], root=tmp_path)
    assert result.active[0].severity == Severity.WARNING
    assert result.failed(strict=True)
    assert not result.failed(strict=False)


# -- CLI end-to-end ----------------------------------------------------------


def _run_cli(args, cwd):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


@pytest.mark.slow
def test_cli_strict_clean_and_byte_identical():
    first = _run_cli(["--strict"], REPO_ROOT)
    second = _run_cli(["--strict"], REPO_ROOT)
    assert first.returncode == 0, first.stdout + first.stderr
    assert first.stdout == second.stdout


@pytest.mark.slow
def test_cli_fails_on_injected_bad_fixture(tmp_path):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(BAD_MODULE)
    proc = _run_cli(["--strict"], tmp_path)
    assert proc.returncode == 1
    assert "DET001" in proc.stdout
