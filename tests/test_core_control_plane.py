"""Unit tests for the base ControlPlane and TriggerBank."""

import pytest

from repro.core.control_plane import ControlPlane, TriggerBank, TRIGGER_SLOT_STRIDE
from repro.core.programming import TABLE_PARAMETER, TABLE_STATISTICS, TABLE_TRIGGER
from repro.core.tables import TableError, TableSchema
from repro.core.triggers import TriggerOp
from repro.sim.engine import Engine, PS_PER_MS
from repro.sim.trace import Tracer


class FakeCachePlane(ControlPlane):
    """A minimal concrete control plane for framework tests."""

    IDENT = "CACHE_CP"
    TYPE_CODE = "C"
    PARAMETER_COLUMNS = (("waymask", 0xFFFF),)
    STATISTICS_COLUMNS = (("miss_rate", 0), ("capacity", 0))

    def __init__(self, engine, **kwargs):
        super().__init__(engine, "cache_cp", **kwargs)
        self.pending_miss_rate = {}
        self.parameter_writes = []

    def on_window(self):
        for ds_id, rate in self.pending_miss_rate.items():
            if self.statistics.has(ds_id):
                self.statistics.set(ds_id, "miss_rate", rate)

    def on_parameter_write(self, ds_id, column, value):
        self.parameter_writes.append((ds_id, column, value))


@pytest.fixture
def plane():
    return FakeCachePlane(Engine())


class TestLDomLifecycle:
    def test_allocate_creates_rows(self, plane):
        plane.allocate_ldom(1, waymask=0x00FF)
        assert plane.parameters.get(1, "waymask") == 0x00FF
        assert plane.statistics.get(1, "miss_rate") == 0
        assert plane.ds_ids == [1]

    def test_free_removes_rows_and_triggers(self, plane):
        plane.allocate_ldom(1)
        plane.triggers.install(1, "miss_rate", TriggerOp.GT, 3000)
        plane.free_ldom(1)
        assert plane.ds_ids == []
        assert plane.triggers.armed_count == 0


class TestRegisterFileIntegration:
    def test_parameter_write_via_protocol_invokes_hook(self, plane):
        plane.allocate_ldom(0)
        plane.register_file.write_cell(0, 0, TABLE_PARAMETER, 0xFF00)
        assert plane.parameters.get(0, "waymask") == 0xFF00
        assert plane.parameter_writes == [(0, "waymask", 0xFF00)]

    def test_statistics_read_via_protocol(self, plane):
        plane.allocate_ldom(0)
        plane.statistics.set(0, "capacity", 4096)
        assert plane.register_file.read_cell(0, 1, TABLE_STATISTICS) == 4096

    def test_trigger_install_via_protocol(self, plane):
        plane.allocate_ldom(2)
        rf = plane.register_file
        stat_col = plane.statistics.schema.offset_of("miss_rate")
        base = 0  # slot 0
        rf.write_cell(2, base + 0, TABLE_TRIGGER, stat_col)
        rf.write_cell(2, base + 1, TABLE_TRIGGER, int(TriggerOp.GT))
        rf.write_cell(2, base + 2, TABLE_TRIGGER, 3000)
        rf.write_cell(2, base + 3, TABLE_TRIGGER, 0)
        rf.write_cell(2, base + 4, TABLE_TRIGGER, 1)  # enable
        rule = plane.triggers.rule_at(2, 0)
        assert rule is not None
        assert rule.stat_column == "miss_rate"
        assert rule.threshold == 3000

    def test_trigger_fire_count_readable_via_protocol(self, plane):
        plane.allocate_ldom(2)
        plane.triggers.install(2, "miss_rate", TriggerOp.GT, 3000)
        plane.pending_miss_rate[2] = 5000
        plane.roll_window()
        fire_offset = 0 * TRIGGER_SLOT_STRIDE + 5
        assert plane.register_file.read_cell(2, fire_offset, TABLE_TRIGGER) == 1


class TestWindowsAndInterrupts:
    def test_trigger_fires_and_raises_interrupt(self, plane):
        received = []
        plane.attach_interrupt(lambda cp, ds_id, rule: received.append((ds_id, rule.stat_column)))
        plane.allocate_ldom(2)
        plane.triggers.install(2, "miss_rate", TriggerOp.GT, 3000)
        plane.pending_miss_rate[2] = 3500
        fired = plane.roll_window()
        assert [(d, r.stat_column) for d, r in fired] == [(2, "miss_rate")]
        assert received == [(2, "miss_rate")]
        assert plane.interrupts_raised == 1

    def test_no_interrupt_below_threshold(self, plane):
        received = []
        plane.attach_interrupt(lambda *args: received.append(args))
        plane.allocate_ldom(2)
        plane.triggers.install(2, "miss_rate", TriggerOp.GT, 3000)
        plane.pending_miss_rate[2] = 1000
        assert plane.roll_window() == []
        assert received == []

    def test_periodic_windows_run_on_engine(self):
        engine = Engine()
        plane = FakeCachePlane(engine, window_ps=PS_PER_MS)
        plane.allocate_ldom(1)
        plane.pending_miss_rate[1] = 1234
        plane.start_windows()
        engine.run(until_ps=3 * PS_PER_MS)
        assert plane.statistics.get(1, "miss_rate") == 1234

    def test_start_windows_idempotent(self):
        engine = Engine()
        plane = FakeCachePlane(engine, window_ps=PS_PER_MS)
        plane.start_windows()
        plane.start_windows()
        engine.run(until_ps=PS_PER_MS)
        # One tick scheduled per window, not two.
        assert engine.pending_events == 1

    def test_trigger_on_unallocated_dsid_sees_zero(self, plane):
        plane.triggers.install(7, "miss_rate", TriggerOp.EQ, 0)
        fired = plane.roll_window()
        assert len(fired) == 1  # observed default 0 == 0

    def test_tracer_records_interrupt(self):
        tracer = Tracer()
        plane = FakeCachePlane(Engine(), tracer=tracer)
        plane.allocate_ldom(2)
        plane.triggers.install(2, "miss_rate", TriggerOp.GT, 10)
        plane.pending_miss_rate[2] = 100
        plane.roll_window()
        assert len(tracer.filter(event="trigger_interrupt")) == 1


class TestTriggerBank:
    def schema(self):
        return TableSchema([("miss_rate", 0), ("capacity", 0)])

    def test_install_auto_slot(self):
        bank = TriggerBank(self.schema())
        assert bank.install(1, "miss_rate", TriggerOp.GT, 10) == 0
        assert bank.install(1, "capacity", TriggerOp.LT, 5) == 1

    def test_capacity_enforced(self):
        bank = TriggerBank(self.schema(), max_triggers=1)
        bank.install(1, "miss_rate", TriggerOp.GT, 10)
        with pytest.raises(TableError):
            bank.install(2, "miss_rate", TriggerOp.GT, 10)

    def test_disable_frees_capacity(self):
        bank = TriggerBank(self.schema(), max_triggers=1)
        bank.install(1, "miss_rate", TriggerOp.GT, 10)
        bank.write_field(1, 0, "enabled", 0)
        bank.install(2, "miss_rate", TriggerOp.GT, 10)
        assert bank.armed_count == 1

    def test_live_threshold_update_preserves_fire_count(self):
        bank = TriggerBank(self.schema())
        bank.install(1, "miss_rate", TriggerOp.GT, 10)
        rule = bank.rule_at(1, 0)
        rule.evaluate(50)
        assert rule.fire_count == 1
        bank.write_field(1, 0, "threshold", 99)
        updated = bank.rule_at(1, 0)
        assert updated.threshold == 99
        assert updated.fire_count == 1

    def test_fire_count_not_writable(self):
        bank = TriggerBank(self.schema())
        with pytest.raises(TableError):
            bank.write_field(1, 0, "fire_count", 5)

    def test_read_empty_slot_raises(self):
        bank = TriggerBank(self.schema())
        with pytest.raises(TableError):
            bank.read_cell(1, 0)

    def test_read_enabled_of_empty_slot_is_zero(self):
        bank = TriggerBank(self.schema())
        assert bank.read_cell(1, 4) == 0  # 'enabled' field

    def test_invalid_field_offset(self):
        bank = TriggerBank(self.schema())
        with pytest.raises(TableError):
            bank.write_cell(1, 6, 0)

    def test_remove_ldom_clears_all_slots(self):
        bank = TriggerBank(self.schema())
        bank.install(1, "miss_rate", TriggerOp.GT, 10)
        bank.install(1, "capacity", TriggerOp.LT, 5)
        bank.install(2, "miss_rate", TriggerOp.GT, 10)
        bank.remove_ldom(1)
        assert bank.armed_count == 1
        assert bank.rule_at(2, 0) is not None
