"""Unit tests for analysis helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.series import ascii_sparkline, downsample, share_of_total
from repro.analysis.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "22" in lines[3]

    def test_floats_two_decimals(self):
        out = format_table(["x"], [[1.2345]])
        assert "1.23" in out

    def test_integral_floats_as_ints(self):
        out = format_table(["x"], [[4.0]])
        assert "4" in out and "4.00" not in out

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_numeric_columns_right_aligned(self):
        out = format_table(["n"], [[1], [100]])
        lines = out.splitlines()
        assert lines[2].endswith("1")
        assert lines[3].endswith("100")

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"


class TestDownsample:
    def test_short_series_untouched(self):
        assert downsample([1, 2, 3], 10) == [1, 2, 3]

    def test_bucket_averaging(self):
        assert downsample([0, 2, 4, 6], 2) == [1.0, 5.0]

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            downsample([1], 0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=300),
           st.integers(min_value=1, max_value=50))
    def test_property_length_and_bounds(self, series, max_points):
        result = downsample(series, max_points)
        assert len(result) == min(len(series), max_points)
        assert min(series) - 1e-6 <= min(result)
        assert max(result) <= max(series) + 1e-6


class TestSparkline:
    def test_empty(self):
        assert ascii_sparkline([]) == ""

    def test_flat_series(self):
        line = ascii_sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_extremes_use_extreme_levels(self):
        line = ascii_sparkline([0, 10])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_width_cap(self):
        line = ascii_sparkline(list(range(500)), width=40)
        assert len(line) == 40


class TestShareOfTotal:
    def test_normalizes(self):
        assert share_of_total([1, 3]) == [0.25, 0.75]

    def test_all_zero(self):
        assert share_of_total([0, 0]) == [0.0, 0.0]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_property_sums_to_one_or_zero(self, values):
        shares = share_of_total(values)
        total = sum(shares)
        assert total == pytest.approx(1.0) or total == 0.0
