"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError, PS_PER_MS


def test_initial_time_is_zero():
    assert Engine().now == 0


def test_schedule_and_run_single_event():
    engine = Engine()
    fired = []
    engine.schedule(100, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [100]
    assert engine.now == 100


def test_events_run_in_timestamp_order():
    engine = Engine()
    order = []
    engine.schedule(300, lambda: order.append("c"))
    engine.schedule(100, lambda: order.append("a"))
    engine.schedule(200, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    engine = Engine()
    order = []
    engine.schedule(50, lambda: order.append(1))
    engine.schedule(50, lambda: order.append(2))
    engine.schedule(50, lambda: order.append(3))
    engine.run()
    assert order == [1, 2, 3]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_run_until_executes_events_at_boundary():
    engine = Engine()
    fired = []
    engine.schedule(100, lambda: fired.append(100))
    engine.schedule(200, lambda: fired.append(200))
    engine.schedule(201, lambda: fired.append(201))
    engine.run(until_ps=200)
    assert fired == [100, 200]
    assert engine.now == 200


def test_run_until_advances_time_even_if_queue_drains():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run(until_ps=500)
    assert engine.now == 500


def test_run_for_is_relative():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run(until_ps=100)
    engine.run_for(50)
    assert engine.now == 150


def test_events_scheduled_from_callbacks():
    engine = Engine()
    fired = []

    def first():
        fired.append(("first", engine.now))
        engine.schedule(25, second)

    def second():
        fired.append(("second", engine.now))

    engine.schedule(10, first)
    engine.run()
    assert fired == [("first", 10), ("second", 35)]


def test_cancel_prevents_execution():
    engine = Engine()
    fired = []
    handle = engine.schedule(10, lambda: fired.append("x"))
    handle.cancel()
    engine.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    engine = Engine()
    handle = engine.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_stop_halts_run_loop():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: fired.append(1))
    engine.schedule(20, engine.stop)
    engine.schedule(30, lambda: fired.append(3))
    engine.run()
    assert fired == [1]
    # The remaining event is still queued and runs on the next run().
    engine.run()
    assert fired == [1, 3]


def test_run_is_not_reentrant():
    engine = Engine()

    def nested():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, nested)
    engine.run()


def test_pending_events_ignores_cancelled():
    engine = Engine()
    engine.schedule(10, lambda: None)
    handle = engine.schedule(20, lambda: None)
    handle.cancel()
    assert engine.pending_events == 1


def test_returns_executed_count():
    engine = Engine()
    for delay in (1, 2, 3):
        engine.schedule(delay, lambda: None)
    assert engine.run() == 3


def test_time_unit_properties():
    engine = Engine()
    engine.schedule(2 * PS_PER_MS, lambda: None)
    engine.run()
    assert engine.now_ms == pytest.approx(2.0)
    assert engine.now_us == pytest.approx(2000.0)
    assert engine.now_ns == pytest.approx(2_000_000.0)


def test_drain_runs_immediate_callbacks():
    engine = Engine()
    fired = []
    engine.drain([lambda: fired.append("a"), lambda: fired.append("b")])
    assert fired == ["a", "b"]
