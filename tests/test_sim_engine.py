"""Unit tests for the discrete-event engine.

Every test runs against both queue implementations (the bucketed
calendar queue and the heapq reference) via the ``engine`` fixture --
the two must be behaviorally indistinguishable.
"""

import pytest

from repro.sim.engine import (
    ENGINE_KINDS,
    Engine,
    HeapqEngine,
    PS_PER_MS,
    SimulationError,
    make_engine,
)


@pytest.fixture(params=sorted(ENGINE_KINDS))
def engine(request):
    return make_engine(request.param)


def test_make_engine_kinds():
    assert isinstance(make_engine("calendar"), Engine)
    assert isinstance(make_engine("heapq"), HeapqEngine)
    with pytest.raises(ValueError):
        make_engine("splay")


def test_initial_time_is_zero(engine):
    assert engine.now == 0


def test_schedule_and_run_single_event(engine):
    fired = []
    engine.schedule(100, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [100]
    assert engine.now == 100


def test_events_run_in_timestamp_order(engine):
    order = []
    engine.schedule(300, lambda: order.append("c"))
    engine.schedule(100, lambda: order.append("a"))
    engine.schedule(200, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_scheduling_order(engine):
    order = []
    engine.schedule(50, lambda: order.append(1))
    engine.schedule(50, lambda: order.append(2))
    engine.schedule(50, lambda: order.append(3))
    engine.run()
    assert order == [1, 2, 3]


def test_post_and_schedule_interleave_in_scheduling_order(engine):
    order = []
    engine.post(50, lambda: order.append(1))
    engine.schedule(50, lambda: order.append(2))
    engine.post(50, lambda: order.append(3))
    engine.run()
    assert order == [1, 2, 3]


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)
    with pytest.raises(SimulationError):
        engine.post(-1, lambda: None)


def test_schedule_at_in_past_rejected(engine):
    engine.schedule(100, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)
    with pytest.raises(SimulationError):
        engine.post_at(50, lambda: None)


def test_run_until_executes_events_at_boundary(engine):
    fired = []
    engine.schedule(100, lambda: fired.append(100))
    engine.schedule(200, lambda: fired.append(200))
    engine.schedule(201, lambda: fired.append(201))
    engine.run(until_ps=200)
    assert fired == [100, 200]
    assert engine.now == 200


def test_run_until_advances_time_even_if_queue_drains(engine):
    engine.schedule(10, lambda: None)
    engine.run(until_ps=500)
    assert engine.now == 500


def test_run_for_is_relative(engine):
    engine.schedule(100, lambda: None)
    engine.run(until_ps=100)
    engine.run_for(50)
    assert engine.now == 150


def test_events_scheduled_from_callbacks(engine):
    fired = []

    def first():
        fired.append(("first", engine.now))
        engine.schedule(25, second)

    def second():
        fired.append(("second", engine.now))

    engine.schedule(10, first)
    engine.run()
    assert fired == [("first", 10), ("second", 35)]


def test_same_timestamp_event_scheduled_from_callback_runs_same_pass(engine):
    fired = []

    def first():
        fired.append("first")
        engine.schedule(0, lambda: fired.append("nested"))

    engine.schedule(10, first)
    engine.schedule(10, lambda: fired.append("second"))
    assert engine.run() == 3
    assert fired == ["first", "second", "nested"]


def test_cancel_prevents_execution(engine):
    fired = []
    handle = engine.schedule(10, lambda: fired.append("x"))
    handle.cancel()
    engine.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent(engine):
    handle = engine.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled
    assert engine.pending_events == 0


def test_pending_events_is_constant_time_and_ignores_cancelled(engine):
    """Cancelled events stop counting the instant they are cancelled."""
    engine.schedule(10, lambda: None)
    handle = engine.schedule(20, lambda: None)
    assert engine.pending_events == 2
    handle.cancel()
    assert engine.pending_events == 1
    # Repeated cancellation must not double-decrement.
    handle.cancel()
    assert engine.pending_events == 1
    engine.run()
    assert engine.pending_events == 0


def test_pending_events_counts_posts(engine):
    engine.post(10, lambda: None)
    engine.post(10, lambda: None)
    engine.post(99, lambda: None)
    assert engine.pending_events == 3
    engine.run(until_ps=10)
    assert engine.pending_events == 1


def test_mass_cancellation_triggers_lazy_purge(engine):
    """Cancelling most of a large queue purges the dead records; the
    survivors still run in order."""
    fired = []
    handles = [
        engine.schedule(10 * (i + 1), lambda i=i: fired.append(i))
        for i in range(500)
    ]
    for i, handle in enumerate(handles):
        if i % 10:
            handle.cancel()
    assert engine.pending_events == 50
    executed = engine.run()
    assert executed == 50
    assert fired == [i for i in range(500) if i % 10 == 0]
    assert engine.pending_events == 0


def test_cancel_within_same_timestamp_bucket(engine):
    """A callback can cancel a later event at its own timestamp."""
    fired = []
    handles = {}

    def first():
        fired.append("first")
        handles["b"].cancel()

    engine.schedule(10, first)
    handles["b"] = engine.schedule(10, lambda: fired.append("b"))
    engine.schedule(10, lambda: fired.append("c"))
    engine.run()
    assert fired == ["first", "c"]


def test_cancel_after_execution_is_noop(engine):
    """Cancelling a handle whose event already fired must not disturb
    the live-event counter (regression: it once went negative)."""
    fired = []
    handle = engine.schedule(10, lambda: fired.append(1))
    engine.schedule(20, lambda: None)
    engine.run(until_ps=15)
    handle.cancel()
    assert fired == [1]
    assert engine.pending_events == 1
    engine.run()
    assert engine.pending_events == 0


def test_stop_halts_run_loop(engine):
    fired = []
    engine.schedule(10, lambda: fired.append(1))
    engine.schedule(20, engine.stop)
    engine.schedule(30, lambda: fired.append(3))
    engine.run()
    assert fired == [1]
    # The remaining event is still queued and runs on the next run().
    engine.run()
    assert fired == [1, 3]


def test_stop_mid_bucket_resumes_remaining_same_timestamp_events(engine):
    fired = []
    engine.schedule(10, lambda: fired.append(1))
    engine.schedule(10, engine.stop)
    engine.schedule(10, lambda: fired.append(3))
    engine.schedule(10, lambda: fired.append(4))
    engine.run()
    assert fired == [1]
    assert engine.now == 10
    assert engine.pending_events == 2
    engine.run()
    assert fired == [1, 3, 4]


def test_run_is_not_reentrant(engine):
    def nested():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, nested)
    engine.run()


def test_returns_executed_count(engine):
    for delay in (1, 2, 3):
        engine.schedule(delay, lambda: None)
    assert engine.run() == 3
    assert engine.executed_total == 3


def test_time_unit_properties(engine):
    engine.schedule(2 * PS_PER_MS, lambda: None)
    engine.run()
    assert engine.now_ms == pytest.approx(2.0)
    assert engine.now_us == pytest.approx(2000.0)
    assert engine.now_ns == pytest.approx(2_000_000.0)


def test_drain_runs_immediate_callbacks(engine):
    fired = []
    engine.drain([lambda: fired.append("a"), lambda: fired.append("b")])
    assert fired == ["a", "b"]
