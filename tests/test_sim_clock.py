"""Unit tests for clock domains."""

import pytest

from repro.sim.clock import ClockDomain, CPU_CLOCK_PS, DRAM_CLOCK_PS
from repro.sim.engine import Engine


def test_cpu_and_dram_periods_match_table2():
    # Table 2: 2 GHz CPU, DDR3-1600 (tCK = 1.25 ns).
    assert CPU_CLOCK_PS == 500
    assert DRAM_CLOCK_PS == 1250


def test_frequency_property():
    engine = Engine()
    cpu = ClockDomain(engine, CPU_CLOCK_PS)
    assert cpu.frequency_ghz == pytest.approx(2.0)
    dram = ClockDomain(engine, DRAM_CLOCK_PS)
    assert dram.frequency_ghz == pytest.approx(0.8)


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        ClockDomain(Engine(), 0)


def test_cycle_conversions():
    clock = ClockDomain(Engine(), 500)
    assert clock.cycles_to_ps(4) == 2000
    assert clock.ps_to_cycles(2000) == pytest.approx(4.0)


def test_next_edge_on_edge_is_now():
    engine = Engine()
    clock = ClockDomain(engine, 500)
    assert clock.next_edge_ps() == 0


def test_next_edge_rounds_up():
    engine = Engine()
    clock = ClockDomain(engine, 500)
    engine.schedule(123, lambda: None)
    engine.run()
    assert engine.now == 123
    assert clock.next_edge_ps() == 500


def test_schedule_cycles_aligns_to_edges():
    engine = Engine()
    clock = ClockDomain(engine, 1250)
    fired = []
    # Move to an unaligned time first.
    engine.schedule(100, lambda: clock.schedule_cycles(2, lambda: fired.append(engine.now)))
    engine.run()
    # Next edge after 100 ps is 1250; two cycles later is 3750.
    assert fired == [3750]


def test_now_cycles_counts_completed_cycles():
    engine = Engine()
    clock = ClockDomain(engine, 500)
    engine.schedule(1600, lambda: None)
    engine.run()
    assert clock.now_cycles == 3
