"""Unit tests for ICN packet types and DS-id tagging semantics."""

import pytest

from repro.sim.packet import (
    DEFAULT_DSID,
    DmaPacket,
    InterruptPacket,
    IoPacket,
    IoOp,
    MemOp,
    MemoryPacket,
    Packet,
)


def test_default_dsid_is_zero():
    assert Packet().ds_id == DEFAULT_DSID


def test_dsid_range_is_16_bit():
    Packet(ds_id=0xFFFF)  # max value accepted
    with pytest.raises(ValueError):
        Packet(ds_id=0x1_0000)
    with pytest.raises(ValueError):
        Packet(ds_id=-1)


def test_packet_ids_are_unique():
    ids = {Packet().packet_id for _ in range(100)}
    assert len(ids) == 100


def test_memory_packet_defaults():
    pkt = MemoryPacket(addr=0x1000)
    assert pkt.op is MemOp.READ
    assert not pkt.is_write
    assert pkt.size == 64


def test_write_and_writeback_are_writes():
    assert MemoryPacket(op=MemOp.WRITE).is_write
    assert MemoryPacket(op=MemOp.WRITEBACK).is_write


def test_line_addr_alignment():
    pkt = MemoryPacket(addr=0x1234)
    assert pkt.line_addr(64) == 0x1200
    assert pkt.line_addr(128) == 0x1200
    aligned = MemoryPacket(addr=0x1240)
    assert aligned.line_addr(64) == 0x1240


def test_writeback_charges_owner_dsid():
    # PARD §4.1: the writeback must use the evicted block's owner DS-id,
    # not the DS-id of the request that caused the eviction.
    pkt = MemoryPacket(ds_id=1, op=MemOp.WRITEBACK, owner_ds_id=2)
    assert pkt.effective_ds_id == 2


def test_non_writeback_uses_request_dsid():
    pkt = MemoryPacket(ds_id=1, op=MemOp.READ, owner_ds_id=2)
    assert pkt.effective_ds_id == 1


def test_writeback_without_owner_falls_back_to_request_dsid():
    pkt = MemoryPacket(ds_id=3, op=MemOp.WRITEBACK)
    assert pkt.effective_ds_id == 3


def test_io_packet_fields():
    pkt = IoPacket(ds_id=2, device="ide0", offset=8, op=IoOp.PIO_WRITE, value=0x80)
    assert pkt.device == "ide0"
    assert pkt.op is IoOp.PIO_WRITE


def test_dma_packet_direction():
    pkt = DmaPacket(ds_id=1, addr=0x2000, size=4096, to_device=True, device="nic0")
    assert pkt.to_device
    assert pkt.size == 4096


def test_interrupt_packet_carries_dsid():
    pkt = InterruptPacket(ds_id=5, vector=14, device="ide0")
    assert pkt.ds_id == 5
    assert pkt.vector == 14
