"""Shared test helpers."""

from __future__ import annotations

from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket


class FakeMemory(Component):
    """A downstream memory that records requests and replies after a delay."""

    def __init__(self, engine: Engine, latency_ps: int = 50_000, name: str = "fakemem"):
        super().__init__(engine, name)
        self.latency_ps = latency_ps
        self.requests: list[MemoryPacket] = []

    def handle_request(self, packet, on_response):
        self.requests.append(packet)
        self.schedule(self.latency_ps, lambda: on_response(packet))

    def requests_of(self, op=None, ds_id=None):
        result = self.requests
        if op is not None:
            result = [p for p in result if p.op is op]
        if ds_id is not None:
            result = [p for p in result if p.ds_id == ds_id]
        return result
