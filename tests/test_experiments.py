"""Tests for the experiment drivers (scaled-down, fast configurations)."""

import pytest

from repro.system.experiments import (
    ColocationSetup,
    PAPER_KRPS_SCALE,
    measure_saturation_rate,
    run_colocation_point,
    run_fig9,
    run_fig10,
    run_fig11,
)


def tiny_setup():
    """A reduced setup so experiment tests stay fast."""
    return ColocationSetup(
        scale=32,
        mc_working_set_bytes=56 << 10,
        mc_loads_per_request=60,
        stream_array_bytes=256 << 10,
        warmup_ms=0.5,
    )


class TestColocationPoint:
    def test_solo_runs_one_core(self):
        result = run_colocation_point("solo", 150_000, setup=tiny_setup(), measure_ms=1.0)
        assert result.cpu_utilization == 0.25
        assert result.p95_ms > 0
        assert result.throughput_rps > 0
        assert not result.trigger_fired

    @pytest.mark.slow
    def test_shared_runs_all_cores_and_degrades(self):
        setup = tiny_setup()
        solo = run_colocation_point("solo", 150_000, setup=setup, measure_ms=1.0)
        shared = run_colocation_point("shared", 150_000, setup=setup, measure_ms=1.0)
        assert shared.cpu_utilization == 1.0
        assert shared.p95_ms > solo.p95_ms
        assert shared.llc_miss_rate > (solo.llc_miss_rate or 0)

    @pytest.mark.slow
    def test_trigger_mode_fires_and_recovers(self):
        setup = tiny_setup()
        shared = run_colocation_point("shared", 150_000, setup=setup, measure_ms=1.5)
        trig = run_colocation_point("trigger", 150_000, setup=setup, measure_ms=1.5)
        assert trig.trigger_fired
        assert trig.llc_miss_rate < shared.llc_miss_rate
        assert trig.p95_ms <= shared.p95_ms

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_colocation_point("turbo", 100_000, setup=tiny_setup())

    def test_paper_krps_mapping(self):
        result = run_colocation_point("solo", 500_000, setup=tiny_setup(), measure_ms=0.5)
        # Our solo knee (~500 KRPS) maps to the paper's 22.5 KRPS axis.
        assert result.paper_krps == pytest.approx(22.5)


class TestFig9Timeline:
    @pytest.mark.slow
    def test_trigger_timeline_shape(self):
        setup = tiny_setup()
        timeline = run_fig9(
            rps=150_000, setup=setup,
            stream_delay_ms=1.0, total_ms=4.0, sample_ms=0.5,
        )
        assert len(timeline.times_ms) == 8
        assert timeline.trigger_time_ms is not None
        assert timeline.trigger_time_ms >= timeline.stream_start_ms
        # After the trigger, memcached holds the dedicated half.
        assert timeline.final_waymask == 0xFF00
        # Peak miss rate happens after the streams start, and the tail of
        # the timeline is below the peak (recovery).
        peak = max(timeline.miss_rates)
        assert peak > setup.trigger_threshold_pct / 100
        assert timeline.miss_rates[-1] < peak


class TestFig10Disk:
    def test_share_shifts_from_half_to_80_20(self):
        timeline = run_fig10(phase_ms=80.0, sample_ms=20.0, block_bytes=2 << 20)
        split = len([t for t in timeline.times_ms if t <= timeline.quota_change_ms])
        before_a = timeline.bandwidth_share["ldom_a"][1:split]
        after_a = timeline.bandwidth_share["ldom_a"][split + 1:]
        assert sum(before_a) / len(before_a) == pytest.approx(0.5, abs=0.1)
        assert sum(after_a) / len(after_a) == pytest.approx(0.8, abs=0.1)


class TestFig11Queueing:
    def test_saturation_probe_positive(self):
        rate = measure_saturation_rate(num_requests=1500)
        assert 0.01 < rate < 0.25  # below the theoretical bus peak

    def test_priority_redistributes_waiting(self):
        result = run_fig11(num_requests=2500)
        assert result.high_priority_mean_cycles < result.baseline_mean_cycles
        assert result.high_priority_speedup > 1.5
        # CDFs are well-formed and ordered: the high-priority curve
        # dominates (more mass at low delay).
        assert result.high_cdf[-1][1] == pytest.approx(1.0)
        for (_, high_frac), (_, base_frac) in zip(result.high_cdf, result.baseline_cdf):
            assert high_frac >= base_frac - 1e-9

    def test_invalid_inject_rate(self):
        with pytest.raises(ValueError):
            run_fig11(inject_rate=1.5)
