"""Unit tests for MSHRs and the writeback buffer."""

import pytest

from repro.cache.mshr import MshrFile, MshrFullError
from repro.cache.writeback import WritebackBuffer


class TestMshrFile:
    def test_primary_allocation(self):
        mshrs = MshrFile(4)
        entry, primary = mshrs.allocate(0x100, 1, now_ps=10)
        assert primary
        assert entry.line_addr == 0x100
        assert mshrs.occupancy == 1
        assert mshrs.primary_misses == 1

    def test_secondary_miss_merges(self):
        mshrs = MshrFile(4)
        mshrs.allocate(0x100, 1, now_ps=10)
        entry, primary = mshrs.allocate(0x100, 1, now_ps=20)
        assert not primary
        assert mshrs.occupancy == 1
        assert mshrs.secondary_misses == 1

    def test_same_line_different_dsid_gets_own_entry(self):
        # Two LDoms can miss on the same LDom-physical line; these are
        # different blocks and need different fills (PARD Fig. 4).
        mshrs = MshrFile(4)
        _, p1 = mshrs.allocate(0x100, 1, now_ps=0)
        _, p2 = mshrs.allocate(0x100, 2, now_ps=0)
        assert p1 and p2
        assert mshrs.occupancy == 2

    def test_full_raises(self):
        mshrs = MshrFile(1)
        mshrs.allocate(0x100, 1, now_ps=0)
        with pytest.raises(MshrFullError):
            mshrs.allocate(0x200, 1, now_ps=0)

    def test_merge_allowed_when_full(self):
        mshrs = MshrFile(1)
        mshrs.allocate(0x100, 1, now_ps=0)
        _, primary = mshrs.allocate(0x100, 1, now_ps=0)
        assert not primary

    def test_complete_notifies_waiters_in_order(self):
        mshrs = MshrFile(4)
        woken = []
        mshrs.allocate(0x100, 1, now_ps=0, on_fill=lambda: woken.append("a"))
        mshrs.allocate(0x100, 1, now_ps=0, on_fill=lambda: woken.append("b"))
        mshrs.complete(0x100, 1)
        assert woken == ["a", "b"]
        assert mshrs.occupancy == 0

    def test_write_intent_is_sticky(self):
        mshrs = MshrFile(4)
        mshrs.allocate(0x100, 1, now_ps=0, is_write=False)
        entry, _ = mshrs.allocate(0x100, 1, now_ps=0, is_write=True)
        assert entry.is_write

    def test_complete_unknown_raises(self):
        with pytest.raises(KeyError):
            MshrFile(4).complete(0x100, 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestWritebackBuffer:
    def test_fifo_order(self):
        buf = WritebackBuffer(4)
        buf.push(0x100, 1, now_ps=0)
        buf.push(0x200, 2, now_ps=1)
        assert buf.pop().line_addr == 0x100
        assert buf.pop().owner_ds_id == 2

    def test_capacity(self):
        buf = WritebackBuffer(1)
        buf.push(0x100, 1, 0)
        assert buf.is_full
        with pytest.raises(OverflowError):
            buf.push(0x200, 1, 0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            WritebackBuffer(2).pop()

    def test_peek_does_not_remove(self):
        buf = WritebackBuffer(2)
        buf.push(0x100, 3, 0)
        assert buf.peek().owner_ds_id == 3
        assert buf.occupancy == 1

    def test_entry_records_owner_dsid(self):
        buf = WritebackBuffer(2)
        entry = buf.push(0x100, owner_ds_id=7, now_ps=5)
        assert entry.owner_ds_id == 7
        assert entry.queued_at_ps == 5

    def test_total_enqueued_counts(self):
        buf = WritebackBuffer(4)
        for i in range(3):
            buf.push(i * 64, 0, 0)
        assert buf.total_enqueued == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WritebackBuffer(0)
