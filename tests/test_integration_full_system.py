"""Full-system integration tests.

These run short versions of the paper's scenarios end-to-end: LDoms are
created and launched through the firmware, traffic flows through tagged
cores -> L1 -> LLC -> DRAM and the bridge/IDE path, statistics are read
back through the device file tree, and triggers repartition the cache.
"""

import pytest

from repro.sim.engine import PS_PER_MS
from repro.prm.rules import partition_llc_action
from repro.system.config import TABLE2
from repro.system.server import PardServer
from repro.workloads.cacheflush import CacheFlush
from repro.workloads.diskio import DiskCopy
from repro.workloads.memcached import MemcachedServer
from repro.workloads.stream import Stream


def small_server():
    return PardServer(TABLE2.scaled(32))


class TestTaggedMemoryPath:
    def test_two_ldoms_same_ldom_address_do_not_alias(self):
        """LDoms both write LDom-address 0; the memory control plane maps
        them to different DRAM rows and the LLC keeps both blocks."""
        server = small_server()
        fw = server.firmware
        a = fw.create_ldom("a", (0,), 1 << 20)
        b = fw.create_ldom("b", (1,), 1 << 20)
        fw.launch_ldom("a", {0: Stream(array_bytes=64 * 64, write_fraction=0)})
        fw.launch_ldom("b", {1: Stream(array_bytes=64 * 64, write_fraction=0)})
        server.run_ms(0.2)
        assert server.llc.occupancy_blocks(a.ds_id) > 0
        assert server.llc.occupancy_blocks(b.ds_id) > 0
        # DRAM traffic was translated into disjoint windows.
        assert server.memory_control.mapping(a.ds_id).overlaps(
            server.memory_control.mapping(b.ds_id)
        ) is False

    def test_cacheflush_steals_unpartitioned_llc(self):
        server = small_server()
        fw = server.firmware
        victim = fw.create_ldom("victim", (0,), 1 << 20)
        flusher = fw.create_ldom("flusher", (1,), 1 << 20)
        server.start()
        # A low-intensity victim: it cannot defend its lines by re-touch.
        victim_workload = Stream(
            array_bytes=32 << 10, write_fraction=0, compute_cycles_per_batch=4000
        )
        fw.launch_ldom("victim", {0: victim_workload})
        server.run_ms(1.0)
        occupancy_before = server.llc_occupancy_bytes(victim.ds_id)
        fw.launch_ldom("flusher", {1: CacheFlush(flush_bytes=1 << 20)})
        server.run_ms(1.0)
        occupancy_after = server.llc_occupancy_bytes(victim.ds_id)
        assert occupancy_after < occupancy_before

    def test_waymask_echo_protects_occupancy(self):
        server = small_server()
        fw = server.firmware
        victim = fw.create_ldom("victim", (0,), 1 << 20)
        flusher = fw.create_ldom("flusher", (1,), 1 << 20)
        # Partition up front: victim gets half the ways exclusively.
        fw.sh(f"echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom{victim.ds_id}/parameters/waymask")
        fw.sh(f"echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom{flusher.ds_id}/parameters/waymask")
        server.start()
        victim_workload = Stream(
            array_bytes=16 << 10, write_fraction=0, compute_cycles_per_batch=4000
        )
        fw.launch_ldom("victim", {0: victim_workload})
        server.run_ms(1.0)
        occupancy_before = server.llc_occupancy_bytes(victim.ds_id)
        fw.launch_ldom("flusher", {1: CacheFlush(flush_bytes=1 << 20)})
        server.run_ms(1.0)
        occupancy_after = server.llc_occupancy_bytes(victim.ds_id)
        assert occupancy_after >= occupancy_before * 0.9


class TestTriggerEndToEnd:
    @pytest.mark.slow
    def test_miss_rate_trigger_repartitions_llc(self):
        server = PardServer(TABLE2.scaled(16))
        fw = server.firmware
        mc = fw.create_ldom("mc", (0,), 1 << 20, priority=1)
        fw.register_script(
            "/t.sh", partition_llc_action(num_ways=16, share=0.5)
        )
        fw.sh(f"pardtrigger /dev/cpa0 -ldom={mc.ds_id} -action=0 -stats=miss_rate -cond=gt,10")
        fw.sh(f"echo /t.sh > /sys/cpa/cpa0/ldoms/ldom{mc.ds_id}/triggers/0")
        server.start()
        workload = MemcachedServer(
            server.engine, rps=200_000, working_set_bytes=96 << 10,
            loads_per_request=60, mlp=1, warmup_ps=0,
        )
        fw.launch_ldom("mc", {0: workload})
        for i in (1, 2):
            fw.create_ldom(f"bg{i}", (i,), 1 << 20)
            fw.launch_ldom(f"bg{i}", {i: CacheFlush(flush_bytes=512 << 10)})
        server.run_ms(5)
        mask = int(fw.cat(f"/sys/cpa/cpa0/ldoms/ldom{mc.ds_id}/parameters/waymask"))
        assert mask == 0xFF00
        assert server.llc_control.interrupts_raised >= 1
        assert workload.requests_served > 0

    def test_statistics_visible_through_sysfs(self):
        server = small_server()
        fw = server.firmware
        ldom = fw.create_ldom("a", (0,), 1 << 20)
        server.start()
        fw.launch_ldom("a", {0: Stream(array_bytes=256 << 10)})
        server.run_ms(2.1)
        base = f"/sys/cpa/cpa0/ldoms/ldom{ldom.ds_id}/statistics"
        assert int(fw.cat(f"{base}/miss_cnt")) > 0
        assert int(fw.cat(f"{base}/capacity")) > 0
        mem_bw = int(fw.cat(f"/sys/cpa/cpa1/ldoms/ldom{ldom.ds_id}/statistics/bandwidth"))
        assert mem_bw > 0


class TestDiskPathEndToEnd:
    def test_dd_through_bridge_ide_dma_interrupt(self):
        server = small_server()
        fw = server.firmware
        ldom = fw.create_ldom("writer", (0,), 1 << 20)
        server.start()
        dd = DiskCopy(block_bytes=256 << 10, count=2, compute_cycles_between=100)
        fw.launch_ldom("writer", {0: dd})
        server.run_ms(20)
        assert dd.blocks_written == 2
        assert server.ide.completed_transfers == 2
        # Completion interrupts were tagged and routed to the LDom's core.
        assert server.apic.delivered >= 2
        assert server.apic.dropped == 0
        # The DMA traffic hit DRAM under the LDom's DS-id.
        assert server.memory_control.statistics.get(ldom.ds_id, "serv_cnt") > 0

    def test_disk_quota_shifts_throughput(self):
        server = small_server()
        fw = server.firmware
        a = fw.create_ldom("a", (0,), 1 << 20, disk_share=80)
        b = fw.create_ldom("b", (1,), 1 << 20, disk_share=20)
        server.start()
        # Large blocks, as in the paper's dd bs=32M: the queue stays
        # backlogged so the DRR weights fully express themselves.
        dd_a = DiskCopy(block_bytes=4 << 20, count=0, compute_cycles_between=0)
        dd_b = DiskCopy(block_bytes=4 << 20, count=0, compute_cycles_between=0)
        fw.launch_ldom("a", {0: dd_a})
        fw.launch_ldom("b", {1: dd_b})
        server.run_ms(300)
        bytes_a = server.ide_control.statistics.get(a.ds_id, "bytes_total")
        bytes_b = server.ide_control.statistics.get(b.ds_id, "bytes_total")
        assert bytes_a / bytes_b == pytest.approx(4.0, rel=0.3)


class TestSoloVsSharedUtilization:
    def test_colocation_raises_utilization_4x(self):
        """The headline claim: co-location takes the server from 25% to
        100% CPU utilization (4x)."""
        server = PardServer(TABLE2.scaled(16))
        fw = server.firmware
        fw.create_ldom("mc", (0,), 1 << 20)
        mc = MemcachedServer(server.engine, rps=100_000, working_set_bytes=64 << 10,
                             loads_per_request=20, warmup_ps=0)
        server.start()
        fw.launch_ldom("mc", {0: mc})
        server.run_ms(0.5)
        solo_util = server.cpu_utilization()
        for i in (1, 2, 3):
            fw.create_ldom(f"bg{i}", (i,), 1 << 20)
            fw.launch_ldom(f"bg{i}", {i: Stream(array_bytes=256 << 10)})
        server.run_ms(0.5)
        shared_util = server.cpu_utilization()
        assert shared_util == pytest.approx(4 * solo_util)
        assert shared_util == 1.0
