"""Unit tests for the IDE controller, I/O bridge and multi-queue NIC."""

import pytest

from tests.helpers import FakeMemory
from repro.io.bridge import ALL_DEVICES_MASK, IoAccessError, IoBridge, IoBridgeControlPlane
from repro.io.disk import IdeControlPlane, IdeController
from repro.io.nic import MultiQueueNic, NicControlPlane
from repro.sim.engine import Engine, PS_PER_S
from repro.sim.packet import IoOp, IoPacket


def make_ide(engine=None, control=True, bw=100 * 1024 * 1024, chunk=64 * 1024):
    engine = engine or Engine()
    plane = IdeControlPlane(engine) if control else None
    ide = IdeController(
        engine, control=plane, total_bandwidth_bytes_per_s=bw, chunk_bytes=chunk
    )
    return engine, ide, plane


def write_blocks(engine, ide, ds_id, nbytes, count=1):
    done = []
    def issue(_=None):
        if len(done) < count:
            pkt = IoPacket(ds_id=ds_id, device="ide0", op=IoOp.PIO_WRITE, value=nbytes)
            ide.handle_request(pkt, lambda p: (done.append(engine.now), issue()))
    issue()
    return done


class TestIdeController:
    def test_single_transfer_takes_bandwidth_time(self):
        engine, ide, _ = make_ide(bw=100 * 1024 * 1024)
        done = write_blocks(engine, ide, ds_id=1, nbytes=10 * 1024 * 1024)
        engine.run()
        assert len(done) == 1
        expected_ps = 10 * 1024 * 1024 * PS_PER_S / (100 * 1024 * 1024)
        assert done[0] == pytest.approx(expected_ps, rel=0.01)

    def test_equal_share_without_quota(self):
        engine, ide, plane = make_ide()
        plane.allocate_ldom(1)
        plane.allocate_ldom(2)
        write_blocks(engine, ide, 1, 4 << 20, count=50)
        write_blocks(engine, ide, 2, 4 << 20, count=50)
        engine.run(until_ps=PS_PER_S // 2)
        plane.roll_window()
        bw1 = plane.last_window_bandwidth_bytes(1)
        bw2 = plane.last_window_bandwidth_bytes(2)
        assert bw1 > 0 and bw2 > 0
        assert bw1 / bw2 == pytest.approx(1.0, rel=0.15)

    def test_quota_shifts_share_to_80_20(self):
        # Fig. 10: echo 80 > .../ldom0/parameters/bandwidth
        engine, ide, plane = make_ide()
        plane.allocate_ldom(1, bandwidth=80)
        plane.allocate_ldom(2, bandwidth=20)
        write_blocks(engine, ide, 1, 4 << 20, count=100)
        write_blocks(engine, ide, 2, 4 << 20, count=100)
        engine.run(until_ps=PS_PER_S // 2)
        plane.roll_window()
        bw1 = plane.last_window_bandwidth_bytes(1)
        bw2 = plane.last_window_bandwidth_bytes(2)
        assert bw1 / bw2 == pytest.approx(4.0, rel=0.25)

    def test_explicit_quota_vs_default_share(self):
        engine, ide, plane = make_ide()
        plane.allocate_ldom(1, bandwidth=80)
        plane.allocate_ldom(2)  # default: gets the remaining 20
        assert plane.weight(1) == 80
        assert plane.weight(2) == pytest.approx(20.0)

    def test_idle_ldom_leaves_bandwidth_to_active(self):
        engine, ide, plane = make_ide()
        plane.allocate_ldom(1, bandwidth=20)
        plane.allocate_ldom(2, bandwidth=80)
        # Only LDom1 is writing; it should get the whole disk.
        done = write_blocks(engine, ide, 1, 8 << 20, count=1)
        engine.run()
        expected_ps = (8 << 20) * PS_PER_S / (100 * 1024 * 1024)
        assert done[0] == pytest.approx(expected_ps, rel=0.05)

    def test_dma_memory_traffic_tagged(self):
        engine = Engine()
        memory = FakeMemory(engine, latency_ps=100)
        plane = IdeControlPlane(engine)
        plane.allocate_ldom(3)
        ide = IdeController(engine, control=plane, memory=memory, chunk_bytes=64 * 1024)
        write_blocks(engine, ide, 3, 128 * 1024)
        engine.run()
        assert memory.requests
        assert all(p.ds_id == 3 for p in memory.requests)

    def test_invalid_transfer_size(self):
        engine, ide, _ = make_ide()
        with pytest.raises(ValueError):
            ide.handle_request(IoPacket(device="ide0", value=0), lambda p: None)

    def test_validation(self):
        with pytest.raises(ValueError):
            IdeController(Engine(), total_bandwidth_bytes_per_s=0)


class TestIoBridge:
    def make_bridge(self):
        engine = Engine()
        plane = IoBridgeControlPlane(engine)
        bridge = IoBridge(engine, control=plane)
        _, ide, _ = make_ide(engine)
        index = bridge.attach_device("ide0", ide)
        return engine, bridge, plane, index

    def test_routes_to_device(self):
        engine, bridge, plane, _ = self.make_bridge()
        done = []
        pkt = IoPacket(ds_id=0, device="ide0", op=IoOp.PIO_WRITE, value=64 * 1024)
        bridge.handle_request(pkt, lambda p: done.append(p))
        engine.run()
        assert done

    def test_access_mask_denies(self):
        engine, bridge, plane, index = self.make_bridge()
        plane.allocate_ldom(5, devmask=0)  # no devices
        pkt = IoPacket(ds_id=5, device="ide0", op=IoOp.PIO_WRITE, value=1024)
        with pytest.raises(IoAccessError):
            bridge.handle_request(pkt, lambda p: None)
        plane.roll_window()
        assert plane.statistics.get(5, "denied_cnt") == 1

    def test_mask_grants_specific_device(self):
        engine, bridge, plane, index = self.make_bridge()
        plane.allocate_ldom(5, devmask=1 << index)
        pkt = IoPacket(ds_id=5, device="ide0", op=IoOp.PIO_WRITE, value=1024)
        bridge.handle_request(pkt, lambda p: None)  # no exception
        plane.roll_window()
        assert plane.statistics.get(5, "pio_cnt") == 1

    def test_unknown_device(self):
        engine, bridge, _, _ = self.make_bridge()
        with pytest.raises(KeyError):
            bridge.handle_request(IoPacket(device="nope"), lambda p: None)

    def test_duplicate_device_rejected(self):
        engine, bridge, _, _ = self.make_bridge()
        with pytest.raises(ValueError):
            bridge.attach_device("ide0", object())

    def test_default_mask_allows_everything(self):
        engine, bridge, plane, _ = self.make_bridge()
        assert plane.devmask(42) == ALL_DEVICES_MASK


class TestMultiQueueNic:
    def make_nic(self):
        engine = Engine()
        memory = FakeMemory(engine, latency_ps=100)
        plane = NicControlPlane(engine)
        nic = MultiQueueNic(engine, memory=memory, control=plane)
        return engine, memory, plane, nic

    def test_mac_demux_tags_rx_dma(self):
        engine, memory, plane, nic = self.make_nic()
        plane.allocate_ldom(1)
        plane.allocate_ldom(2)
        nic.add_vnic("aa:01", ds_id=1)
        nic.add_vnic("aa:02", ds_id=2)
        nic.receive_frame("aa:01", 1500)
        nic.receive_frame("aa:02", 1500)
        engine.run()
        tags = [p.ds_id for p in memory.requests]
        assert 1 in tags and 2 in tags

    def test_unknown_mac_dropped(self):
        engine, memory, plane, nic = self.make_nic()
        assert nic.receive_frame("de:ad", 1500) is False
        assert nic.rx_dropped == 1
        engine.run()
        assert memory.requests == []

    def test_duplicate_mac_rejected(self):
        _, _, _, nic = self.make_nic()
        nic.add_vnic("aa:01", 1)
        with pytest.raises(ValueError):
            nic.add_vnic("aa:01", 2)

    def test_tx_serialized_on_wire(self):
        engine, memory, plane, nic = self.make_nic()
        plane.allocate_ldom(1)
        sent = []
        nic.send(1, 125_000_000, on_sent=lambda: sent.append(engine.now))  # ~0.1s at 10GbE
        nic.send(1, 125_000_000, on_sent=lambda: sent.append(engine.now))
        engine.run()
        assert len(sent) == 2
        assert sent[1] == pytest.approx(2 * sent[0], rel=0.01)

    def test_traffic_statistics(self):
        engine, memory, plane, nic = self.make_nic()
        plane.allocate_ldom(1)
        nic.add_vnic("aa:01", 1)
        nic.receive_frame("aa:01", 1000)
        nic.send(1, 500)
        engine.run()
        plane.roll_window()
        assert plane.statistics.get(1, "rx_bytes") == 1000
        assert plane.statistics.get(1, "tx_bytes") == 500

    def test_send_validation(self):
        _, _, _, nic = self.make_nic()
        with pytest.raises(ValueError):
            nic.send(1, 0)
