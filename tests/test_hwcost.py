"""Unit tests for the FPGA cost model (Fig. 12 anchors and scaling)."""

import pytest
from hypothesis import given, strategies as st

from repro.hwcost.fpga import (
    ControlPlaneCost,
    LLC_CONTROLLER_LUT_FF,
    MIG_CONTROLLER_LUT_FF,
    ResourceEstimate,
    llc_control_plane_cost,
    memory_control_plane_cost,
    priority_queue_cost,
    table_pair_cost,
    tag_array_blockram_overhead,
    trigger_table_cost,
)


class TestPaperAnchors:
    def test_memory_plane_matches_paper_totals(self):
        cost = memory_control_plane_cost(table_entries=256, trigger_entries=64)
        assert cost.total.lut_ff == 1526
        assert cost.overhead_fraction == pytest.approx(0.101, abs=0.002)

    def test_llc_plane_matches_paper_totals(self):
        cost = llc_control_plane_cost(table_entries=256, trigger_entries=64)
        assert cost.total.lut_ff == 2359
        assert cost.overhead_fraction == pytest.approx(0.031, abs=0.002)

    def test_table_storage_anchor(self):
        assert table_pair_cost(256).lutram == 688

    def test_queue_anchor(self):
        queues = priority_queue_cost(queue_depth=16, priority_levels=2)
        assert queues.lut == 324
        assert queues.ff == 30

    def test_tag_array_blockram_anchor(self):
        extra, total = tag_array_blockram_overhead(dsid_bits=8)
        assert (extra, total) == (6, 18)

    def test_host_constants(self):
        assert MIG_CONTROLLER_LUT_FF == 15178
        assert LLC_CONTROLLER_LUT_FF == 75032


class TestScaling:
    def test_storage_scales_linearly_with_entries(self):
        small = table_pair_cost(64).lutram
        large = table_pair_cost(256).lutram
        assert large == pytest.approx(4 * small, rel=0.02)

    def test_trigger_logic_dominates_storage(self):
        # The paper: triggers consume more logic than storage because of
        # the comparators.
        cost = trigger_table_cost(64)
        assert cost.lut + cost.ff > 5 * cost.lutram

    def test_monotone_in_entries(self):
        totals = [
            memory_control_plane_cost(table_entries=e).total.lut_ff
            for e in (64, 128, 256)
        ]
        assert totals == sorted(totals)
        luts = [table_pair_cost(e).lutram for e in (64, 128, 256)]
        assert luts == sorted(luts)

    def test_monotone_in_triggers(self):
        totals = [trigger_table_cost(t).lut_ff for t in (16, 32, 64)]
        assert totals == sorted(totals)

    @given(st.integers(min_value=1, max_value=4096), st.integers(min_value=1, max_value=512))
    def test_property_costs_positive_and_overhead_bounded(self, entries, triggers):
        cost = memory_control_plane_cost(table_entries=entries, trigger_entries=triggers)
        assert cost.total.lut_ff > 0
        assert cost.total.lutram >= 0
        # Even huge tables stay below the host controller's size envelope
        # at realistic design points (sanity ceiling, not an anchor).
        if entries <= 256 and triggers <= 64:
            assert cost.overhead_fraction < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_control_plane_cost(table_entries=0)
        with pytest.raises(ValueError):
            llc_control_plane_cost(trigger_entries=0)
        with pytest.raises(ValueError):
            tag_array_blockram_overhead(dsid_bits=0)


class TestResourceEstimate:
    def test_addition(self):
        a = ResourceEstimate(lut=1, lutram=2, ff=3)
        b = ResourceEstimate(lut=10, lutram=20, ff=30)
        total = a + b
        assert (total.lut, total.lutram, total.ff) == (11, 22, 33)

    def test_cost_total_sums_components(self):
        cost = ControlPlaneCost(
            name="x",
            components={
                "a": ResourceEstimate(lut=5),
                "b": ResourceEstimate(ff=7),
            },
            host_lut_ff=100,
        )
        assert cost.total.lut_ff == 12
        assert cost.overhead_fraction == pytest.approx(0.12)
