"""Unit tests for the ICN crossbar."""

import pytest

from tests.helpers import FakeMemory
from repro.icn.crossbar import Crossbar, CrossbarControlPlane
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket


def make_crossbar(control=None, traversal=2_000, bw=0.064):
    engine = Engine()
    memory = FakeMemory(engine, latency_ps=1_000)
    xbar = Crossbar(engine, memory, traversal_ps=traversal, bytes_per_ps=bw,
                    control=control)
    return engine, memory, xbar


def send(engine, xbar, ds_id=0, size=64):
    done = []
    start = engine.now
    pkt = MemoryPacket(ds_id=ds_id, addr=0, size=size)
    xbar.handle_request(pkt, lambda p: done.append(engine.now - start))
    engine.run()
    return done[0]


class TestCrossbar:
    def test_traversal_plus_serialization_latency(self):
        engine, memory, xbar = make_crossbar(traversal=2_000, bw=0.064)
        latency = send(engine, xbar, size=64)
        serialization = int(64 / 0.064)
        assert latency == 2_000 + serialization + 1_000  # + memory

    def test_packets_reach_downstream_tagged(self):
        engine, memory, xbar = make_crossbar()
        send(engine, xbar, ds_id=5)
        assert memory.requests[0].ds_id == 5
        assert xbar.forwarded == 1

    def test_link_serializes_concurrent_packets(self):
        engine, memory, xbar = make_crossbar()
        done = []
        for _ in range(3):
            xbar.handle_request(MemoryPacket(addr=0, size=64),
                                lambda p: done.append(engine.now))
        engine.run()
        assert len(done) == 3
        assert done[0] < done[1] < done[2]

    def test_bandwidth_shares_follow_weights(self):
        engine = Engine()
        control = CrossbarControlPlane(engine)
        control.allocate_ldom(1, share=75)
        control.allocate_ldom(2, share=25)
        memory = FakeMemory(engine, latency_ps=100)
        xbar = Crossbar(engine, memory, traversal_ps=0, bytes_per_ps=0.001,
                        control=control)
        for i in range(200):
            xbar.handle_request(MemoryPacket(ds_id=1, addr=i * 64, size=64), lambda p: None)
            xbar.handle_request(MemoryPacket(ds_id=2, addr=i * 64, size=64), lambda p: None)
        engine.run(until_ps=4_000_000)
        control.roll_window()
        served1 = control.statistics.get(1, "flits")
        served2 = control.statistics.get(2, "flits")
        assert served1 / max(served2, 1) == pytest.approx(3.0, rel=0.3)

    def test_statistics_recorded(self):
        engine = Engine()
        control = CrossbarControlPlane(engine)
        control.allocate_ldom(1)
        memory = FakeMemory(engine, latency_ps=100)
        xbar = Crossbar(engine, memory, control=control)
        xbar.handle_request(MemoryPacket(ds_id=1, addr=0, size=64), lambda p: None)
        engine.run()
        control.roll_window()
        assert control.statistics.get(1, "flits") == 1
        assert control.statistics.get(1, "bytes") == 64

    def test_small_packets_rounded_to_flit(self):
        engine = Engine()
        control = CrossbarControlPlane(engine)
        control.allocate_ldom(1)
        memory = FakeMemory(engine, latency_ps=100)
        xbar = Crossbar(engine, memory, control=control, flit_bytes=16)
        xbar.handle_request(MemoryPacket(ds_id=1, addr=0, size=4), lambda p: None)
        engine.run()
        control.roll_window()
        assert control.statistics.get(1, "bytes") == 16

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            Crossbar(engine, FakeMemory(engine), traversal_ps=-1)
        with pytest.raises(ValueError):
            Crossbar(engine, FakeMemory(engine), bytes_per_ps=0)
