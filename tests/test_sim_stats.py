"""Unit and property tests for statistics primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, LatencyRecorder, WindowedRate


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0

    def test_add_accumulates(self):
        c = Counter("hits")
        c.add()
        c.add(5)
        assert c.value == 6

    def test_reset(self):
        c = Counter()
        c.add(3)
        c.reset()
        assert c.value == 0


class TestWindowedRate:
    def test_roll_exposes_window_value(self):
        r = WindowedRate("bw")
        r.add(10)
        r.add(5)
        assert r.roll() == 15
        assert r.last_window_value == 15
        assert r.current == 0

    def test_consecutive_windows_independent(self):
        r = WindowedRate()
        r.add(4)
        r.roll()
        r.add(7)
        assert r.roll() == 7
        assert r.windows_completed == 2

    def test_empty_window_rolls_to_zero(self):
        r = WindowedRate()
        r.add(9)
        r.roll()
        assert r.roll() == 0


class TestLatencyRecorder:
    def test_empty_recorder(self):
        rec = LatencyRecorder()
        assert rec.count == 0
        assert rec.mean == 0.0
        assert rec.percentile(95) == 0.0
        assert rec.cdf() == []

    def test_empty_recorder_extremes_are_none(self):
        # None, not 0.0: "no samples" must be distinguishable from a
        # recorded zero-latency sample.
        rec = LatencyRecorder()
        assert rec.min is None
        assert rec.max is None
        rec.record(0.0)
        assert rec.min == 0.0
        assert rec.max == 0.0

    def test_mean_and_extremes(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0, 3.0, 10.0])
        assert rec.mean == pytest.approx(4.0)
        assert rec.min == 1.0
        assert rec.max == 10.0

    def test_percentile_interpolation(self):
        rec = LatencyRecorder()
        rec.extend([0.0, 10.0])
        assert rec.percentile(50) == pytest.approx(5.0)
        assert rec.percentile(0) == 0.0
        assert rec.percentile(100) == 10.0

    def test_percentile_range_validated(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_p95_on_uniform_samples(self):
        rec = LatencyRecorder()
        rec.extend(float(i) for i in range(101))  # 0..100
        assert rec.p95() == pytest.approx(95.0)

    def test_cdf_steps(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 1.0, 2.0, 4.0])
        cdf = rec.cdf()
        assert cdf == [(1.0, 0.5), (2.0, 0.75), (4.0, 1.0)]

    def test_cdf_at_points(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0, 3.0, 4.0])
        cdf = rec.cdf(points=[0.0, 2.5, 10.0])
        assert cdf == [(0.0, 0.0), (2.5, 0.5), (10.0, 1.0)]

    def test_reset(self):
        rec = LatencyRecorder()
        rec.record(5.0)
        rec.reset()
        assert rec.count == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_percentiles_are_monotonic(self, samples):
        rec = LatencyRecorder()
        rec.extend(samples)
        values = [rec.percentile(p) for p in (0, 25, 50, 75, 95, 99, 100)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(min(samples))
        assert values[-1] == pytest.approx(max(samples))

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_cdf_is_monotonic_and_ends_at_one(self, samples):
        rec = LatencyRecorder()
        rec.extend(samples)
        cdf = rec.cdf()
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        values = [v for v, _ in cdf]
        assert values == sorted(values)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentile_within_sample_range(self, samples, pct):
        rec = LatencyRecorder()
        rec.extend(samples)
        value = rec.percentile(pct)
        assert min(samples) <= value <= max(samples)
