"""Unit and property tests for way-masked pseudo-LRU replacement."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.replacement import ReplacementError, WayMaskedPlru, mask_ways


class TestMaskWays:
    def test_full_mask(self):
        assert mask_ways(0xF, 4) == [0, 1, 2, 3]

    def test_partial_masks(self):
        assert mask_ways(0b1010, 4) == [1, 3]
        assert mask_ways(0xFF00, 16) == list(range(8, 16))

    def test_empty(self):
        assert mask_ways(0, 8) == []


class TestWayMaskedPlru:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            WayMaskedPlru(6)
        with pytest.raises(ValueError):
            WayMaskedPlru(0)

    def test_single_way(self):
        plru = WayMaskedPlru(1)
        assert plru.victim() == 0
        plru.touch(0)
        assert plru.victim() == 0

    def test_victim_avoids_recently_touched(self):
        plru = WayMaskedPlru(4)
        plru.touch(0)
        assert plru.victim() != 0
        plru.touch(plru.victim())
        # After touching two ways, the victim is one of the untouched ones.
        assert plru.victim() in (1, 2, 3)

    def test_round_robin_under_sequential_touches(self):
        plru = WayMaskedPlru(4)
        victims = []
        for _ in range(4):
            way = plru.victim()
            victims.append(way)
            plru.touch(way)
        # Touching every victim must cycle through all distinct ways.
        assert sorted(victims) == [0, 1, 2, 3]

    def test_victim_respects_mask(self):
        plru = WayMaskedPlru(16)
        for _ in range(50):
            way = plru.victim(0x00FF)
            assert way < 8
            plru.touch(way)

    def test_mask_with_single_way(self):
        plru = WayMaskedPlru(8)
        for _ in range(5):
            assert plru.victim(0b100) == 2
            plru.touch(2)

    def test_empty_mask_raises(self):
        with pytest.raises(ReplacementError):
            WayMaskedPlru(4).victim(0)

    def test_mask_wider_than_ways_is_truncated(self):
        plru = WayMaskedPlru(4)
        assert plru.victim(0xFFFF) in range(4)

    def test_touch_out_of_range(self):
        with pytest.raises(ValueError):
            WayMaskedPlru(4).touch(4)

    @given(
        st.integers(min_value=1, max_value=0xFFFF),
        st.lists(st.integers(min_value=0, max_value=15), max_size=64),
    )
    def test_property_victim_always_in_mask(self, mask, touches):
        """Whatever the access history, the victim is always an allowed way."""
        plru = WayMaskedPlru(16)
        for way in touches:
            plru.touch(way)
        assert mask & (1 << plru.victim(mask))

    @given(st.integers(min_value=1, max_value=0xF))
    def test_property_masked_victims_eventually_cover_mask(self, mask):
        """Touching each victim eventually visits every allowed way.

        Tree PLRU under an asymmetric mask is not strictly round-robin
        (a lone way in one subtree alternates against a pair in the
        other), but no allowed way may starve.
        """
        plru = WayMaskedPlru(4)
        allowed = mask_ways(mask, 4)
        victims = set()
        for _ in range(4 * len(allowed)):
            way = plru.victim(mask)
            victims.add(way)
            plru.touch(way)
        assert victims == set(allowed)
