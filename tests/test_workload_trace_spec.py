"""Tests for trace replay and the extended SPEC model set."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.workloads.spec import lbm, leslie3d, libquantum, mcf, omnetpp
from repro.workloads.trace import (
    TraceError,
    TraceReplay,
    parse_trace,
    parse_trace_line,
)


class TestTraceParsing:
    def test_parse_line_kinds(self):
        assert parse_trace_line("R 0x40") == ("R", 0x40)
        assert parse_trace_line("W 100") == ("W", 100)
        assert parse_trace_line("C 12") == ("C", 12)
        assert parse_trace_line("r 8") == ("R", 8)  # case-insensitive

    def test_comments_stripped(self):
        assert parse_trace_line("R 64  # hot line") == ("R", 64)

    def test_malformed_lines(self):
        for bad in ("", "R", "R x y", "X 5", "R banana", "R -5"):
            with pytest.raises(TraceError):
                parse_trace_line(bad)

    def test_parse_trace_skips_blanks_and_comments(self):
        text = """
        # header comment
        R 0x0

        C 10
        W 0x40
        """
        assert parse_trace(text.splitlines()) == [("R", 0), ("C", 10), ("W", 0x40)]


class TestTraceReplay:
    def test_replay_order(self):
        trace = TraceReplay([("R", 0), ("C", 5), ("W", 64)])
        ops = list(trace.ops())
        assert ops == [("loads", [0]), ("compute", 5), ("store", 64)]

    def test_mlp_batching(self):
        trace = TraceReplay([("R", 0), ("R", 64), ("R", 128)], mlp=2)
        ops = list(trace.ops())
        assert ops == [("loads", [0, 64]), ("loads", [128])]

    def test_store_flushes_pending_batch(self):
        trace = TraceReplay([("R", 0), ("W", 64)], mlp=4)
        ops = list(trace.ops())
        assert ops == [("loads", [0]), ("store", 64)]

    def test_repeat(self):
        trace = TraceReplay([("C", 1)], repeat=3)
        ops = list(trace.ops())
        assert len(ops) == 3
        assert trace.replays_completed == 3

    def test_infinite_repeat(self):
        trace = TraceReplay([("C", 1)], repeat=0)
        assert len(list(itertools.islice(trace.ops(), 10))) == 10

    def test_from_text(self):
        trace = TraceReplay.from_text("R 0\nC 7\n")
        assert list(trace.ops()) == [("loads", [0]), ("compute", 7)]

    def test_validation(self):
        with pytest.raises(TraceError):
            TraceReplay([])
        with pytest.raises(TraceError):
            TraceReplay([("Z", 1)])
        with pytest.raises(ValueError):
            TraceReplay([("C", 1)], mlp=0)

    @given(st.lists(
        st.tuples(st.sampled_from(["R", "W", "C"]), st.integers(min_value=0, max_value=1 << 20)),
        min_size=1, max_size=50,
    ))
    def test_property_replay_preserves_every_record(self, records):
        trace = TraceReplay(records)
        ops = list(trace.ops())
        loads = [a for op in ops if op[0] == "loads" for a in op[1]]
        stores = [op[1] for op in ops if op[0] == "store"]
        computes = [op[1] for op in ops if op[0] == "compute"]
        assert loads == [v for k, v in records if k == "R"]
        assert stores == [v for k, v in records if k == "W"]
        assert computes == [v for k, v in records if k == "C"]


class TestSpecModels:
    def test_all_factories_produce_distinct_profiles(self):
        models = [leslie3d(), lbm(), mcf(), libquantum(), omnetpp()]
        names = {m.name for m in models}
        assert len(names) == 5

    def test_mcf_is_serial_and_big(self):
        model = mcf()
        assert model.mlp == 1
        assert model.working_set_bytes > leslie3d().working_set_bytes

    def test_libquantum_streams(self):
        model = libquantum()
        assert model.locality < 0.1
        assert model.mlp >= 8

    def test_omnetpp_has_reuse(self):
        assert omnetpp().locality > 0.5

    def test_scaling(self):
        assert mcf(scale=0.5).working_set_bytes == mcf().working_set_bytes // 2
