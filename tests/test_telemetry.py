"""Tests for the unified telemetry layer.

Covers the metrics registry (typed instruments, get-or-create, hooks),
histogram bucket boundaries, span lifecycle under deterministic sampling,
exporter round-trips (JSONL, Chrome trace, Prometheus text), the
disabled-telemetry no-op paths, and the firmware's ``/sys/telemetry``
mirror on a live machine.
"""

import io
import json
import math

import pytest

from repro.prm.sysfs import SysfsError
from repro.system.server import PardServer
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanRecorder,
    Telemetry,
    chrome_trace_events,
    effective,
    metrics_rows,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("llc.ds1.misses")
        b = reg.counter("llc.ds1.misses")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(TypeError):
            reg.gauge("x.y")
        with pytest.raises(TypeError):
            reg.histogram("x.y")

    @pytest.mark.parametrize(
        "bad", ["", ".lead", "trail.", "a..b", "a/b", "a b", "a\tb"]
    )
    def test_bad_names_rejected(self, bad):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter(bad)

    def test_counter_is_monotonic(self):
        c = MetricsRegistry().counter("c")
        c.add()
        c.add(4)
        assert c.value() == 5
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_direct_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("direct")
        g.set(3.5)
        assert g.value() == 3.5
        backing = {"v": 7}
        fn = reg.gauge_fn("cb", lambda: backing["v"])
        assert fn.value() == 7
        backing["v"] = 9
        assert fn.value() == 9
        with pytest.raises(ValueError):
            fn.set(1.0)

    def test_gauge_fn_rebinding_repoints_callback(self):
        reg = MetricsRegistry()
        reg.gauge_fn("g", lambda: 1)
        g = reg.gauge_fn("g", lambda: 2)
        assert g.value() == 2
        assert len(reg) == 1

    def test_hooks_replay_and_fire_on_remove(self):
        reg = MetricsRegistry()
        reg.counter("before")
        registered, removed = [], []
        reg.on_register(lambda inst: registered.append(inst.name))
        reg.on_remove(lambda inst: removed.append(inst.name))
        assert registered == ["before"]  # existing instruments replayed
        reg.counter("after")
        assert registered == ["before", "after"]
        assert reg.remove("before")
        assert removed == ["before"]
        assert not reg.remove("before")  # already gone

    def test_find_respects_hierarchy(self):
        reg = MetricsRegistry()
        reg.counter("llc.ds1.misses")
        reg.counter("llc.ds2.misses")
        reg.counter("llcx.other")
        assert [i.name for i in reg.find("llc")] == [
            "llc.ds1.misses", "llc.ds2.misses",
        ]

    def test_snapshot_maps_names_to_values(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        reg.gauge("b").set(1.5)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["b"] == 1.5


class TestHistogram:
    def test_bucket_boundaries_are_log_spaced_and_inclusive(self):
        h = Histogram("h", start=1.0, growth=2.0, count=3)
        assert h.bounds == [1.0, 2.0, 4.0]
        # A value exactly on a bound lands in that bucket (le semantics).
        h.record(1.0)
        h.record(2.0)
        h.record(4.0)
        assert h.counts == [1, 1, 1, 0]
        h.record(1.5)   # (1, 2]
        h.record(100.0)  # overflow
        assert h.counts == [1, 2, 1, 1]

    def test_cumulative_buckets_prometheus_style(self):
        h = Histogram("h", start=1.0, growth=2.0, count=3)
        for v in (0.5, 1.5, 3.0, 99.0):
            h.record(v)
        assert h.buckets() == [(1.0, 1), (2.0, 2), (4.0, 3), (math.inf, 4)]

    def test_empty_histogram_min_max_are_none(self):
        h = Histogram("h")
        assert h.min is None
        assert h.max is None
        assert h.count == 0
        assert h.mean == 0.0

    def test_running_stats(self):
        h = Histogram("h", start=1.0, growth=2.0, count=4)
        for v in (1.0, 3.0, 8.0):
            h.record(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.mean == 4.0
        assert h.min == 1.0
        assert h.max == 8.0

    def test_quantile_upper_bound_approximation(self):
        h = Histogram("h", start=1.0, growth=2.0, count=4)
        for _ in range(99):
            h.record(1.0)
        h.record(7.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 8.0  # bucket upper bound containing max

    def test_bad_parameters_rejected(self):
        for kwargs in ({"start": 0}, {"growth": 1.0}, {"count": 0}):
            with pytest.raises(ValueError):
                Histogram("h", **kwargs)


class TestSpans:
    def test_sampling_is_counter_based_every_nth(self):
        rec = SpanRecorder(sample_every=3)
        results = [rec.maybe_start(1, i) for i in range(7)]
        picked = [r is not None for r in results]
        assert picked == [True, False, False, True, False, False, True]
        assert rec.seen == 7
        assert rec.started == 3

    def test_sample_every_one_records_everything(self):
        rec = SpanRecorder(sample_every=1)
        assert all(rec.maybe_start(0, i) is not None for i in range(5))

    def test_span_lifecycle_hops_and_durations(self):
        span = Span(ds_id=2, packet_id=7)
        span.hop("core0.issue", 1_000)
        span.hop("l1d0.miss", 1_500)
        span.hop("memctrl.complete", 9_000)
        assert span.start_ps == 1_000
        assert span.end_ps == 9_000
        assert span.duration_ps == 8_000
        assert span.hop_durations() == [
            ("core0.issue->l1d0.miss", 500),
            ("l1d0.miss->memctrl.complete", 7_500),
        ]

    def test_capacity_keeps_most_recent_and_counts_drops(self):
        rec = SpanRecorder(sample_every=1, capacity=2)
        for i in range(5):
            span = rec.maybe_start(0, i)
            span.hop("a", i)
            rec.finish(span)
        assert len(rec) == 2
        assert [s.packet_id for s in rec.finished] == [3, 4]
        assert rec.dropped == 3

    def test_per_dsid_query_and_hop_stats(self):
        rec = SpanRecorder(sample_every=1)
        for ds_id, delay in ((1, 100), (1, 300), (2, 50)):
            span = rec.maybe_start(ds_id, delay)
            span.hop("issue", 0)
            span.hop("done", delay)
            rec.finish(span)
        assert len(rec.for_dsid(1)) == 2
        stats = rec.hop_stats(ds_id=1)
        assert stats["issue->done"] == {
            "count": 2, "mean_ps": 200.0, "max_ps": 300,
        }


class TestExporters:
    def test_jsonl_round_trip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        buf = io.StringIO()
        assert write_jsonl(rows, buf) == 2
        assert read_jsonl(io.StringIO(buf.getvalue())) == rows

    def test_metrics_rows_flatten_snapshots(self):
        snaps = [{"t_ps": 5, "run": "r", "metrics": {"m1": 1, "m2": 2.5}}]
        rows = list(metrics_rows(snaps))
        assert rows == [
            {"t_ps": 5, "run": "r", "metric": "m1", "value": 1},
            {"t_ps": 5, "run": "r", "metric": "m2", "value": 2.5},
        ]

    def _span(self, ds_id=1, packet_id=3):
        span = Span(ds_id, packet_id)
        span.hop("issue", 2_000_000)
        span.hop("hit", 3_000_000)
        return span

    def test_chrome_trace_events_structure(self):
        events = chrome_trace_events([self._span()])
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["args"]["name"] == "ds1"
        parent = slices[0]
        assert parent["pid"] == 1 and parent["tid"] == 3
        assert parent["ts"] == 2.0 and parent["dur"] == 1.0  # ps -> us
        assert parent["args"]["hops_ps"] == [["issue", 2_000_000], ["hit", 3_000_000]]
        segment = slices[1]
        assert segment["name"] == "issue->hit"

    def test_single_hop_spans_are_skipped(self):
        span = Span(1, 1)
        span.hop("only", 10)
        assert chrome_trace_events([span]) == []

    def test_chrome_trace_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        n = write_chrome_trace([self._span()], path)
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == n
        assert doc["displayTimeUnit"] == "ns"

    def test_prometheus_text_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("prm.triggers-fired").add(2)
        reg.gauge("llc.ds1.miss_rate").set(0.25)
        h = reg.histogram("dram.qdelay", start=1.0, growth=2.0, count=2)
        h.record(1.5)
        text = prometheus_text(reg)
        assert "# TYPE prm_triggers_fired counter" in text
        assert "prm_triggers_fired 2" in text
        assert "llc_ds1_miss_rate 0.25" in text
        assert 'dram_qdelay_bucket{le="1.0"} 0' in text
        assert 'dram_qdelay_bucket{le="2.0"} 1' in text
        assert 'dram_qdelay_bucket{le="+Inf"} 1' in text
        assert "dram_qdelay_count 1" in text


class TestDisabledTelemetry:
    def test_effective_normalizes_disabled_to_none(self):
        assert effective(None) is None
        assert effective(Telemetry(enabled=False)) is None
        enabled = Telemetry()
        assert effective(enabled) is enabled

    def test_components_normalize_disabled_hub(self):
        disabled = Telemetry(enabled=False)
        server = PardServer(telemetry=disabled)
        assert server.telemetry is None
        assert server.llc.telemetry is None
        assert server.cores[0].telemetry is None
        assert server.firmware.telemetry is None
        assert len(disabled.registry) == 0
        assert not server.firmware.sysfs.exists("/sys/telemetry")

    def test_disabled_hub_records_nothing_during_a_run(self):
        disabled = Telemetry(enabled=False)
        server = PardServer(telemetry=disabled)
        server.start()
        server.run_ms(0.05)
        assert disabled.snapshots == []
        assert len(disabled.spans) == 0

    def test_periodic_snapshots_noop_when_disabled(self):
        hub = Telemetry(enabled=False)
        server = PardServer()
        hub.start_periodic_snapshots(server.engine)
        assert server.engine.pending_events == 0


class TestHub:
    def test_snapshots_carry_run_label_and_time(self):
        hub = Telemetry()
        hub.registry.counter("c").add(3)
        hub.begin_run("pointA")
        snap = hub.snapshot(2_000_000_000)
        assert snap["run"] == "pointA"
        assert snap["t_ms"] == 2.0
        assert snap["metrics"]["c"] == 3

    def test_export_metrics_jsonl(self, tmp_path):
        hub = Telemetry()
        hub.registry.gauge("g").set(1.0)
        hub.snapshot(0)
        hub.snapshot(1_000_000_000)
        path = str(tmp_path / "m.jsonl")
        assert hub.export_metrics_jsonl(path) == 2
        rows = read_jsonl(path)
        assert {r["t_ms"] for r in rows} == {0.0, 1.0}


@pytest.fixture(scope="module")
def telemetered_server():
    """A small machine run with every packet sampled."""
    hub = Telemetry(span_sample=1, snapshot_period_ms=0.05)
    server = PardServer(telemetry=hub)
    ldom = server.firmware.create_ldom("ld0", (0,), 64 << 20)
    from repro.workloads.stream import Stream

    server.start()
    server.firmware.launch_ldom("ld0", {0: Stream(array_bytes=1 << 20)})
    server.run_ms(0.2)
    return server, hub, ldom


class TestLiveMachine:
    def test_spans_cover_the_memory_path(self, telemetered_server):
        server, hub, ldom = telemetered_server
        spans = hub.spans.for_dsid(ldom.ds_id)
        assert spans, "sampled packets should finish spans"
        span = max(spans, key=lambda s: len(s.hops))
        names = [name for name, _ in span.hops]
        assert names[0] == "core0.issue"
        assert names[-1] == "core0.response"
        times = [t for _, t in span.hops]
        assert times == sorted(times), "hop timestamps must be monotonic"

    def test_periodic_snapshots_taken(self, telemetered_server):
        _server, hub, _ldom = telemetered_server
        assert len(hub.snapshots) >= 3
        # Callback gauges read live component counters at snapshot time.
        assert hub.snapshots[-1]["metrics"]["cache.llc.misses"] > 0

    def test_sysfs_mirror_serves_live_values(self, telemetered_server):
        server, hub, ldom = telemetered_server
        fw = server.firmware
        listing = fw.ls("/sys/telemetry")
        assert "export" in listing and "llc" in listing
        misses = float(fw.cat(f"/sys/telemetry/llc/ds{ldom.ds_id}/misses"))
        assert misses >= 0
        assert "# TYPE" in fw.cat("/sys/telemetry/export")

    def test_ldom_metrics_removed_on_destroy(self, telemetered_server):
        server, hub, ldom = telemetered_server
        prefix = f"llc.ds{ldom.ds_id}"
        assert hub.registry.find(prefix)
        server.firmware.destroy_ldom("ld0")
        assert not hub.registry.find(prefix)
        with pytest.raises(SysfsError):
            server.firmware.cat(f"/sys/telemetry/llc/ds{ldom.ds_id}/misses")
