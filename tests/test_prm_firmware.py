"""Unit and integration tests for the PRM firmware."""

import pytest

from tests.helpers import FakeMemory
from repro.cache.control_plane import LlcControlPlane
from repro.core.ldom import LDomState
from repro.core.triggers import TriggerOp
from repro.cpu.core import CpuCore
from repro.dram.control_plane import MemoryControlPlane
from repro.io.apic import Apic
from repro.io.disk import IdeControlPlane
from repro.prm.firmware import Firmware, FirmwareError, HardwareInventory
from repro.prm.rules import (
    chain_actions,
    increase_waymask_action,
    log_action,
    raise_priority_action,
    set_parameter_action,
    update_mask,
)
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine, PS_PER_MS


def make_firmware(num_cores=4, with_apic=True):
    engine = Engine()
    clock = ClockDomain(engine, CPU_CLOCK_PS)
    memory = FakeMemory(engine)
    cores = [CpuCore(engine, clock, i, memory) for i in range(num_cores)]
    apic = Apic(engine) if with_apic else None
    if apic:
        for core in cores:
            apic.register_core(core.core_id, lambda pkt, c=core: c.wake())
    planes = [
        LlcControlPlane(engine),
        MemoryControlPlane(engine),
        IdeControlPlane(engine),
    ]
    inventory = HardwareInventory(
        control_planes=planes, cores=cores, apic=apic,
        memory_capacity_bytes=1 << 30,
    )
    firmware = Firmware(engine, inventory)
    return engine, firmware, planes, cores, apic


class TestSysfsLayout:
    def test_cpa_nodes_mounted(self):
        _, firmware, _, _, _ = make_firmware()
        assert firmware.ls("/sys/cpa") == ["cpa0", "cpa1", "cpa2"]
        assert firmware.cat("/sys/cpa/cpa0/ident") == "CACHE_CP"
        assert firmware.cat("/sys/cpa/cpa1/ident") == "MEMORY_CP"
        assert "'C'" in firmware.cat("/sys/cpa/cpa0/type")

    def test_ldom_subtree_created(self):
        _, firmware, _, _, _ = make_firmware()
        firmware.create_ldom("web", core_ids=(0,), memory_bytes=1 << 20)
        base = "/sys/cpa/cpa0/ldoms/ldom1"
        assert firmware.ls(f"{base}") == ["parameters", "statistics", "triggers"]
        assert "waymask" in firmware.ls(f"{base}/parameters")
        assert "miss_rate" in firmware.ls(f"{base}/statistics")


class TestLDomLifecycle:
    def test_create_programs_all_planes(self):
        _, firmware, (cache, mem, ide), cores, _ = make_firmware()
        ldom = firmware.create_ldom(
            "web", core_ids=(0, 1), memory_bytes=1 << 20,
            priority=1, disk_share=80, waymask=0xFF00,
        )
        assert ldom.ds_id == 1
        assert cache.parameters.get(1, "waymask") == 0xFF00
        assert mem.parameters.get(1, "addr_base") == 0
        assert mem.parameters.get(1, "addr_size") == 1 << 20
        assert mem.parameters.get(1, "priority") == 1
        assert ide.parameters.get(1, "bandwidth") == 80
        assert cores[0].tag.ds_id == 1
        assert cores[1].tag.ds_id == 1

    def test_memory_windows_do_not_overlap(self):
        _, firmware, (_, mem, _), _, _ = make_firmware()
        a = firmware.create_ldom("a", (0,), 1 << 20)
        b = firmware.create_ldom("b", (1,), 1 << 20)
        assert mem.translate(a.ds_id, 0) != mem.translate(b.ds_id, 0)
        assert mem.mapping(a.ds_id).overlaps(mem.mapping(b.ds_id)) is False

    def test_apic_routes_programmed(self):
        _, firmware, _, _, apic = make_firmware()
        ldom = firmware.create_ldom("a", (2,), 1 << 20)
        assert apic.route_of(ldom.ds_id, 14) == 2

    def test_out_of_memory(self):
        _, firmware, _, _, _ = make_firmware()
        with pytest.raises(FirmwareError):
            firmware.create_ldom("big", (0,), 2 << 30)

    def test_core_double_assignment_rejected(self):
        _, firmware, _, _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        with pytest.raises(FirmwareError):
            firmware.create_ldom("b", (0,), 1 << 20)

    def test_duplicate_name_rejected(self):
        _, firmware, _, _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        with pytest.raises(FirmwareError):
            firmware.create_ldom("a", (1,), 1 << 20)

    def test_launch_runs_workloads(self):
        engine, firmware, _, cores, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)

        class Tiny:
            def bind(self, core): pass
            def ops(self):
                yield ("compute", 100)

        ldom = firmware.launch_ldom("a", {0: Tiny()})
        assert ldom.state is LDomState.RUNNING
        engine.run()
        assert cores[0].busy_ps == 100 * CPU_CLOCK_PS

    def test_launch_on_foreign_core_rejected(self):
        _, firmware, _, _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        with pytest.raises(FirmwareError):
            firmware.launch_ldom("a", {3: object()})

    def test_destroy_cleans_up(self):
        _, firmware, (cache, mem, ide), cores, apic = make_firmware()
        ldom = firmware.create_ldom("a", (0,), 1 << 20)
        firmware.destroy_ldom("a")
        assert not cache.parameters.has(ldom.ds_id)
        assert cores[0].tag.ds_id == 0
        assert apic.route_of(ldom.ds_id, 14) is None
        assert not firmware.sysfs.exists("/sys/cpa/cpa0/ldoms/ldom1")
        assert firmware.ldom_by_dsid(ldom.ds_id) is None


class TestShell:
    def test_echo_waymask_like_fig7(self):
        _, firmware, (cache, _, _), _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        firmware.sh("echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
        assert cache.parameters.get(1, "waymask") == 0xFF00

    def test_cat_parameter(self):
        _, firmware, _, _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        out = firmware.sh("cat /sys/cpa/cpa1/ldoms/ldom1/parameters/addr_size")
        assert int(out) == 1 << 20

    def test_ls(self):
        _, firmware, _, _, _ = make_firmware()
        out = firmware.sh("ls /sys/cpa")
        assert out.splitlines() == ["cpa0", "cpa1", "cpa2"]

    def test_pardtrigger_installs_rule(self):
        # Example 1 of Fig. 6.
        _, firmware, (cache, _, _), _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        firmware.sh(
            "pardtrigger /dev/cpa0 -ldom=1 -action=0 -stats=miss_rate -cond=gt,30"
        )
        rule = cache.triggers.rule_at(1, 0)
        assert rule is not None
        assert rule.op is TriggerOp.GT
        assert rule.threshold == 3000  # 30% in basis points

    def test_unknown_command(self):
        _, firmware, _, _, _ = make_firmware()
        with pytest.raises(FirmwareError):
            firmware.sh("rm -rf /")

    def test_bad_number(self):
        _, firmware, _, _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        with pytest.raises(FirmwareError):
            firmware.sh("echo banana > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")


class TestTriggerActionPath:
    def test_end_to_end_trigger_reaction(self):
        """The paper's Fig. 9 mechanism: miss rate > 30% => bigger waymask."""
        engine, firmware, (cache, _, _), _, _ = make_firmware()
        firmware.create_ldom("mc", (0,), 1 << 20, waymask=0x000F)
        firmware.register_script("/cpa0_ldom1_t0.sh", increase_waymask_action(num_ways=16))
        firmware.install_trigger(
            "cpa0", 1, "miss_rate", "gt,30", action_id=0,
            script_path="/cpa0_ldom1_t0.sh",
        )
        # Simulate a hot window: many misses for DS-id 1.
        for _ in range(70):
            cache.record_access(1, hit=False)
        for _ in range(30):
            cache.record_access(1, hit=True)
        cache.roll_window()
        # The script runs only after the firmware reaction latency.
        assert cache.parameters.get(1, "waymask") == 0x000F
        engine.run()
        new_mask = cache.parameters.get(1, "waymask")
        assert bin(new_mask).count("1") > 4
        assert firmware.trigger_log

    def test_trigger_without_binding_only_logs(self):
        engine, firmware, (cache, _, _), _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        firmware.install_trigger("cpa0", 1, "miss_rate", "gt,0", action_id=0)
        cache.record_access(1, hit=False)
        cache.roll_window()
        engine.run()
        assert len(firmware.trigger_log) == 1

    def test_binding_unregistered_script_rejected(self):
        _, firmware, _, _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        firmware.install_trigger("cpa0", 1, "miss_rate", "gt,30")
        with pytest.raises(FirmwareError):
            firmware.sh("echo /nope.sh > /sys/cpa/cpa0/ldoms/ldom1/triggers/0")

    def test_chained_log_and_react(self):
        engine, firmware, (cache, _, _), _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20, waymask=0x0003)
        script = chain_actions(log_action(), increase_waymask_action(16))
        firmware.register_script("/t.sh", script)
        firmware.install_trigger("cpa0", 1, "miss_rate", "gt,10", script_path="/t.sh")
        for _ in range(10):
            cache.record_access(1, hit=False)
        cache.roll_window()
        engine.run()
        assert "trigger" in firmware.cat("/log/triggers.log")

    def test_priority_action(self):
        engine, firmware, (_, mem, _), _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20, priority=0)
        firmware.register_script("/p.sh", raise_priority_action(1))
        firmware.install_trigger("cpa1", 1, "avg_qlat", "gt,10", script_path="/p.sh")
        mem.record_service(1, 64, queue_delay_cycles=50.0, total_cycles=60.0)
        mem.roll_window()
        engine.run()
        assert mem.parameters.get(1, "priority") == 1

    def test_set_parameter_action(self):
        engine, firmware, (_, _, ide), _, _ = make_firmware()
        firmware.create_ldom("a", (0,), 1 << 20)
        firmware.register_script("/s.sh", set_parameter_action("bandwidth", 80))
        firmware.install_trigger("cpa2", 1, "bandwidth", "ge,0", script_path="/s.sh")
        ide.roll_window()
        engine.run()
        assert ide.parameters.get(1, "bandwidth") == 80


class TestUpdateMaskPolicy:
    def test_grows_toward_cap(self):
        mask = update_mask(0x0003, 5000, 16, 0.5)
        assert bin(mask).count("1") == 4
        mask = update_mask(mask, 5000, 16, 0.5)
        assert bin(mask).count("1") == 8

    def test_capped_at_max_share(self):
        mask = update_mask(0xFF00, 5000, 16, 0.5)
        assert mask == 0xFF00  # already at 50%

    def test_mask_anchored_high(self):
        mask = update_mask(0x0001, 5000, 16, 0.5)
        assert mask & (1 << 15)

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            update_mask(1, 0, 16, 0)
