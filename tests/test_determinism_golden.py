"""Golden determinism tests.

Two guarantees the whole experimental methodology rests on:

1. **Run-to-run determinism** -- the full-system memcached+STREAM
   colocation, run twice from the same seed, produces bit-identical
   statistics (request counts, per-sample latency lists, cache and DRAM
   counters, core busy time). Without this, no paper figure is
   reproducible.

2. **Queue-implementation equivalence** -- the bucketed calendar queue
   and the heapq reference dispatch events in byte-identical order, so
   the *same digest* must come out of the full system regardless of
   which queue implementation runs it.

3. **Sweep-parallelism equivalence** -- an experiment grid fanned out
   over a process pool (``jobs=N``) merges to byte-identical results
   and telemetry as the exact serial path (``jobs=1``). Without this,
   ``--jobs`` would silently change the figures it accelerates.
"""

import hashlib

import pytest

from repro.sim.engine import ENGINE_KINDS
from repro.sim.rng import DeterministicRng
from repro.system.config import TABLE2
from repro.system.experiments import ColocationSetup, fig8_sweep_points, run_fig8
from repro.system.server import PardServer
from repro.telemetry import Telemetry
from repro.workloads.memcached import MemcachedServer
from repro.workloads.stream import Stream


def run_colocation(engine_kind: str, seed: int = 7) -> str:
    """Run a small memcached+STREAM colocation; return its stats digest."""
    server = PardServer(TABLE2.scaled(16), engine_kind=engine_kind)
    fw = server.firmware
    fw.create_ldom("mc", (0,), 1 << 20)
    mc = MemcachedServer(
        server.engine, rps=150_000, working_set_bytes=64 << 10,
        loads_per_request=20, warmup_ps=0,
        rng=DeterministicRng(seed, name="mc"),
    )
    server.start()
    fw.launch_ldom("mc", {0: mc})
    for i in (1, 2):
        fw.create_ldom(f"st{i}", (i,), 1 << 20)
        fw.launch_ldom(f"st{i}", {i: Stream(array_bytes=128 << 10)})
    server.run_ms(1.0)

    state = (
        server.engine.now,
        server.engine.executed_total,
        mc.requests_arrived,
        mc.requests_served,
        mc.requests_dropped,
        tuple(mc.latencies.samples),
        server.llc.total_hits,
        server.llc.total_misses,
        server.memory_controller.served_requests,
        server.memory_controller.served_bytes,
        tuple(
            tuple(recorder.samples)
            for recorder in server.memory_controller.queue_delay
        ),
        tuple((core.busy_ps, core.memory_accesses) for core in server.cores),
        tuple(
            server.llc.occupancy_blocks(ds_id) for ds_id in range(4)
        ),
    )
    return hashlib.sha256(repr(state).encode()).hexdigest()


@pytest.mark.slow
@pytest.mark.parametrize("engine_kind", sorted(ENGINE_KINDS))
def test_same_seed_same_digest(engine_kind):
    """The colocation scenario is bit-deterministic under each queue."""
    assert run_colocation(engine_kind) == run_colocation(engine_kind)


@pytest.mark.slow
def test_queue_implementations_agree_on_full_system():
    """heapq and calendar queues drive the machine to the same state."""
    digests = {kind: run_colocation(kind) for kind in sorted(ENGINE_KINDS)}
    assert digests["calendar"] == digests["heapq"]


def test_queue_implementations_agree_on_randomized_schedule():
    """Byte-identical event orderings on a randomized schedule: every
    (timestamp, label) pair matches between the two queues."""
    rng_seed = 2015

    def ordering(kind: str):
        from repro.sim.engine import make_engine

        engine = make_engine(kind)
        rng = DeterministicRng(rng_seed, name="golden-schedule")
        trace = []
        for label in range(2_000):
            delay = rng.choice((0, 250, 500, 1250, rng.randint(1, 100_000)))
            engine.post(0, lambda: None)  # noise: same-instant filler
            engine.schedule(delay, lambda label=label: trace.append((engine.now, label)))
        engine.run()
        return trace

    assert ordering("calendar") == ordering("heapq")


# -- sweep-parallelism equivalence ------------------------------------------

TINY = ColocationSetup(
    scale=32, mc_working_set_bytes=56 << 10, mc_loads_per_request=60,
    stream_array_bytes=256 << 10, warmup_ms=0.5,
)


def fig8_digest(jobs: int, modes, loads, measure_ms: float) -> str:
    """Digest of a fig8 grid's results plus its merged telemetry."""
    hub = Telemetry(span_sample=1, snapshot_period_ms=0.25)
    results = run_fig8(
        loads_rps=list(loads), modes=modes, setup=TINY,
        measure_ms=measure_ms, telemetry=hub, jobs=jobs,
    )
    state = (
        repr(results),
        repr(hub.registry.dump()),
        repr(hub.spans.dump()),
        repr(hub.snapshots),
    )
    return hashlib.sha256(repr(state).encode()).hexdigest()


def test_parallel_sweep_matches_serial():
    """jobs=2 merges to the same bytes as the exact serial fallback."""
    kwargs = dict(modes=("solo",), loads=(150_000, 250_000), measure_ms=0.5)
    assert fig8_digest(1, **kwargs) == fig8_digest(2, **kwargs)


@pytest.mark.slow
def test_parallel_sweep_matches_serial_full_grid():
    """The full tiny grid (3 modes x 2 loads) at jobs=4, incl. telemetry."""
    kwargs = dict(
        modes=("solo", "shared", "trigger"), loads=(150_000, 250_000),
        measure_ms=0.5,
    )
    assert fig8_digest(1, **kwargs) == fig8_digest(4, **kwargs)


def test_fig8_sweep_points_specs_are_stable():
    """Point specs carry everything: indexes dense, seeds explicit."""
    points = fig8_sweep_points(
        loads_rps=[150_000, 250_000], modes=("solo", "shared"), setup=TINY,
        measure_ms=0.5, first_index=10,
    )
    assert [p.index for p in points] == [10, 11, 12, 13]
    assert all(p.seed == TINY.seed for p in points)
    assert points[0].params["setup"]["scale"] == 32
