"""Unit tests for the CPA register programming protocol."""

import pytest
from hypothesis import given, strategies as st

from repro.core.programming import (
    CMD_READ,
    CMD_WRITE,
    CpaRegisterFile,
    ProtocolError,
    REG_ADDR,
    REG_CMD,
    REG_DATA,
    REG_IDENT,
    REG_IDENT_HIGH,
    REG_TYPE,
    TABLE_PARAMETER,
    TABLE_STATISTICS,
    TABLE_TRIGGER,
    pack_addr,
    unpack_addr,
)


class TestAddrPacking:
    def test_layout_matches_figure6(self):
        # addr = [31:16] DS-id | [15:2] offset | [1:0] table
        addr = pack_addr(ds_id=0x1234, offset=0x5, table=TABLE_TRIGGER)
        assert addr == (0x1234 << 16) | (0x5 << 2) | 2

    def test_roundtrip(self):
        addr = pack_addr(42, 17, TABLE_STATISTICS)
        assert unpack_addr(addr) == (42, 17, TABLE_STATISTICS)

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0x3FFF),
        st.integers(min_value=0, max_value=3),
    )
    def test_property_roundtrip(self, ds_id, offset, table):
        assert unpack_addr(pack_addr(ds_id, offset, table)) == (ds_id, offset, table)

    def test_field_overflow_rejected(self):
        with pytest.raises(ProtocolError):
            pack_addr(0x1_0000, 0, 0)
        with pytest.raises(ProtocolError):
            pack_addr(0, 0x4000, 0)
        with pytest.raises(ProtocolError):
            pack_addr(0, 0, 4)

    def test_unpack_rejects_wide_values(self):
        with pytest.raises(ProtocolError):
            unpack_addr(1 << 32)


def make_register_file():
    """A register file backed by an in-memory fake table set."""
    cells = {}

    def reader(table, ds_id, offset):
        return cells.get((table, ds_id, offset), 0)

    def writer(table, ds_id, offset, value):
        cells[(table, ds_id, offset)] = value

    return CpaRegisterFile("CACHE_CP", "C", reader, writer), cells


class TestCpaRegisterFile:
    def test_write_then_read_cell(self):
        rf, cells = make_register_file()
        rf.write_cell(ds_id=1, offset=0, table=TABLE_PARAMETER, value=0xFF00)
        assert cells[(TABLE_PARAMETER, 1, 0)] == 0xFF00
        assert rf.read_cell(1, 0, TABLE_PARAMETER) == 0xFF00

    def test_issue_requires_addr_setup(self):
        rf, cells = make_register_file()
        rf.write_addr(3, 2, TABLE_STATISTICS)
        rf.data = 99
        rf.issue(CMD_WRITE)
        assert cells[(TABLE_STATISTICS, 3, 2)] == 99

    def test_read_loads_data_register(self):
        rf, cells = make_register_file()
        cells[(TABLE_TRIGGER, 2, 1)] = 1234
        rf.write_addr(2, 1, TABLE_TRIGGER)
        rf.issue(CMD_READ)
        assert rf.data == 1234

    def test_unknown_command_rejected(self):
        rf, _ = make_register_file()
        with pytest.raises(ProtocolError):
            rf.issue(7)

    def test_data_register_is_64_bit(self):
        rf, cells = make_register_file()
        rf.write_cell(0, 0, TABLE_PARAMETER, (1 << 64) + 5)
        assert cells[(TABLE_PARAMETER, 0, 0)] == 5

    def test_ident_too_long_rejected(self):
        with pytest.raises(ProtocolError):
            CpaRegisterFile("X" * 13, "C", lambda *a: 0, lambda *a: None)

    def test_type_code_single_char(self):
        with pytest.raises(ProtocolError):
            CpaRegisterFile("OK", "CC", lambda *a: 0, lambda *a: None)


class TestMmioAccess:
    def test_ident_registers_encode_string(self):
        rf, _ = make_register_file()
        low = rf.mmio_read(REG_IDENT).to_bytes(8, "little").rstrip(b"\0")
        high = rf.mmio_read(REG_IDENT_HIGH).to_bytes(4, "little").rstrip(b"\0")
        assert (low + high).decode() == "CACHE_CP"

    def test_type_register(self):
        rf, _ = make_register_file()
        assert rf.mmio_read(REG_TYPE) == ord("C")

    def test_mmio_write_cmd_performs_access(self):
        rf, cells = make_register_file()
        rf.mmio_write(REG_ADDR, pack_addr(1, 0, TABLE_PARAMETER))
        rf.mmio_write(REG_DATA, 0xABCD)
        rf.mmio_write(REG_CMD, CMD_WRITE)
        assert cells[(TABLE_PARAMETER, 1, 0)] == 0xABCD

    def test_mmio_read_after_read_cmd(self):
        rf, cells = make_register_file()
        cells[(TABLE_PARAMETER, 5, 1)] = 321
        rf.mmio_write(REG_ADDR, pack_addr(5, 1, TABLE_PARAMETER))
        rf.mmio_write(REG_CMD, CMD_READ)
        assert rf.mmio_read(REG_DATA) == 321

    def test_ident_read_only(self):
        rf, _ = make_register_file()
        with pytest.raises(ProtocolError):
            rf.mmio_write(REG_IDENT, 1)
        with pytest.raises(ProtocolError):
            rf.mmio_write(REG_TYPE, 1)

    def test_invalid_register_offsets(self):
        rf, _ = make_register_file()
        with pytest.raises(ProtocolError):
            rf.mmio_read(4)
        with pytest.raises(ProtocolError):
            rf.mmio_write(30, 0)

    def test_addr_register_width_checked(self):
        rf, _ = make_register_file()
        with pytest.raises(ProtocolError):
            rf.mmio_write(REG_ADDR, 1 << 32)

    def test_cmd_register_reads_last_cmd(self):
        rf, _ = make_register_file()
        assert rf.mmio_read(REG_CMD) == 0
        rf.write_cell(0, 0, TABLE_PARAMETER, 1)
        assert rf.mmio_read(REG_CMD) == CMD_WRITE
