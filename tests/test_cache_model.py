"""Unit tests for the set-associative cache model."""

import pytest

from tests.helpers import FakeMemory
from repro.cache.cache import Cache, CacheConfig
from repro.cache.control_plane import LlcControlPlane
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemOp, MemoryPacket


def make_cache(engine=None, size=8192, ways=4, line=64, hit_lat=2, control=None, mem_lat=50_000):
    engine = engine or Engine()
    clock = ClockDomain(engine, CPU_CLOCK_PS)
    memory = FakeMemory(engine, latency_ps=mem_lat)
    config = CacheConfig(
        name="l2", size_bytes=size, ways=ways, line_size=line, hit_latency_cycles=hit_lat
    )
    cache = Cache(engine, clock, config, memory, control=control)
    return engine, cache, memory


def access(engine, cache, addr, ds_id=0, op=MemOp.READ):
    """Issue one access and run to completion; returns (latency_ps, packet)."""
    done = []
    start = engine.now
    pkt = MemoryPacket(ds_id=ds_id, addr=addr, op=op, birth_ps=start)
    cache.handle_request(pkt, lambda p: done.append(engine.now - start))
    engine.run()
    assert done, "access never completed"
    return done[0], pkt


class TestGeometry:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=100, ways=4, line_size=64)
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=0, ways=4)
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=12 * 64 * 4, ways=12)  # non-pow2 ways

    def test_table2_llc_geometry(self):
        # 4MB 16-way with 64B lines -> 4096 sets.
        config = CacheConfig("llc", size_bytes=4 * 1024 * 1024, ways=16)
        assert config.num_sets == 4096

    def test_table2_l1_geometry(self):
        # 64KB 2-way -> 512 sets.
        config = CacheConfig("l1", size_bytes=64 * 1024, ways=2)
        assert config.num_sets == 512


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        engine, cache, memory = make_cache()
        miss_lat, _ = access(engine, cache, 0x1000)
        hit_lat, _ = access(engine, cache, 0x1000)
        assert cache.total_misses == 1
        assert cache.total_hits == 1
        assert miss_lat > hit_lat
        assert len(memory.requests) == 1

    def test_hit_latency_is_configured_cycles(self):
        engine, cache, _ = make_cache(hit_lat=20)
        access(engine, cache, 0x40)
        hit_lat, _ = access(engine, cache, 0x40)
        assert hit_lat == 20 * CPU_CLOCK_PS

    def test_same_line_different_offset_hits(self):
        engine, cache, memory = make_cache()
        access(engine, cache, 0x1000)
        access(engine, cache, 0x1030)  # same 64B line
        assert cache.total_hits == 1
        assert len(memory.requests) == 1

    def test_dsid_mismatch_is_a_miss(self):
        # PARD Fig. 4: a hit requires both tag match and owner-DS-id match.
        engine, cache, memory = make_cache()
        access(engine, cache, 0x1000, ds_id=1)
        access(engine, cache, 0x1000, ds_id=2)
        assert cache.total_misses == 2
        assert len(memory.requests) == 2

    def test_write_allocates_and_marks_dirty(self):
        engine, cache, memory = make_cache()
        access(engine, cache, 0x1000, op=MemOp.WRITE)
        assert cache.total_misses == 1
        # Evict the line by filling the set; a writeback must be issued.
        config = cache.config
        set_stride = config.num_sets * config.line_size
        for i in range(1, config.ways + 1):
            access(engine, cache, 0x1000 + i * set_stride)
        writebacks = memory.requests_of(op=MemOp.WRITEBACK)
        assert len(writebacks) == 1
        assert writebacks[0].addr == 0x1000

    def test_clean_eviction_has_no_writeback(self):
        engine, cache, memory = make_cache()
        config = cache.config
        set_stride = config.num_sets * config.line_size
        for i in range(config.ways + 2):
            access(engine, cache, i * set_stride)
        assert memory.requests_of(op=MemOp.WRITEBACK) == []

    def test_capacity_evictions_cycle_the_set(self):
        engine, cache, memory = make_cache(ways=2)
        stride = cache.config.num_sets * cache.config.line_size
        for i in range(4):
            access(engine, cache, i * stride)
        # Re-access the first line: must have been evicted (2-way set).
        access(engine, cache, 0)
        assert cache.total_misses == 5


class TestWritebackDsid:
    def test_writeback_carries_owner_dsid(self):
        # The block is dirtied by DS-id 2; DS-id 1 later causes the
        # eviction. The DRAM-bound writeback must be charged to DS-id 2.
        engine, cache, memory = make_cache(ways=2)
        stride = cache.config.num_sets * cache.config.line_size
        access(engine, cache, 0x0, ds_id=2, op=MemOp.WRITE)
        access(engine, cache, stride, ds_id=1)
        access(engine, cache, 2 * stride, ds_id=1)
        access(engine, cache, 3 * stride, ds_id=1)
        writebacks = memory.requests_of(op=MemOp.WRITEBACK)
        assert len(writebacks) == 1
        assert writebacks[0].owner_ds_id == 2
        assert writebacks[0].effective_ds_id == 2


class TestMshrBehaviour:
    def test_concurrent_misses_to_same_line_merge(self):
        engine, cache, memory = make_cache()
        done = []
        for _ in range(3):
            pkt = MemoryPacket(ds_id=1, addr=0x2000)
            cache.handle_request(pkt, lambda p: done.append(engine.now))
        engine.run()
        assert len(done) == 3
        assert len(memory.requests) == 1  # one fill serves all three

    def test_mshr_full_retries_and_completes(self):
        engine, cache, memory = make_cache()
        cache.mshrs.num_entries = 1
        done = []
        for i in range(3):
            pkt = MemoryPacket(ds_id=1, addr=0x1000 * (i + 1))
            cache.handle_request(pkt, lambda p: done.append(p.addr))
        engine.run()
        assert len(done) == 3
        assert len(memory.requests) == 3


class TestOccupancyAccounting:
    def make_llc(self):
        engine = Engine()
        control = LlcControlPlane(engine, num_ways=4)
        control.allocate_ldom(1)
        control.allocate_ldom(2)
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine)
        config = CacheConfig("llc", size_bytes=4 * 4 * 64, ways=4)  # 4 sets
        cache = Cache(engine, clock, config, memory, control=control)
        return engine, cache, control

    def test_fill_and_eviction_tracked(self):
        engine, cache, control = self.make_llc()
        for i in range(4):
            access(engine, cache, i * 4 * 64, ds_id=1)  # 4 lines, one set
        assert control.occupancy_bytes(1) == 4 * 64
        # DS-id 2 steals one way.
        access(engine, cache, 0x10000, ds_id=2)
        assert control.occupancy_bytes(2) == 64
        assert control.occupancy_bytes(1) == 3 * 64

    def test_occupancy_matches_tag_array_scan(self):
        engine, cache, control = self.make_llc()
        for i in range(10):
            access(engine, cache, i * 64, ds_id=1)
        for i in range(5):
            access(engine, cache, i * 64, ds_id=2)
        assert control.occupancy_bytes(1) == cache.occupancy_blocks(1) * 64
        assert control.occupancy_bytes(2) == cache.occupancy_blocks(2) * 64


class TestWayPartitioning:
    def make_partitioned(self):
        engine = Engine()
        control = LlcControlPlane(engine, num_ways=4)
        control.allocate_ldom(1, waymask=0b0011)
        control.allocate_ldom(2, waymask=0b1100)
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine)
        config = CacheConfig("llc", size_bytes=1 * 4 * 64, ways=4)  # 1 set
        cache = Cache(engine, clock, config, memory, control=control)
        return engine, cache, control

    def test_partition_prevents_cross_eviction(self):
        engine, cache, control = self.make_partitioned()
        # DS-id 1 fills its 2 ways.
        access(engine, cache, 0, ds_id=1)
        access(engine, cache, 64 * 1, ds_id=1)  # one set: stride = 64
        # DS-id 2 streams many lines; confined to its own 2 ways.
        for i in range(10):
            access(engine, cache, (i + 8) * 64, ds_id=2)
        # DS-id 1's lines must still be resident: re-access hits.
        hits_before = cache.total_hits
        access(engine, cache, 0, ds_id=1)
        access(engine, cache, 64, ds_id=1)
        assert cache.total_hits == hits_before + 2
        assert cache.occupancy_blocks(2) <= 2

    def test_unpartitioned_sharing_allows_theft(self):
        engine = Engine()
        control = LlcControlPlane(engine, num_ways=4)
        control.allocate_ldom(1)
        control.allocate_ldom(2)
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine)
        config = CacheConfig("llc", size_bytes=1 * 4 * 64, ways=4)
        cache = Cache(engine, clock, config, memory, control=control)
        access(engine, cache, 0, ds_id=1)
        for i in range(8):
            access(engine, cache, (i + 8) * 64, ds_id=2)
        hits_before = cache.total_hits
        access(engine, cache, 0, ds_id=1)  # evicted by ds2's stream
        assert cache.total_hits == hits_before

    def test_mask_reprogram_takes_effect_on_new_fills(self):
        engine, cache, control = self.make_partitioned()
        control.parameters.set(2, "waymask", 0b1111)  # give ds2 everything
        for i in range(10):
            access(engine, cache, (i + 8) * 64, ds_id=2)
        assert cache.occupancy_blocks(2) == 4


class TestControlPlaneBinding:
    def test_way_count_mismatch_rejected(self):
        engine = Engine()
        control = LlcControlPlane(engine, num_ways=16)
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine)
        config = CacheConfig("llc", size_bytes=4 * 4 * 64, ways=4)
        with pytest.raises(ValueError):
            Cache(engine, clock, config, memory, control=control)

    def test_miss_rate_published_per_window(self):
        engine = Engine()
        control = LlcControlPlane(engine, num_ways=4)
        control.allocate_ldom(1)
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine)
        config = CacheConfig("llc", size_bytes=4 * 4 * 64, ways=4)
        cache = Cache(engine, clock, config, memory, control=control)
        access(engine, cache, 0, ds_id=1)      # miss
        access(engine, cache, 0, ds_id=1)      # hit
        access(engine, cache, 64, ds_id=1)     # miss
        access(engine, cache, 64, ds_id=1)     # hit
        control.roll_window()
        assert control.statistics.get(1, "miss_rate") == 5000  # 50% in bp
        assert control.statistics.get(1, "hit_cnt") == 2
        assert control.statistics.get(1, "miss_cnt") == 2
        assert control.last_window_miss_rate(1) == pytest.approx(0.5)

    def test_idle_window_keeps_previous_rate(self):
        engine = Engine()
        control = LlcControlPlane(engine, num_ways=4)
        control.allocate_ldom(1)
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        config = CacheConfig("llc", size_bytes=4 * 4 * 64, ways=4)
        cache = Cache(engine, clock, config, FakeMemory(engine), control=control)
        access(engine, cache, 0, ds_id=1)
        control.roll_window()
        first = control.statistics.get(1, "miss_rate")
        control.roll_window()  # no accesses this window
        assert control.statistics.get(1, "miss_rate") == first
