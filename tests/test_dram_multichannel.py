"""Tests for the multi-channel memory router."""

import pytest

from repro.dram.control_plane import MemoryControlPlane
from repro.dram.multichannel import MultiChannelMemory
from repro.sim.clock import ClockDomain, DRAM_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemoryPacket


def make(channels=4, control=False, interleave=1024):
    engine = Engine()
    clock = ClockDomain(engine, DRAM_CLOCK_PS)
    plane = None
    if control:
        plane = MemoryControlPlane(engine)
        plane.allocate_ldom(1, addr_base=0, addr_size=8 << 20, priority=1)
    memory = MultiChannelMemory(
        engine, clock, channels=channels, control=plane, interleave_bytes=interleave
    )
    return engine, memory, plane


class TestRouting:
    def test_interleave_round_robins_rows(self):
        _, memory, _ = make(channels=4, interleave=1024)
        assert [memory.channel_of(i * 1024) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_row_same_channel(self):
        _, memory, _ = make()
        assert memory.channel_of(0) == memory.channel_of(1023)

    def test_requests_distribute_across_channels(self):
        engine, memory, _ = make(channels=4)
        done = []
        for i in range(64):
            memory.handle_request(MemoryPacket(addr=i * 1024), done.append)
        engine.run()
        assert len(done) == 64
        loads = memory.channel_loads()
        assert all(load == 16 for load in loads)
        assert memory.served_requests == 64
        assert memory.served_bytes == 64 * 64

    def test_parallel_channels_faster_than_one(self):
        def runtime(channels):
            engine, memory, _ = make(channels=channels)
            for i in range(64):
                memory.handle_request(MemoryPacket(addr=i * 1024), lambda p: None)
            engine.run()
            return engine.now

        assert runtime(4) < runtime(1)

    def test_translation_happens_once_in_router(self):
        engine, memory, plane = make(channels=2, control=True)
        done = []
        memory.handle_request(MemoryPacket(ds_id=1, addr=0), done.append)
        engine.run()
        assert len(done) == 1
        # The packet was rewritten to its DRAM address by the router.
        assert done[0].addr == plane.translate(1, 0)

    def test_priority_respected_per_channel(self):
        engine, memory, plane = make(channels=2, control=True)
        plane.allocate_ldom(2, addr_base=8 << 20, addr_size=8 << 20, priority=0)
        for controller in memory.controllers:
            assert controller.scheduler.priority_levels == 2

    def test_validation(self):
        engine = Engine()
        clock = ClockDomain(engine, DRAM_CLOCK_PS)
        with pytest.raises(ValueError):
            MultiChannelMemory(engine, clock, channels=0)
        with pytest.raises(ValueError):
            MultiChannelMemory(engine, clock, interleave_bytes=1000)
