"""Unit and property tests for the memory window allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.prm.allocator import OutOfMemoryError, WindowAllocator

MB = 1 << 20


class TestWindowAllocator:
    def test_sequential_allocation(self):
        alloc = WindowAllocator(16 * MB)
        a = alloc.allocate(4 * MB)
        b = alloc.allocate(4 * MB)
        assert a != b
        assert alloc.allocated_windows == 2

    def test_alignment(self):
        alloc = WindowAllocator(16 * MB, align=MB)
        base = alloc.allocate(100)  # tiny request, MB-aligned window
        assert base % MB == 0
        assert alloc.window_size(base) == MB

    def test_reserved_region_respected(self):
        alloc = WindowAllocator(16 * MB, reserved_bytes=2 * MB)
        assert alloc.allocate(MB) >= 2 * MB

    def test_out_of_memory(self):
        alloc = WindowAllocator(4 * MB)
        alloc.allocate(4 * MB)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(1)

    def test_free_and_reuse(self):
        alloc = WindowAllocator(4 * MB)
        base = alloc.allocate(4 * MB)
        alloc.free(base)
        assert alloc.allocate(4 * MB) == base

    def test_coalescing_allows_large_realloc(self):
        alloc = WindowAllocator(8 * MB)
        a = alloc.allocate(2 * MB)
        b = alloc.allocate(2 * MB)
        c = alloc.allocate(2 * MB)
        alloc.free(b)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(4 * MB)  # fragmented: 2MB hole + 2MB tail
        alloc.free(c)  # coalesces with the hole and the tail
        alloc.allocate(6 * MB)

    def test_double_free_rejected(self):
        alloc = WindowAllocator(4 * MB)
        base = alloc.allocate(MB)
        alloc.free(base)
        with pytest.raises(KeyError):
            alloc.free(base)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowAllocator(MB, reserved_bytes=MB)
        with pytest.raises(ValueError):
            WindowAllocator(4 * MB, align=3)
        with pytest.raises(ValueError):
            WindowAllocator(4 * MB).allocate(0)


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=4 * MB)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=20)),
    ),
    min_size=1, max_size=60,
))
def test_property_no_overlap_and_conservation(actions):
    """Allocated windows never overlap; free + allocated bytes are
    conserved; freeing everything restores one maximal block."""
    capacity = 32 * MB
    alloc = WindowAllocator(capacity, align=MB)
    live: list[int] = []
    for action in actions:
        if action[0] == "alloc":
            try:
                live.append(alloc.allocate(action[1]))
            except OutOfMemoryError:
                pass
        elif live:
            index = action[1] % len(live)
            alloc.free(live.pop(index))

    windows = sorted((base, alloc.window_size(base)) for base in live)
    for i in range(len(windows) - 1):
        assert windows[i][0] + windows[i][1] <= windows[i + 1][0]
    allocated_bytes = sum(size for _, size in windows)
    assert allocated_bytes + alloc.free_bytes == capacity
    for base in list(live):
        alloc.free(base)
    assert alloc.free_bytes == capacity
    # After freeing everything, a near-capacity allocation succeeds.
    alloc.allocate(capacity - MB)
