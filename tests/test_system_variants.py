"""Tests for the optional server organizations (crossbar, multi-channel)."""

from dataclasses import replace

import pytest

from repro.dram.multichannel import MultiChannelMemory
from repro.icn.crossbar import Crossbar
from repro.system.config import TABLE2, ServerConfig
from repro.system.server import PardServer
from repro.workloads.stream import Stream


def run_stream_server(config):
    server = PardServer(config)
    fw = server.firmware
    ldom = fw.create_ldom("a", (0,), 4 << 20)
    server.start()
    fw.launch_ldom("a", {0: Stream(array_bytes=256 << 10)})
    server.run_ms(1.0)
    return server, ldom


class TestCrossbarVariant:
    def test_crossbar_wired_between_l1_and_llc(self):
        config = replace(TABLE2.scaled(32), icn_crossbar=True)
        server = PardServer(config)
        assert isinstance(server.crossbar, Crossbar)
        assert all(l1.downstream is server.crossbar for l1 in server.l1s)
        assert server.crossbar.downstream is server.llc

    def test_default_has_no_crossbar(self):
        server = PardServer(TABLE2.scaled(32))
        assert server.crossbar is None
        assert all(l1.downstream is server.llc for l1 in server.l1s)

    def test_crossbar_server_runs_workloads(self):
        config = replace(TABLE2.scaled(32), icn_crossbar=True)
        server, ldom = run_stream_server(config)
        assert server.crossbar.forwarded > 0
        assert server.llc.occupancy_blocks(ldom.ds_id) > 0

    @pytest.mark.slow
    def test_crossbar_adds_latency(self):
        fast_server, _ = run_stream_server(TABLE2.scaled(32))
        slow_config = replace(
            TABLE2.scaled(32), icn_crossbar=True, crossbar_traversal_ps=10_000
        )
        slow_server, _ = run_stream_server(slow_config)
        # Same wall-clock window: the crossbar hop slows the sweep down.
        assert slow_server.cores[0].memory_accesses < fast_server.cores[0].memory_accesses


class TestMultiChannelVariant:
    def test_multichannel_wired(self):
        config = replace(TABLE2.scaled(32), memory_channels=4)
        server = PardServer(config)
        assert isinstance(server.memory_controller, MultiChannelMemory)
        assert len(server.memory_controller.controllers) == 4

    def test_multichannel_server_serves_traffic(self):
        config = replace(TABLE2.scaled(32), memory_channels=4)
        server, ldom = run_stream_server(config)
        memory = server.memory_controller
        assert memory.served_requests > 0
        busy_channels = sum(1 for load in memory.channel_loads() if load > 0)
        assert busy_channels >= 2  # streaming spreads across channels

    def test_multichannel_translation_and_stats(self):
        config = replace(TABLE2.scaled(32), memory_channels=2)
        server, ldom = run_stream_server(config)
        # Per-DS-id accounting aggregates across channels in the single
        # shared control plane.
        served = server.memory_control.statistics.get(ldom.ds_id, "serv_cnt")
        server.memory_control.roll_window()
        served = server.memory_control.statistics.get(ldom.ds_id, "serv_cnt")
        assert served == server.memory_controller.served_requests

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            ServerConfig(memory_channels=0)
