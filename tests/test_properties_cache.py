"""Property-based invariants of the cache substrate.

These drive random tagged access streams through a small cache and
check global invariants the design must maintain regardless of input:
occupancy accounting consistency, capacity bounds, way-mask confinement
and request conservation.
"""

from hypothesis import given, settings, strategies as st

from tests.helpers import FakeMemory
from repro.cache.cache import Cache, CacheConfig
from repro.cache.control_plane import LlcControlPlane
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine
from repro.sim.packet import MemOp, MemoryPacket

ACCESS = st.tuples(
    st.integers(min_value=1, max_value=3),       # ds_id
    st.integers(min_value=0, max_value=63),      # line index
    st.booleans(),                               # is_write
)


def run_stream(accesses, ways=4, sets=4, masks=None):
    engine = Engine()
    control = LlcControlPlane(engine, num_ways=ways)
    for ds_id in (1, 2, 3):
        overrides = {}
        if masks and ds_id in masks:
            overrides["waymask"] = masks[ds_id]
        control.allocate_ldom(ds_id, **overrides)
    clock = ClockDomain(engine, CPU_CLOCK_PS)
    memory = FakeMemory(engine, latency_ps=10_000)
    config = CacheConfig("c", size_bytes=sets * ways * 64, ways=ways)
    cache = Cache(engine, clock, config, memory, control=control)
    completed = []
    for ds_id, line, is_write in accesses:
        pkt = MemoryPacket(
            ds_id=ds_id, addr=line * 64,
            op=MemOp.WRITE if is_write else MemOp.READ,
        )
        cache.handle_request(pkt, lambda p: completed.append(p))
        engine.run()
    return cache, control, completed


@settings(max_examples=40, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=120))
def test_every_access_completes(accesses):
    _cache, _control, completed = run_stream(accesses)
    assert len(completed) == len(accesses)


@settings(max_examples=40, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=120))
def test_occupancy_accounting_matches_tag_array(accesses):
    """The control plane's incremental occupancy counters always agree
    with a full scan of the tag array (the paper's capacity statistic)."""
    cache, control, _ = run_stream(accesses)
    for ds_id in (1, 2, 3):
        assert control.occupancy_bytes(ds_id) == cache.occupancy_blocks(ds_id) * 64


@settings(max_examples=40, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=120))
def test_total_occupancy_bounded_by_capacity(accesses):
    cache, control, _ = run_stream(accesses)
    total_blocks = sum(cache.occupancy_blocks(d) for d in (1, 2, 3))
    assert total_blocks <= cache.config.num_sets * cache.config.ways


@settings(max_examples=30, deadline=None)
@given(st.lists(ACCESS, min_size=10, max_size=150))
def test_disjoint_masks_confine_occupancy(accesses):
    """With disjoint way masks, no DS-id ever holds more ways per set
    than its mask allows."""
    masks = {1: 0b0001, 2: 0b0110, 3: 0b1000}
    cache, control, _ = run_stream(accesses, masks=masks)
    allowed = {d: bin(m).count("1") for d, m in masks.items()}
    for set_index, cache_set in cache._sets.items():
        per_dsid = {}
        for line in cache_set.lines:
            if line.valid:
                per_dsid[line.ds_id] = per_dsid.get(line.ds_id, 0) + 1
        for ds_id, count in per_dsid.items():
            assert count <= allowed[ds_id], (
                f"set {set_index}: DS-id {ds_id} holds {count} ways, "
                f"mask allows {allowed[ds_id]}"
            )


@settings(max_examples=30, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=120))
def test_hit_plus_miss_equals_accesses(accesses):
    cache, control, _ = run_stream(accesses)
    assert cache.total_hits + cache.total_misses == len(accesses)


@settings(max_examples=30, deadline=None)
@given(st.lists(ACCESS, min_size=1, max_size=100))
def test_writeback_owners_are_writers(accesses):
    """Every writeback reaching memory carries the DS-id of some LDom
    that actually wrote (writebacks only exist for dirtied blocks)."""
    engine = Engine()
    control = LlcControlPlane(engine, num_ways=2)
    for ds_id in (1, 2, 3):
        control.allocate_ldom(ds_id)
    clock = ClockDomain(engine, CPU_CLOCK_PS)
    memory = FakeMemory(engine, latency_ps=10_000)
    config = CacheConfig("c", size_bytes=2 * 2 * 64, ways=2)  # tiny: 2 sets
    cache = Cache(engine, clock, config, memory, control=control)
    writers = set()
    for ds_id, line, is_write in accesses:
        if is_write:
            writers.add(ds_id)
        pkt = MemoryPacket(
            ds_id=ds_id, addr=line * 64,
            op=MemOp.WRITE if is_write else MemOp.READ,
        )
        cache.handle_request(pkt, lambda p: None)
        engine.run()
    for packet in memory.requests_of(op=MemOp.WRITEBACK):
        assert packet.owner_ds_id in writers
