"""Unit tests for CPA space and the sysfs tree."""

import pytest

from repro.cache.control_plane import LlcControlPlane
from repro.core.programming import CPA_SIZE_BYTES, TABLE_PARAMETER
from repro.dram.control_plane import MemoryControlPlane
from repro.prm.cpa import CpaSpaceError, PrmIoSpace
from repro.prm.sysfs import SysfsError, SysfsTree
from repro.sim.engine import Engine


class TestPrmIoSpace:
    def test_attach_assigns_sequential_blocks(self):
        engine = Engine()
        space = PrmIoSpace()
        a = space.attach(LlcControlPlane(engine))
        b = space.attach(MemoryControlPlane(engine))
        assert (a.name, b.name) == ("cpa0", "cpa1")
        assert a.base_addr == 0
        assert b.base_addr == CPA_SIZE_BYTES

    def test_capacity_is_64kb_window(self):
        space = PrmIoSpace()
        assert space.capacity == 2048  # 64KB / 32B

    def test_capacity_enforced(self):
        engine = Engine()
        space = PrmIoSpace(size_bytes=64)  # room for two
        space.attach(LlcControlPlane(engine))
        space.attach(MemoryControlPlane(engine))
        with pytest.raises(CpaSpaceError):
            space.attach(LlcControlPlane(engine, name="extra"))

    def test_lookup_by_name_and_index(self):
        engine = Engine()
        space = PrmIoSpace()
        plane = LlcControlPlane(engine)
        adaptor = space.attach(plane)
        assert space.by_name("cpa0") is adaptor
        assert space.by_index(0) is adaptor
        assert space.find(plane) is adaptor
        with pytest.raises(CpaSpaceError):
            space.by_name("cpa9")

    def test_driver_cell_roundtrip(self):
        engine = Engine()
        space = PrmIoSpace()
        plane = LlcControlPlane(engine)
        plane.allocate_ldom(1)
        adaptor = space.attach(plane)
        adaptor.write_cell(1, 0, TABLE_PARAMETER, 0x00FF)
        assert adaptor.read_cell(1, 0, TABLE_PARAMETER) == 0x00FF
        assert plane.parameters.get(1, "waymask") == 0x00FF

    def test_mmio_address_decoding(self):
        engine = Engine()
        space = PrmIoSpace()
        space.attach(LlcControlPlane(engine))
        space.attach(MemoryControlPlane(engine))
        # type register of cpa1 sits at base 32 + offset 12.
        assert space.mmio_read(CPA_SIZE_BYTES + 12) == ord("M")
        with pytest.raises(CpaSpaceError):
            space.mmio_read(5 * CPA_SIZE_BYTES)
        with pytest.raises(CpaSpaceError):
            space.mmio_read(-1)


class TestSysfsTree:
    def test_mkdir_and_listdir(self):
        tree = SysfsTree()
        tree.mkdir("/sys/cpa/cpa0")
        assert tree.listdir("/sys") == ["cpa"]
        assert tree.listdir("/sys/cpa") == ["cpa0"]

    def test_mkdir_is_idempotent(self):
        tree = SysfsTree()
        tree.mkdir("/a/b")
        tree.mkdir("/a/b")
        assert tree.exists("/a/b")

    def test_file_read_write_handlers(self):
        tree = SysfsTree()
        cell = {"v": 5}
        tree.add_file(
            "/sys/x/value",
            read_handler=lambda: str(cell["v"]),
            write_handler=lambda text: cell.update(v=int(text)),
        )
        assert tree.read("/sys/x/value") == "5"
        tree.write("/sys/x/value", "42")
        assert cell["v"] == 42

    def test_read_only_file(self):
        tree = SysfsTree()
        tree.add_file("/info", read_handler=lambda: "hi")
        with pytest.raises(SysfsError):
            tree.write("/info", "x")

    def test_write_only_file(self):
        tree = SysfsTree()
        tree.add_file("/sink", write_handler=lambda text: None)
        with pytest.raises(SysfsError):
            tree.read("/sink")

    def test_missing_path(self):
        tree = SysfsTree()
        with pytest.raises(SysfsError):
            tree.read("/nope")
        assert not tree.exists("/nope")

    def test_duplicate_file_rejected(self):
        tree = SysfsTree()
        tree.add_file("/a/f", read_handler=lambda: "")
        with pytest.raises(SysfsError):
            tree.add_file("/a/f", read_handler=lambda: "")

    def test_remove(self):
        tree = SysfsTree()
        tree.add_file("/a/f", read_handler=lambda: "")
        tree.remove("/a/f")
        assert not tree.exists("/a/f")
        with pytest.raises(SysfsError):
            tree.remove("/a/f")

    def test_dir_vs_file_errors(self):
        tree = SysfsTree()
        tree.mkdir("/d")
        with pytest.raises(SysfsError):
            tree.read("/d")
        tree.add_file("/f", read_handler=lambda: "")
        with pytest.raises(SysfsError):
            tree.listdir("/f")

    def test_relative_path_rejected(self):
        tree = SysfsTree()
        with pytest.raises(SysfsError):
            tree.read("sys/x")
