"""Tests for time-sliced multiplexing (process-level DiffServ demo)."""

import itertools

import pytest

from tests.helpers import FakeMemory
from repro.cpu.core import CpuCore
from repro.sim.clock import ClockDomain, CPU_CLOCK_PS
from repro.sim.engine import Engine
from repro.workloads.base import Workload
from repro.workloads.multiplex import TimeSliced
from repro.workloads.stream import Stream


class Fixed(Workload):
    """N compute+load pairs."""

    def __init__(self, count, addr_base=0):
        super().__init__()
        self.count = count
        self.addr_base = addr_base

    def ops(self):
        for i in range(self.count):
            yield ("compute", 100)
            yield ("load", self.addr_base + i * 64)


class TestTimeSliced:
    def test_round_robin_switching(self):
        sliced = TimeSliced(
            [(Fixed(5), 1), (Fixed(5), 2)],
            slice_cycles=200, switch_overhead_cycles=0,
        )
        kinds = [op[0] for op in sliced.ops()]
        # Alternating slices: call (retag) appears multiple times.
        assert kinds.count("call") >= 4

    def test_retags_core_per_slice(self):
        engine = Engine()
        clock = ClockDomain(engine, CPU_CLOCK_PS)
        memory = FakeMemory(engine, latency_ps=1_000)
        core = CpuCore(engine, clock, 0, memory)
        sliced = TimeSliced(
            [(Fixed(4, addr_base=0), 1), (Fixed(4, addr_base=1 << 20), 2)],
            slice_cycles=150, switch_overhead_cycles=0,
        )
        core.assign(sliced)
        engine.run()
        # Traffic below 1MB must be tagged 1; above, tagged 2.
        for packet in memory.requests:
            expected = 1 if packet.addr < (1 << 20) else 2
            assert packet.ds_id == expected
        assert sliced.context_switches >= 4

    def test_finished_workloads_drop_out(self):
        sliced = TimeSliced(
            [(Fixed(1), 1), (Fixed(10), 2)],
            slice_cycles=150, switch_overhead_cycles=0,
        )
        ops = list(sliced.ops())
        loads = [op for op in ops if op[0] == "load"]
        assert len(loads) == 11  # nothing lost

    def test_switch_overhead_charged(self):
        sliced = TimeSliced([(Fixed(2), 1)], slice_cycles=1000,
                            switch_overhead_cycles=500)
        ops = list(sliced.ops())
        assert ("compute", 500) in ops

    def test_infinite_workloads_interleave(self):
        sliced = TimeSliced(
            [(Stream(array_bytes=1 << 20), 1), (Stream(array_bytes=1 << 20), 2)],
            slice_cycles=100, switch_overhead_cycles=0,
        )
        ops = list(itertools.islice(sliced.ops(), 500))
        calls = [op for op in ops if op[0] == "call"]
        assert len(calls) >= 2  # keeps switching forever

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSliced([])
        with pytest.raises(ValueError):
            TimeSliced([(Fixed(1), 1)], slice_cycles=0)
        with pytest.raises(ValueError):
            TimeSliced([(Fixed(1), 1)], switch_overhead_cycles=-1)
